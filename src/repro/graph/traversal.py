"""Traversal of the schema graph and detection of structural patterns.

Section 2.2: "During this traversal, three possible structural patterns on
the graph can be found: the unary pattern (Ri - Rj), the join pattern
(Ri1, Ri2 > Rj), and the split pattern (Ri < Rj1, Rj2)."  The content
narrator composes sentences per pattern, so the traversal layer reports
both the visit order and the patterns found along the way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.schema_graph import SchemaGraph


class PatternKind(enum.Enum):
    """The three structural patterns of Section 2.2."""

    UNARY = "unary"
    JOIN = "join"
    SPLIT = "split"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class StructuralPattern:
    """One occurrence of a structural pattern in a traversal.

    ``center`` is Ri; ``partners`` are the Rj relations: exactly one for a
    unary pattern, the two (or more) children for a split pattern, and the
    two (or more) co-parents for a join pattern.
    """

    kind: PatternKind
    center: str
    partners: Tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        partners = ", ".join(self.partners)
        return f"{self.kind.value}({self.center}; {partners})"


@dataclass
class TraversalStep:
    """One step of the DFS traversal: an edge from ``parent`` to ``relation``."""

    relation: str
    parent: Optional[str]
    depth: int


@dataclass
class TraversalResult:
    """The spanning tree produced by a DFS traversal plus detected patterns."""

    start: str
    steps: List[TraversalStep] = field(default_factory=list)
    patterns: List[StructuralPattern] = field(default_factory=list)

    @property
    def order(self) -> Tuple[str, ...]:
        return tuple(step.relation for step in self.steps)

    def children_of(self, relation: str) -> Tuple[str, ...]:
        return tuple(step.relation for step in self.steps if step.parent == relation)

    def parent_of(self, relation: str) -> Optional[str]:
        for step in self.steps:
            if step.relation == relation:
                return step.parent
        return None


def dfs_traversal(
    graph: SchemaGraph,
    start: Optional[str] = None,
    restrict_to: Optional[Sequence[str]] = None,
) -> TraversalResult:
    """DFS over the join edges of ``graph`` starting from ``start``.

    ``restrict_to`` limits the traversal to a subset of relations (the
    "database part concerned" in the paper's wording).  Neighbours are
    visited most-interesting-first (descending relation weight, then name)
    so the resulting narrative leads with the important relations.
    """
    if start is None:
        start = graph.central_relation().name
    else:
        start = graph.schema.relation(start).name
    allowed = (
        {graph.schema.relation(name).name for name in restrict_to}
        if restrict_to is not None
        else {r.name for r in graph.schema.relations}
    )
    if start not in allowed:
        allowed = allowed | {start}

    result = TraversalResult(start=start)
    visited: List[str] = []

    def visit(relation: str, parent: Optional[str], depth: int) -> None:
        visited.append(relation)
        result.steps.append(TraversalStep(relation=relation, parent=parent, depth=depth))
        neighbours = [
            n
            for n in graph.neighbours(relation)
            if n in allowed and n not in visited
        ]
        neighbours.sort(
            key=lambda name: (-graph.relation_node(name).weight, name)
        )
        for neighbour in neighbours:
            if neighbour in visited:
                continue
            visit(neighbour, relation, depth + 1)

    visit(start, None, 0)

    # Relations reachable only through relations outside ``allowed`` (or in a
    # different connected component) are appended as additional roots so the
    # traversal always covers the requested subset.
    for name in sorted(allowed, key=lambda n: (-graph.relation_node(n).weight, n)):
        if name not in visited:
            visit(name, None, 0)

    result.patterns.extend(detect_patterns(result))
    return result


def detect_patterns(result: TraversalResult) -> List[StructuralPattern]:
    """Detect unary/split patterns from the spanning tree and join patterns
    from relations with more than one already-visited neighbour."""
    patterns: List[StructuralPattern] = []
    children: Dict[str, List[str]] = {}
    for step in result.steps:
        if step.parent is not None:
            children.setdefault(step.parent, []).append(step.relation)

    for relation in result.order:
        kids = children.get(relation, [])
        if len(kids) == 1:
            patterns.append(
                StructuralPattern(
                    kind=PatternKind.UNARY, center=relation, partners=(kids[0],)
                )
            )
        elif len(kids) >= 2:
            patterns.append(
                StructuralPattern(
                    kind=PatternKind.SPLIT, center=relation, partners=tuple(kids)
                )
            )

    # Join patterns: a relation whose parents-in-graph (not tree) are >= 2,
    # i.e. two already-visited relations both join into it.
    order = list(result.order)
    for index, relation in enumerate(order):
        earlier = set(order[:index])
        parents = [p for p in earlier if relation in _tree_children(children, p)]
        if len(parents) >= 2:  # pragma: no cover - requires non-tree DAG input
            patterns.append(
                StructuralPattern(
                    kind=PatternKind.JOIN, center=relation, partners=tuple(sorted(parents))
                )
            )
    return patterns


def detect_join_patterns(graph: SchemaGraph, relations: Sequence[str]) -> List[StructuralPattern]:
    """Join patterns over a relation subset: Rj receiving edges from >= 2 others.

    Unlike :func:`detect_patterns`, which works on a spanning tree, this
    inspects the actual join edges among ``relations`` — the join pattern
    (Ri1, Ri2 > Rj) only materialises when two chosen relations both join
    into a third one.
    """
    canonical = [graph.schema.relation(r).name for r in relations]
    patterns: List[StructuralPattern] = []
    for relation in canonical:
        partners = [
            other
            for other in canonical
            if other != relation and graph.join_edges_between(relation, other)
        ]
        if len(partners) >= 2:
            patterns.append(
                StructuralPattern(
                    kind=PatternKind.JOIN, center=relation, partners=tuple(sorted(partners))
                )
            )
    return patterns


def _tree_children(children: Dict[str, List[str]], parent: str) -> List[str]:
    return children.get(parent, [])
