"""Nodes of the database schema graph (paper, Section 2.2).

"The main entities, i.e., relations and attributes, constitute the nodes
of the graph, whereas the relationships among them, i.e., join and
projection edges, represent the edges of the graph."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.catalog.attribute import Attribute
from repro.catalog.relation import Relation


@dataclass(frozen=True)
class RelationNode:
    """A schema-graph node standing for a relation."""

    relation: Relation

    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def key(self) -> str:
        return self.relation.name

    @property
    def weight(self) -> float:
        return self.relation.weight

    @property
    def concept(self) -> str:
        return self.relation.concept

    @property
    def is_bridge(self) -> bool:
        return self.relation.bridge

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"RelationNode({self.name})"


@dataclass(frozen=True)
class AttributeNode:
    """A schema-graph node standing for an attribute of a relation."""

    attribute: Attribute

    @property
    def name(self) -> str:
        return self.attribute.name

    @property
    def key(self) -> str:
        return self.attribute.qualified_name

    @property
    def relation_name(self) -> str:
        return self.attribute.relation_name

    @property
    def weight(self) -> float:
        return self.attribute.weight

    @property
    def is_heading(self) -> bool:
        return self.attribute.heading

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"AttributeNode({self.key})"


GraphNode = Union[RelationNode, AttributeNode]
