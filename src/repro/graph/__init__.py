"""Database schema graph (Section 2.2): nodes, edges, traversal, patterns."""

from repro.graph.edges import JoinEdge, ProjectionEdge
from repro.graph.nodes import AttributeNode, GraphNode, RelationNode
from repro.graph.schema_graph import SchemaGraph, build_schema_graph
from repro.graph.traversal import (
    PatternKind,
    StructuralPattern,
    TraversalResult,
    TraversalStep,
    detect_join_patterns,
    detect_patterns,
    dfs_traversal,
)

__all__ = [
    "AttributeNode",
    "GraphNode",
    "JoinEdge",
    "PatternKind",
    "ProjectionEdge",
    "RelationNode",
    "SchemaGraph",
    "StructuralPattern",
    "TraversalResult",
    "TraversalStep",
    "build_schema_graph",
    "detect_join_patterns",
    "detect_patterns",
    "dfs_traversal",
]
