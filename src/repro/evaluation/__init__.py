"""Evaluation harness: metrics, experiment registry, reporting."""

from repro.evaluation.experiments import (
    ExperimentResult,
    experiment_ids,
    run_all_experiments,
    run_experiment,
)
from repro.evaluation.metrics import (
    TextMetrics,
    compression_ratio,
    coverage,
    query_coverage,
    query_elements,
    redundancy_ratio,
    tokens,
)
from repro.evaluation.reporting import (
    format_report,
    format_result,
    full_report,
    markdown_table,
    summary_rows,
)

__all__ = [
    "ExperimentResult",
    "TextMetrics",
    "compression_ratio",
    "coverage",
    "experiment_ids",
    "format_report",
    "format_result",
    "full_report",
    "markdown_table",
    "query_coverage",
    "query_elements",
    "redundancy_ratio",
    "run_all_experiments",
    "run_experiment",
    "summary_rows",
    "tokens",
]
