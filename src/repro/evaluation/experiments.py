"""The experiment registry: every paper artefact, regenerated on demand.

Each experiment corresponds to a figure or worked example of the paper
(see DESIGN.md's experiment index).  Experiments return a dictionary of
artefacts — the generated narrative, the paper's target text, and the
metrics the benchmark harness records — so the same code path backs the
pytest benchmarks, the EXPERIMENTS.md table and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.content import ContentNarrator, SynthesisMode, movie_spec, employee_spec
from repro.datasets import (
    MANAGER_NARRATIVE,
    MANAGER_QUERY,
    PAPER_NARRATIVES,
    PAPER_QUERIES,
    employee_database,
    movie_database,
)
from repro.evaluation.metrics import TextMetrics, query_coverage
from repro.graph import SchemaGraph, dfs_traversal
from repro.query_nl import QueryTranslator
from repro.querygraph import build_query_graph


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment_id: str
    description: str
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def summary_lines(self) -> List[str]:
        lines = [f"[{self.experiment_id}] {self.description}"]
        for key, value in self.artifacts.items():
            lines.append(f"  {key}: {value}")
        return lines


ExperimentFn = Callable[[], ExperimentResult]

_REGISTRY: Dict[str, ExperimentFn] = {}


def experiment(experiment_id: str):
    """Decorator registering an experiment under its id."""

    def register(fn: ExperimentFn) -> ExperimentFn:
        _REGISTRY[experiment_id] = fn
        return fn

    return register


def experiment_ids() -> List[str]:
    return sorted(_REGISTRY)


def run_experiment(experiment_id: str) -> ExperimentResult:
    return _REGISTRY[experiment_id]()


def run_all_experiments() -> List[ExperimentResult]:
    return [run_experiment(experiment_id) for experiment_id in experiment_ids()]


# ---------------------------------------------------------------------------
# Section 2 experiments (content translation)
# ---------------------------------------------------------------------------


def _movie_narrator() -> ContentNarrator:
    database = movie_database()
    return ContentNarrator(database, spec=movie_spec(database.schema))


@experiment("FIG1")
def fig1_schema_graph() -> ExperimentResult:
    """Figure 1: the movie database schema graph."""
    database = movie_database()
    graph = SchemaGraph(database.schema)
    traversal = dfs_traversal(graph, start="MOVIES")
    return ExperimentResult(
        experiment_id="FIG1",
        description="Movie schema graph (relations, projection and join edges)",
        artifacts={
            "relations": len(graph.relation_nodes),
            "attributes": len(graph.attribute_nodes),
            "projection_edges": len(graph.projection_edges),
            "join_edges": len(graph.join_edges),
            "traversal_order": traversal.order,
            "patterns": [str(p) for p in traversal.patterns],
            "dot": graph.to_dot(include_attributes=False),
            "summary": graph.summary(),
        },
    )


@experiment("EX-DIRECTOR")
def ex_director_merge() -> ExperimentResult:
    """Section 2.2: common-expression merging of the DIRECTOR templates."""
    narrator = _movie_narrator()
    text = narrator.narrate_tuple("DIRECTOR", _woody_allen_row(narrator))
    target = "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
    return ExperimentResult(
        experiment_id="EX-DIRECTOR",
        description="DNAME was born in BLOCATION on BDATE (merged clause)",
        artifacts={
            "generated": text,
            "paper": target,
            "match": text == target,
            "metrics": TextMetrics.of(text),
        },
    )


@experiment("EX-WOODY-COMPACT")
def ex_woody_compact() -> ExperimentResult:
    """Section 2.2: the compact Woody Allen narrative."""
    narrator = _movie_narrator()
    text = narrator.narrate_entity(
        "DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.COMPACT
    )
    target = (
        "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
        " As a director, Woody Allen's work includes Match Point (2005),"
        " Melinda and Melinda (2004), and Anything Else (2003)."
    )
    return ExperimentResult(
        experiment_id="EX-WOODY-COMPACT",
        description="Woody Allen narrative, compact (declarative) synthesis",
        artifacts={
            "generated": text,
            "paper": target,
            "match": text == target,
            "metrics": TextMetrics.of(text),
        },
    )


@experiment("EX-WOODY-PROCEDURAL")
def ex_woody_procedural() -> ExperimentResult:
    """Section 2.2: the procedural Woody Allen narrative."""
    narrator = _movie_narrator()
    text = narrator.narrate_entity(
        "DIRECTOR", "Woody Allen", "MOVIES", mode=SynthesisMode.PROCEDURAL
    )
    target = (
        "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
        " As a director, Woody Allen's work includes Match Point, Melinda and"
        " Melinda, Anything Else. Match Point was released in 2005. Melinda and"
        " Melinda was released in 2004. Anything Else was released in 2003."
    )
    return ExperimentResult(
        experiment_id="EX-WOODY-PROCEDURAL",
        description="Woody Allen narrative, procedural synthesis",
        artifacts={
            "generated": text,
            "paper": target,
            "match": text == target,
            "metrics": TextMetrics.of(text),
        },
    )


@experiment("EX-SPLIT")
def ex_split_pattern() -> ExperimentResult:
    """Section 2.2: the split-pattern sentence (movie involves director and actor)."""
    narrator = _movie_narrator()
    text = narrator.narrate_split("MOVIES", "Troy", ["DIRECTOR", "ACTOR"])
    paper_shape = (
        "The movie M1 involves the director D1 who was born in Italy and the"
        " actor A1 who is Greek."
    )
    return ExperimentResult(
        experiment_id="EX-SPLIT",
        description="Split pattern: subordinate clauses combined with a conjunction",
        artifacts={
            "generated": text,
            "paper_shape": paper_shape,
            "mentions_both_partners": ("director" in text and "actor" in text),
            "single_sentence": text.count(".") == 1,
            "metrics": TextMetrics.of(text),
        },
    )


def _woody_allen_row(narrator: ContentNarrator):
    return narrator.database.table("DIRECTOR").lookup(("name",), ("Woody Allen",))[0]


# ---------------------------------------------------------------------------
# Section 3 experiments (query translation)
# ---------------------------------------------------------------------------


def _paper_query_experiment(name: str) -> ExperimentResult:
    database = movie_database()
    translator = QueryTranslator(database.schema, spec=movie_spec(database.schema))
    translation = translator.translate(PAPER_QUERIES[name])
    graph = build_query_graph(database.schema, PAPER_QUERIES[name])
    paper_text = PAPER_NARRATIVES[name]
    generated = translation.text
    concise = translation.concise or generated
    exact = paper_text in (generated, concise)
    return ExperimentResult(
        experiment_id=name,
        description=f"Paper query {name} ({translation.category.value})",
        artifacts={
            "category": translation.category.value,
            "generated": generated,
            "concise": concise,
            "paper": paper_text,
            "exact_match": exact,
            "coverage": round(
                query_coverage(database.schema, PAPER_QUERIES[name], generated), 3
            ),
            "graph_summary": graph.summary(),
            "rewritten_sql": translation.rewritten_sql,
        },
    )


def _register_paper_queries() -> None:
    for name in PAPER_QUERIES:
        _REGISTRY[name] = lambda name=name: _paper_query_experiment(name)


_register_paper_queries()


@experiment("Q0")
def q0_manager_query() -> ExperimentResult:
    """Section 3.1: the EMP/DEPT motivating query."""
    database = employee_database()
    translator = QueryTranslator(database.schema, spec=employee_spec(database.schema))
    translation = translator.translate(MANAGER_QUERY)
    return ExperimentResult(
        experiment_id="Q0",
        description="Employees who make more than their managers (Section 3.1)",
        artifacts={
            "category": translation.category.value,
            "generated": translation.text,
            "paper": MANAGER_NARRATIVE,
            "coverage": round(
                query_coverage(database.schema, MANAGER_QUERY, translation.text), 3
            ),
        },
    )


@experiment("FIG2")
def fig2_query_class() -> ExperimentResult:
    """Figure 2: the parameterised relation class rendering."""
    database = movie_database()
    graph = build_query_graph(database.schema, PAPER_QUERIES["Q1"])
    rendering = graph.query_class("a").render()
    required = ["<<FROM>>", "<<alias>>", "<<SELECT>>", "<<WHERE>>", "<<HAVING>>"]
    return ExperimentResult(
        experiment_id="FIG2",
        description="Schematic representation of a relation participating in a query",
        artifacts={
            "rendering": rendering,
            "has_all_compartments": all(part in rendering for part in required),
            "dot": graph.to_dot(),
        },
    )
