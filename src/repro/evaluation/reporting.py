"""Formatting of experiment results for EXPERIMENTS.md and benchmark output."""

from __future__ import annotations

from typing import List, Sequence

from repro.evaluation.experiments import ExperimentResult, run_all_experiments


def format_result(result: ExperimentResult) -> str:
    """A readable multi-line block for one experiment."""
    return "\n".join(result.summary_lines())


def format_report(results: Sequence[ExperimentResult]) -> str:
    """A full report covering every experiment."""
    blocks = [format_result(result) for result in results]
    return "\n\n".join(blocks)


def markdown_table(results: Sequence[ExperimentResult]) -> str:
    """A Markdown table: experiment id, paper target, generated text, match."""
    lines = [
        "| Experiment | Paper target | Generated | Match |",
        "|---|---|---|---|",
    ]
    for result in results:
        paper = str(result.artifacts.get("paper", result.artifacts.get("paper_shape", "—")))
        generated = str(result.artifacts.get("generated", result.artifacts.get("summary", "—")))
        match = result.artifacts.get("exact_match", result.artifacts.get("match", ""))
        lines.append(
            f"| {result.experiment_id} | {_cell(paper)} | {_cell(generated)} | {match} |"
        )
    return "\n".join(lines)


def _cell(text: str, limit: int = 160) -> str:
    cleaned = " ".join(str(text).split())
    if len(cleaned) > limit:
        cleaned = cleaned[: limit - 3] + "..."
    return cleaned.replace("|", "\\|")


def full_report() -> str:
    """Run every registered experiment and format the report."""
    return format_report(run_all_experiments())


def summary_rows() -> List[str]:
    """One-line summaries, used by the benchmark harness's console output."""
    rows = []
    for result in run_all_experiments():
        generated = result.artifacts.get("generated")
        match = result.artifacts.get("exact_match", result.artifacts.get("match"))
        suffix = ""
        if match is not None and match != "":
            suffix = " [exact]" if match else " [shape]"
        if generated:
            rows.append(f"{result.experiment_id}: {generated}{suffix}")
        else:
            rows.append(f"{result.experiment_id}: {result.description}")
    return rows
