"""Proxy metrics for narrative quality.

The paper defines the two qualities a generated text must balance —
*expressive* ("accurate in capturing the underlying queries or data") and
*effective* ("allowing fast and unique interpretation") — but, being a
vision paper, reports no quantitative evaluation.  These metrics are the
measurable proxies the benchmark harness reports:

* **coverage** — the fraction of query elements (constants, relation
  concepts, projected attributes) that the narrative mentions; a proxy for
  expressiveness;
* **length** (words / sentences) and **redundancy** (repeated-token
  fraction) — proxies for effectiveness/concision;
* **compression** — how much shorter one narrative is than another
  (compact vs procedural synthesis, declarative vs procedural query
  translation).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.nlg.realize import sentence_count, word_count
from repro.sql import ast
from repro.sql.parser import parse_sql

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


def tokens(text: str) -> List[str]:
    """Lower-cased word tokens of a narrative."""
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]


def redundancy_ratio(text: str) -> float:
    """1 - (distinct tokens / total tokens); 0.0 for an empty text."""
    words = tokens(text)
    if not words:
        return 0.0
    return 1.0 - len(set(words)) / len(words)


def compression_ratio(shorter: str, longer: str) -> float:
    """Word-count ratio of two narratives (< 1 means the first is shorter)."""
    longer_words = word_count(longer)
    if longer_words == 0:
        return 1.0
    return word_count(shorter) / longer_words


@dataclass
class TextMetrics:
    """Size/shape metrics of one narrative."""

    words: int
    sentences: int
    redundancy: float

    @classmethod
    def of(cls, text: str) -> "TextMetrics":
        return cls(
            words=word_count(text),
            sentences=sentence_count(text),
            redundancy=redundancy_ratio(text),
        )


def query_elements(schema: Schema, sql: str, lexicon: Lexicon = None) -> List[str]:
    """The query elements a faithful narrative should mention.

    Constants from selection predicates, the concepts of non-bridge
    relations in FROM, and the captions of projected attributes.
    """
    lexicon = lexicon or default_lexicon(schema)
    statement = parse_sql(sql)
    if not isinstance(statement, ast.SelectStatement):
        return []
    elements: List[str] = []

    def visit(select: ast.SelectStatement) -> None:
        for table in select.from_tables:
            relation = schema.relation(table.name)
            if not relation.bridge:
                elements.append(lexicon.concept(relation.name))
        for item in select.select_items:
            expression = item.expression
            if isinstance(expression, ast.ColumnRef):
                elements.append(expression.column)
        for node in select.walk():
            if isinstance(node, ast.Literal) and isinstance(node.value, str):
                elements.append(node.value)
            if isinstance(node, ast.SelectStatement) and node is not select:
                continue

    visit(statement)
    for subquery in statement.subqueries():
        visit(subquery)
    # Deduplicate, preserving order.
    seen = set()
    unique = []
    for element in elements:
        key = element.lower()
        if key not in seen:
            seen.add(key)
            unique.append(element)
    return unique


def coverage(text: str, elements: Sequence[str]) -> float:
    """Fraction of ``elements`` whose tokens all appear in ``text``.

    Matching is token-based and forgiving about morphology (an element
    "movie" is covered by "movies").
    """
    if not elements:
        return 1.0
    text_tokens = set(tokens(text))
    covered = 0
    for element in elements:
        element_tokens = tokens(element)
        if not element_tokens:
            covered += 1
            continue
        if all(_token_covered(token, text_tokens) for token in element_tokens):
            covered += 1
    return covered / len(elements)


def _token_covered(token: str, text_tokens: Iterable[str]) -> bool:
    for candidate in text_tokens:
        if candidate == token:
            return True
        if candidate.startswith(token) and len(candidate) - len(token) <= 2:
            return True
        if token.startswith(candidate) and len(token) - len(candidate) <= 2:
            return True
    return False


def query_coverage(schema: Schema, sql: str, narrative: str, lexicon: Lexicon = None) -> float:
    """Coverage of a query's elements by its narrative (expressiveness proxy)."""
    return coverage(narrative, query_elements(schema, sql, lexicon))
