"""Oracle mode: one switch that forces every reference path at once.

Each compiled subsystem keeps its original, uncompiled implementation
alive as a differential oracle — the char-by-char lexer, the
recursive-descent parser cascade, the standalone validator, the
interpreted template walker, the plan-free translator and the
interpreted, cache-free executor.  Each has its own opt-out flag, which
is perfect for targeted differential tests but means nothing exercises
*all* the oracles together across the whole suite.

``REPRO_ORACLE=1`` is that exercise.  When the environment variable is
set (to anything but ``""`` or ``"0"``):

* the *constructor defaults* of :class:`~repro.engine.executor.Executor`
  (``compiled``, ``use_caches``, ``index_scans``),
  :class:`~repro.query_nl.translator.QueryTranslator` (``phrase_plans``)
  and :class:`~repro.templates.registry.TemplateRegistry`
  (``compile_templates``) flip to their interpreted settings, and
* the repository ``conftest.py`` forces the reference lexer, parser and
  validator globally for the whole pytest session.

Callers that pass a flag *explicitly* are never overridden, so tests
that specifically exercise a compiled path (cache-hit assertions, plan
equivalence suites) keep doing so under oracle mode.  The CI oracle job
runs the tier-1 suite this way on every push, so the oracles can never
silently rot.
"""

from __future__ import annotations

import os
from typing import Optional

_ENV_VAR = "REPRO_ORACLE"


def oracle_enabled() -> bool:
    """Whether the ``REPRO_ORACLE`` environment toggle is on."""
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def resolve_compiled_default(explicit: Optional[bool]) -> bool:
    """An explicitly passed flag wins; otherwise compiled unless oracle mode."""
    if explicit is not None:
        return explicit
    return not oracle_enabled()
