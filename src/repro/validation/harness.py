"""Batch differential validation across domains, pipelines and engines.

Every compiled fast path in the repo keeps its interpreted twin (the
reference lexer/parser/validator, interpreted execution, plain phrase
rendering) — see ``repro.oracle``.  This harness turns that design into a
batch weapon: it runs every corpus query of every registered domain
through the full mode matrix

    {compiled pipeline, oracle pipeline} x {rows, paged, columnar}

captures what each mode produced at every stage (translation text,
classified category, result rows, narration, or the canonicalised error),
byte-diffs each mode against the ``compiled/rows`` baseline, and reports
every divergence classified by kind.  A clean run is the repo's strongest
equivalence statement; a mismatch pinpoints the stage AND the axis
(pipeline vs engine) that disagreed.

The ``mutate`` hook exists so tests can prove the differ is live: inject
a corruption into one mode's outcome and the report must flag it.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple

from repro.content.narrator import ContentNarrator
from repro.content.presets import NarrationSpec, TemplateRegistry
from repro.datasets.domains import CorpusQuery, Domain, all_domains
from repro.engine.executor import Executor
from repro.engine.result import QueryResult
from repro.lexicon.lexicon import default_lexicon
from repro.query_nl.translator import QueryTranslator
from repro.querygraph.builder import use_reference_validation
from repro.sql.lexer import use_reference_lexer
from repro.sql.parser import use_reference_parser
from repro.storage.config import StorageConfig
from repro.validation.report import (
    DomainReport,
    Mismatch,
    QueryOutcome,
    ValidationReport,
)

__all__ = [
    "BASELINE_MODE",
    "Mode",
    "ValidationHarness",
    "default_modes",
]

PIPELINES = ("compiled", "oracle")
ENGINES = ("rows", "paged", "columnar")

#: A deliberately tiny buffer pool so paged runs exercise eviction.
_PAGED_STRESS = {"page_size": 512, "buffer_pool_pages": 4}


@dataclass(frozen=True)
class Mode:
    """One cell of the matrix: a pipeline flavour on a storage engine."""

    pipeline: str
    engine: str

    def __post_init__(self) -> None:
        if self.pipeline not in PIPELINES:
            raise ValueError(f"pipeline must be one of {PIPELINES}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")

    @property
    def key(self) -> str:
        return f"{self.pipeline}/{self.engine}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.key


BASELINE_MODE = Mode("compiled", "rows")


def default_modes() -> Tuple[Mode, ...]:
    """The full matrix, baseline first."""
    modes = [BASELINE_MODE]
    modes.extend(
        Mode(pipeline, engine)
        for pipeline in PIPELINES
        for engine in ENGINES
        if Mode(pipeline, engine) != BASELINE_MODE
    )
    return tuple(modes)


def _storage_for(engine: str) -> StorageConfig:
    if engine == "paged":
        return StorageConfig(default_engine="paged", **_PAGED_STRESS)
    return StorageConfig(default_engine=engine)


@contextlib.contextmanager
def _oracle_pipeline() -> Iterator[None]:
    """Force every retained reference implementation at once."""
    with use_reference_lexer(), use_reference_parser(), use_reference_validation():
        yield


def _canonical_error(error: BaseException) -> str:
    """Errors compare by type and arguments, not by formatted message id."""
    return f"{type(error).__name__}{tuple(str(a) for a in error.args)!r}"


def _canonical_rows(result: QueryResult) -> str:
    """Byte-exact rendering: column names plus tuples in result order.

    Row ORDER is part of the contract — every engine must enumerate an
    identically loaded relation identically — so the rendering does not
    sort.
    """
    header = ",".join(result.columns)
    body = ";".join(repr(row) for row in result.to_tuples())
    return f"[{header}]{body}"


#: Signature of the injected-mismatch hook: (mode, domain name, query,
#: outcome) -> outcome.  Returning a different outcome corrupts that cell.
MutateHook = Callable[[Mode, str, CorpusQuery, QueryOutcome], QueryOutcome]


class ValidationHarness:
    """Run corpora through the mode matrix and diff against the baseline."""

    def __init__(
        self,
        domains: Optional[Iterable[Domain]] = None,
        modes: Optional[Sequence[Mode]] = None,
        seed: int = 0,
        scale: int = 1,
        narrate: bool = True,
        mutate: Optional[MutateHook] = None,
    ) -> None:
        self.domains = list(domains) if domains is not None else all_domains()
        self.modes = tuple(modes) if modes is not None else default_modes()
        if BASELINE_MODE not in self.modes:
            raise ValueError(f"modes must include the baseline {BASELINE_MODE.key}")
        self.seed = seed
        self.scale = scale
        self.narrate = narrate
        self.mutate = mutate

    # ------------------------------------------------------------------

    def run(self) -> ValidationReport:
        report = ValidationReport(baseline=BASELINE_MODE.key)
        for domain in self.domains:
            report.domains.append(self.run_domain(domain))
        return report

    def run_domain(self, domain: Domain) -> DomainReport:
        corpus = domain.corpus()
        outcomes = {mode: self._run_mode(domain, mode, corpus) for mode in self.modes}
        report = DomainReport(
            domain=domain.name,
            queries=len(corpus),
            modes=[mode.key for mode in self.modes],
        )
        baseline = outcomes[BASELINE_MODE]
        # The corpus label is part of the contract too: the baseline's
        # classification must agree with the category the corpus promises.
        for query, outcome in zip(corpus, baseline):
            if outcome.category is not None and outcome.category != query.category:
                report.mismatches.append(
                    Mismatch(
                        domain=domain.name,
                        query=query.name,
                        mode=BASELINE_MODE.key,
                        kind="taxonomy",
                        baseline=query.category,
                        observed=outcome.category,
                    )
                )
        for mode in self.modes:
            if mode == BASELINE_MODE:
                continue
            for query, base, other in zip(corpus, baseline, outcomes[mode]):
                report.mismatches.extend(
                    self._diff(domain.name, query.name, mode, base, other)
                )
        return report

    # ------------------------------------------------------------------

    def _run_mode(
        self, domain: Domain, mode: Mode, corpus: Tuple[CorpusQuery, ...]
    ) -> list:
        context = _oracle_pipeline() if mode.pipeline == "oracle" else contextlib.nullcontext()
        with context:
            schema = domain.schema()
            database = domain.database(
                seed=self.seed, scale=self.scale, storage=_storage_for(mode.engine)
            )
            lexicon = domain.lexicon() or default_lexicon(schema)
            spec = NarrationSpec(
                schema=schema, registry=TemplateRegistry(schema), lexicon=lexicon
            )
            if mode.pipeline == "oracle":
                translator = QueryTranslator(
                    schema, lexicon=lexicon, phrase_plans=False, cache_size=None
                )
                executor = Executor(
                    database,
                    compiled=False,
                    use_caches=False,
                    index_scans=False,
                    parameterised=False,
                )
            else:
                translator = QueryTranslator(schema, lexicon=lexicon, phrase_plans=True)
                executor = Executor(
                    database,
                    compiled=True,
                    use_caches=True,
                    index_scans=True,
                    parameterised=True,
                )
            narrator = ContentNarrator(database, spec=spec) if self.narrate else None
            outcomes = []
            for query in corpus:
                outcome = self._evaluate(query, translator, executor, narrator)
                if self.mutate is not None:
                    outcome = self.mutate(mode, domain.name, query, outcome)
                outcomes.append(outcome)
            return outcomes

    def _evaluate(
        self,
        query: CorpusQuery,
        translator: QueryTranslator,
        executor: Executor,
        narrator: Optional[ContentNarrator],
    ) -> QueryOutcome:
        translation = category = rows = narration = error = None
        subject = "The query"
        try:
            translated = translator.translate(query.sql)
            translation = translated.text
            if translated.category is not None:
                category = translated.category.value
            subject = translated.text
        except Exception as exc:  # noqa: BLE001 - errors are data here
            error = _canonical_error(exc)
        try:
            result = executor.execute_sql(query.sql)
            if isinstance(result, QueryResult):
                rows = _canonical_rows(result)
                if narrator is not None:
                    narration = narrator.narrate_query_answer(result, subject=subject)
        except Exception as exc:  # noqa: BLE001
            error = _canonical_error(exc) if error is None else error
        return QueryOutcome(
            query=query.name,
            expected_category=query.category,
            translation=translation,
            category=category,
            rows=rows,
            narration=narration,
            error=error,
        )

    def _diff(
        self,
        domain: str,
        query: str,
        mode: Mode,
        base: QueryOutcome,
        other: QueryOutcome,
    ) -> list:
        mismatches = []

        def flag(kind: str, baseline_value, observed_value) -> None:
            mismatches.append(
                Mismatch(
                    domain=domain,
                    query=query,
                    mode=mode.key,
                    kind=kind,
                    baseline=baseline_value,
                    observed=observed_value,
                )
            )

        if base.error != other.error:
            flag("error", base.error, other.error)
        if base.translation != other.translation:
            flag("translation", base.translation, other.translation)
        if base.category != other.category:
            flag("category", base.category, other.category)
        if base.rows != other.rows:
            flag("rows", base.rows, other.rows)
        if base.narration != other.narration:
            flag("narration", base.narration, other.narration)
        return mismatches
