"""Machine-readable reports for the batch differential-validation harness.

The report is deliberately plain data (dataclasses of strings and ints
with ``to_dict``) so the CLI can dump it as JSON, CI can archive it, and
tests can assert on it without touching harness internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "DomainReport",
    "Mismatch",
    "QueryOutcome",
    "ValidationReport",
]

#: The mismatch kinds the differ can emit, in report order.
MISMATCH_KINDS = ("translation", "category", "rows", "narration", "error", "taxonomy")


@dataclass(frozen=True)
class QueryOutcome:
    """Everything one (mode, query) evaluation produced, canonicalised.

    Exactly one of the payload fields may be ``None`` per stage: ``error``
    is set when the stage raised, in which case the downstream fields stay
    ``None`` (a query that fails to translate still executes; a query that
    fails to execute is never narrated).
    """

    query: str
    expected_category: str
    translation: Optional[str] = None
    category: Optional[str] = None
    rows: Optional[str] = None
    narration: Optional[str] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "query": self.query,
            "expected_category": self.expected_category,
            "translation": self.translation,
            "category": self.category,
            "rows": self.rows,
            "narration": self.narration,
            "error": self.error,
        }


@dataclass(frozen=True)
class Mismatch:
    """One divergence between the baseline mode and another mode."""

    domain: str
    query: str
    mode: str
    kind: str
    baseline: Optional[str]
    observed: Optional[str]

    def __post_init__(self) -> None:
        if self.kind not in MISMATCH_KINDS:
            raise ValueError(f"kind must be one of {MISMATCH_KINDS}, got {self.kind!r}")

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "domain": self.domain,
            "query": self.query,
            "mode": self.mode,
            "kind": self.kind,
            "baseline": self.baseline,
            "observed": self.observed,
        }

    def describe(self) -> str:
        return (
            f"{self.domain}/{self.query} [{self.mode}] {self.kind}: "
            f"baseline={self.baseline!r} observed={self.observed!r}"
        )


@dataclass
class DomainReport:
    """The outcome of validating one domain across the whole mode matrix."""

    domain: str
    queries: int
    modes: List[str]
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def comparisons(self) -> int:
        # The baseline mode is compared against every other mode per query.
        return self.queries * max(0, len(self.modes) - 1)

    def to_dict(self) -> dict:
        return {
            "domain": self.domain,
            "queries": self.queries,
            "modes": list(self.modes),
            "comparisons": self.comparisons,
            "ok": self.ok,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }


@dataclass
class ValidationReport:
    """The full batch run: every domain, every mode, every query."""

    baseline: str
    domains: List[DomainReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(domain.ok for domain in self.domains)

    @property
    def mismatches(self) -> List[Mismatch]:
        return [m for domain in self.domains for m in domain.mismatches]

    @property
    def total_queries(self) -> int:
        return sum(domain.queries for domain in self.domains)

    @property
    def total_comparisons(self) -> int:
        return sum(domain.comparisons for domain in self.domains)

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline,
            "ok": self.ok,
            "total_queries": self.total_queries,
            "total_comparisons": self.total_comparisons,
            "domains": [domain.to_dict() for domain in self.domains],
        }

    def render(self) -> str:
        """A human-readable summary (the CLI's default output)."""
        lines = [
            f"baseline mode: {self.baseline}",
            f"domains: {len(self.domains)}  queries: {self.total_queries}  "
            f"comparisons: {self.total_comparisons}",
        ]
        for domain in self.domains:
            status = "ok" if domain.ok else f"{len(domain.mismatches)} MISMATCHES"
            lines.append(
                f"  {domain.domain:<14} {domain.queries:>3} queries x "
                f"{len(domain.modes)} modes: {status}"
            )
            for mismatch in domain.mismatches:
                lines.append(f"    ! {mismatch.describe()}")
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)
