"""Batch differential validation: corpora x pipelines x engines.

See :mod:`repro.validation.harness` for the matrix runner and
:mod:`repro.validation.report` for the report shape.  The command-line
front end lives in ``tools/validate_corpus.py``.
"""

from repro.validation.harness import (
    BASELINE_MODE,
    Mode,
    ValidationHarness,
    default_modes,
)
from repro.validation.report import (
    DomainReport,
    Mismatch,
    QueryOutcome,
    ValidationReport,
)

__all__ = [
    "BASELINE_MODE",
    "DomainReport",
    "Mismatch",
    "Mode",
    "QueryOutcome",
    "ValidationHarness",
    "ValidationReport",
    "default_modes",
]
