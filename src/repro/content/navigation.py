"""Data navigation along foreign-key paths.

The content narrator frequently needs "the MOVIES rows related to this
DIRECTOR row through DIRECTED" — i.e. to follow a path of relations in the
schema graph and collect the rows reachable from a starting tuple.  Bridge
relations along the way contribute nothing to the narrative (paper,
Section 2.2: DIRECTED "participates in the translation process ... only
for connecting the other two") but their rows drive the navigation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.catalog.foreign_key import ForeignKey
from repro.catalog.schema import Schema
from repro.storage.database import Database
from repro.storage.row import Row


def join_columns(schema: Schema, source: str, target: str) -> Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Column lists joining ``source`` to ``target`` (in that orientation).

    Returns ``(source columns, target columns)`` from whichever foreign key
    connects the two relations, or ``None`` when they are unrelated.
    """
    for fk in schema.foreign_keys_between(source, target):
        if fk.source_relation == schema.relation(source).name:
            return fk.source_attributes, fk.target_attributes
        return fk.target_attributes, fk.source_attributes
    return None


def related_rows(
    database: Database, path: Sequence[str], start_row: Row
) -> List[Row]:
    """Rows of the last relation of ``path`` reachable from ``start_row``.

    ``path`` is a sequence of relation names whose consecutive members are
    connected by foreign keys (as produced by
    :meth:`repro.graph.SchemaGraph.shortest_path`).  The first relation is
    the one ``start_row`` belongs to.  Duplicate end rows (reachable via
    several intermediate rows) are collapsed.
    """
    schema = database.schema
    if len(path) < 2:
        return [start_row]

    current_relation = schema.relation(path[0]).name
    frontier: List[Row] = [start_row]
    for next_name in path[1:]:
        next_relation = schema.relation(next_name).name
        columns = join_columns(schema, current_relation, next_relation)
        if columns is None:
            return []
        source_columns, target_columns = columns
        next_table = database.table(next_relation)
        next_frontier: List[Row] = []
        seen_keys = set()
        for row in frontier:
            values = [row.get(column) for column in source_columns]
            if any(value is None for value in values):
                continue
            for match in next_table.lookup(target_columns, values):
                key = tuple(sorted(match.as_dict().items()))
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                next_frontier.append(match)
        frontier = next_frontier
        current_relation = next_relation
    return frontier


def find_by_heading(
    database: Database, relation_name: str, heading_value, heading_attribute: Optional[str] = None
) -> Optional[Row]:
    """The first row of ``relation_name`` whose heading attribute equals ``heading_value``."""
    relation = database.schema.relation(relation_name)
    attribute = heading_attribute or relation.heading_attribute.name
    matches = database.table(relation.name).lookup((attribute,), (heading_value,))
    if matches:
        return matches[0]
    return None


def non_bridge_path(schema: Schema, path: Sequence[str]) -> List[str]:
    """The relations of ``path`` that actually contribute to a narrative.

    Bridge relations are kept out; the endpoints are always kept.
    """
    if not path:
        return []
    kept = []
    for index, name in enumerate(path):
        relation = schema.relation(name)
        if index in (0, len(path) - 1) or not relation.bridge:
            kept.append(relation.name)
    return kept
