"""Designer-provided template annotations for the shipped datasets.

The paper's mechanism assumes that "labels are assigned once, e.g., by the
designer, at an initial design phase"; this module plays the designer's
role for the three shipped schemas.  The movie annotations reproduce the
Section 2.2 examples verbatim: the DIRECTOR birth templates, the
``MOVIE_LIST`` loop, and the "As a director, ... work includes ..." join
label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.templates.parser import parse_list_template, parse_template
from repro.templates.registry import TemplateRegistry
from repro.templates.spec import ListTemplate

#: The MOVIE_LIST definition, in the paper's own DEFINE syntax.
MOVIE_LIST_DEFINITION = """
DEFINE MOVIE_LIST as
[i < arityOf(TITLE)]
{MOVIES.title[i] + " (" + MOVIES.year[i] + "), "}
[i = arityOf(TITLE)]
"and " + {MOVIES.title[i] + " (" + MOVIES.year[i] + ")"}
"""


@dataclass
class NarrationSpec:
    """Everything the content narrator needs for one schema.

    ``attribute_order`` optionally fixes the narration order of a
    relation's descriptive attributes (the paper narrates the director's
    birth location before the birth date).
    """

    schema: Schema
    registry: TemplateRegistry
    lexicon: Lexicon
    attribute_order: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def order_for(self, relation_name: str) -> Optional[Sequence[str]]:
        canonical = self.schema.relation(relation_name).name
        return self.attribute_order.get(canonical)


def default_spec(schema: Schema) -> NarrationSpec:
    """A spec with only derived defaults (no designer annotations)."""
    return NarrationSpec(
        schema=schema,
        registry=TemplateRegistry(schema),
        lexicon=default_lexicon(schema),
    )


def movie_spec(schema: Schema) -> NarrationSpec:
    """The Section 2.2 annotations for the Figure 1 movie schema."""
    registry = TemplateRegistry(schema)

    # Projection-edge labels for DIRECTOR: the two "was born" templates.
    registry.set_projection_template(
        "DIRECTOR",
        "blocation",
        parse_template(
            'DIRECTOR.name + " was born" + " in " + DIRECTOR.blocation',
            subject="name",
            verb="was born",
        ),
    )
    registry.set_projection_template(
        "DIRECTOR",
        "bdate",
        parse_template(
            'DIRECTOR.name + " was born" + " on " + DIRECTOR.bdate',
            subject="name",
            verb="was born",
        ),
    )

    # Projection-edge label for MOVIES.year, used by the procedural mode
    # ("Match Point was released in 2005.").
    registry.set_projection_template(
        "MOVIES",
        "year",
        parse_template(
            'MOVIES.title + " was released in " + MOVIES.year',
            subject="title",
            verb="was released in",
        ),
    )

    # Relation-node labels (alternative (a): heading-only sentences).
    registry.set_relation_template(
        "DIRECTOR",
        parse_template('"the director\'s name is " + DIRECTOR.name', subject="name"),
    )
    registry.set_relation_template(
        "MOVIES",
        parse_template('"the movie " + MOVIES.title + " (" + MOVIES.year + ")"', subject="title"),
    )
    registry.set_relation_template(
        "ACTOR",
        parse_template('"the actor\'s name is " + ACTOR.name', subject="name"),
    )

    # The MOVIE_LIST loop.  The same definition can be written in the paper's
    # DEFINE syntax (see MOVIE_LIST_DEFINITION and its parser tests); here it
    # is constructed directly with ", " separators and a ", and " before the
    # final item, which is how the paper's narrative punctuates the list.
    movie_item = parse_template('MOVIES.title + " (" + MOVIES.year + ")"')
    movie_list = ListTemplate(
        name="MOVIE_LIST",
        item=movie_item,
        last_item=movie_item,
        separator=", ",
        last_separator=", and ",
        pair_separator=" and ",
    )
    registry.set_list_template(movie_list)

    registry.set_join_template(
        "DIRECTOR",
        "MOVIES",
        parse_template(
            '"As a director, " + DIRECTOR.name + "\'s work includes " + MOVIE_LIST',
            subject="name",
        ),
    )
    registry.set_join_template(
        "ACTOR",
        "MOVIES",
        parse_template(
            '"As an actor, " + ACTOR.name + " appears in " + MOVIE_LIST',
            subject="name",
        ),
    )
    registry.set_join_template(
        "MOVIES",
        "GENRE",
        parse_template(
            '"the genre of the movie " + MOVIES.title + " is " + GENRE.genre',
            subject="title",
        ),
    )

    lexicon = default_lexicon(schema)
    lexicon.set_concept("MOVIES", "movie", "movies")
    lexicon.set_concept("GENRE", "genre", "genres")
    lexicon.set_relationship_verb("ACTOR", "MOVIES", "plays in")
    lexicon.set_relationship_verb("DIRECTOR", "MOVIES", "directed")
    lexicon.set_caption("MOVIES", "year", "release year")
    lexicon.set_caption("DIRECTOR", "bdate", "birth date")
    lexicon.set_caption("DIRECTOR", "blocation", "birth location")

    return NarrationSpec(
        schema=schema,
        registry=registry,
        lexicon=lexicon,
        attribute_order={"DIRECTOR": ("blocation", "bdate")},
    )


def employee_spec(schema: Schema) -> NarrationSpec:
    """Annotations for the EMP/DEPT schema of Section 3.1."""
    registry = TemplateRegistry(schema)
    registry.set_projection_template(
        "EMP",
        "sal",
        parse_template('EMP.name + " earns " + EMP.sal', subject="name", verb="earns"),
    )
    registry.set_projection_template(
        "EMP",
        "age",
        parse_template('EMP.name + " is " + EMP.age + " years old"', subject="name", verb="is"),
    )
    registry.set_relation_template(
        "EMP", parse_template('"the employee\'s name is " + EMP.name', subject="name")
    )
    registry.set_relation_template(
        "DEPT",
        parse_template('"the department " + DEPT.dname', subject="dname"),
    )
    lexicon = default_lexicon(schema)
    lexicon.set_concept("EMP", "employee", "employees")
    lexicon.set_concept("DEPT", "department", "departments")
    lexicon.set_caption("EMP", "sal", "salary")
    return NarrationSpec(schema=schema, registry=registry, lexicon=lexicon)


def library_spec(schema: Schema) -> NarrationSpec:
    """Annotations for the digital-library schema of Section 2.1."""
    registry = TemplateRegistry(schema)
    registry.set_projection_template(
        "ITEM",
        "year",
        parse_template(
            'ITEM.title + " was published in " + ITEM.year',
            subject="title",
            verb="was published in",
        ),
    )
    registry.set_projection_template(
        "AUTHOR",
        "country",
        parse_template(
            'AUTHOR.name + " comes from " + AUTHOR.country',
            subject="name",
            verb="comes from",
        ),
    )
    library_item = parse_template('ITEM.title + " (" + ITEM.year + ")"')
    registry.set_list_template(
        ListTemplate(
            name="ITEM_LIST",
            item=library_item,
            last_item=library_item,
            separator=", ",
            last_separator=", and ",
            pair_separator=" and ",
        )
    )
    registry.set_join_template(
        "AUTHOR",
        "ITEM",
        parse_template(
            '"As an author, " + AUTHOR.name + "\'s work includes " + ITEM_LIST',
            subject="name",
        ),
    )
    registry.set_join_template(
        "COLLECTION",
        "ITEM",
        parse_template(
            '"the collection " + COLLECTION.name + " contains " + ITEM_LIST',
            subject="name",
        ),
    )
    lexicon = default_lexicon(schema)
    lexicon.set_concept("COLLECTION", "collection", "collections")
    lexicon.set_concept("ITEM", "item", "items")
    lexicon.set_concept("AUTHOR", "author", "authors")
    return NarrationSpec(schema=schema, registry=registry, lexicon=lexicon)
