"""Ranking of relations and tuples for size-bounded narratives.

Section 2.2: limiting the resulting text "can be realized either with
structural constraints affecting the traversal of the database schema
graph based on weights on its nodes and/or edges, or with some notion of
ranking of the relations and tuples involved.  The latter would force the
most significant tuples to be presented first and the less significant
tuples to be ignored".

Tuple significance combines the owning relation's weight with the tuple's
*connectivity* — how many related tuples it reaches through foreign keys —
so "Woody Allen" (three movies) outranks a director with none.

Connectivity is served by a *maintained* structure
(:class:`ConnectivityTracker`): per-row counts are built once per database
and then updated incrementally on every DML through the table-observer
hooks, exactly like the hash indexes, so :func:`rank_tuples` never
re-scores rows.  The relation weight is a per-relation constant, so the
maintained ordering is shared by every user profile.  The original
score-everything path is retained as the oracle
(``rank_tuples(..., maintained=False)``).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.catalog.relation import Relation
from repro.content.personalization import DEFAULT_PROFILE, UserProfile
from repro.storage.database import Database
from repro.storage.row import Row
from repro.storage.api import TableStorage


@dataclass(frozen=True)
class RankedTuple:
    """A tuple with its computed significance score."""

    relation_name: str
    row: Row
    score: float

    def __lt__(self, other: "RankedTuple") -> bool:  # pragma: no cover - trivial
        return self.score < other.score


def tuple_connectivity(database: Database, relation: Relation, row: Row) -> int:
    """How many rows in other relations reference (or are referenced by) ``row``."""
    schema = database.schema
    count = 0
    for fk in schema.foreign_keys_to(relation.name):
        values = [row.get(col) for col in fk.target_attributes]
        if any(v is None for v in values):
            continue
        count += len(database.table(fk.source_relation).lookup(fk.source_attributes, values))
    for fk in schema.foreign_keys_from(relation.name):
        values = [row.get(col) for col in fk.source_attributes]
        if any(v is None for v in values):
            continue
        count += len(database.table(fk.target_relation).lookup(fk.target_attributes, values))
    return count


def score_tuple(
    database: Database,
    relation: Relation,
    row: Row,
    profile: UserProfile = DEFAULT_PROFILE,
) -> float:
    """Significance score: relation weight plus dampened connectivity."""
    weight = profile.relation_weight(relation)
    connectivity = tuple_connectivity(database, relation, row)
    return weight + 0.5 * connectivity


class ConnectivityTracker:
    """Maintained per-row connectivity counts and ranked orders.

    Built once per database (first ranking touch), then kept current by
    the table-observer hooks: every insert/delete/update adjusts only the
    counts of the rows the change actually touches — the row itself plus
    the parents/children its foreign-key values reach through the hash
    indexes.  Ranked row orders are sorted lazily per relation and cached
    until a count (or a sort key) in that relation changes, so repeated
    ``rank_tuples`` calls are a slice, not a re-scoring pass.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._counts: Dict[str, Dict[int, int]] = {}
        self._stable_keys: Dict[str, Dict[int, Tuple]] = {}
        self._orders: Dict[str, List[int]] = {}
        self._needs_rebuild = False
        self._build()
        for table in database.tables:
            table.add_observer(self)

    # -- construction --------------------------------------------------

    def _build(self) -> None:
        schema = self.database.schema
        self._counts = {
            relation.name: {
                rowid: 0 for rowid, _values in self.database.table(relation.name).rows_with_ids()
            }
            for relation in schema.relations
        }
        self._stable_keys = {relation.name: {} for relation in schema.relations}
        self._orders = {}
        for relation in schema.relations:
            table = self.database.table(relation.name)
            for fk in schema.foreign_keys_from(relation.name):
                parent = self.database.table(fk.target_relation)
                parent_index = parent.ensure_index(fk.target_attributes)
                child_counts = self._counts[relation.name]
                parent_counts = self._counts[fk.target_relation]
                for rowid, row in table.rows_with_ids():
                    values = tuple(row.get(column) for column in fk.source_attributes)
                    if any(value is None for value in values):
                        continue
                    parents = parent_index.lookup(values)
                    if parents:
                        child_counts[rowid] += len(parents)
                        for parent_id in parents:
                            parent_counts[parent_id] += 1
        self._needs_rebuild = False

    # -- observer protocol ---------------------------------------------

    def row_inserted(self, table: TableStorage, rowid: int, values: Mapping[str, Any]) -> None:
        if self._needs_rebuild:
            return
        name = table.name
        schema = self.database.schema
        self._counts[name][rowid] = 0
        dirty = {name}
        for fk in schema.foreign_keys_from(name):
            key = tuple(values.get(column) for column in fk.source_attributes)
            if any(value is None for value in key):
                continue
            parent = self.database.table(fk.target_relation)
            parent_counts = self._counts[fk.target_relation]
            for parent_id in parent.ensure_index(fk.target_attributes).lookup(key):
                self._counts[name][rowid] += 1
                if fk.target_relation == name and parent_id == rowid:
                    # Self-reference: the row is its own parent; the child
                    # direction is added below via the fk-to pass.
                    self._counts[name][rowid] += 1
                else:
                    parent_counts[parent_id] += 1
                    dirty.add(fk.target_relation)
        for fk in schema.foreign_keys_to(name):
            key = tuple(values.get(column) for column in fk.target_attributes)
            if any(value is None for value in key):
                continue
            child = self.database.table(fk.source_relation)
            child_counts = self._counts[fk.source_relation]
            for child_id in child.ensure_index(fk.source_attributes).lookup(key):
                if fk.source_relation == name and child_id == rowid:
                    continue  # the self pair was fully counted above
                self._counts[name][rowid] += 1
                child_counts[child_id] += 1
                dirty.add(fk.source_relation)
        for relation_name in dirty:
            self._orders.pop(relation_name, None)

    def row_deleted(self, table: TableStorage, rowid: int, values: Mapping[str, Any]) -> None:
        if self._needs_rebuild:
            return
        name = table.name
        schema = self.database.schema
        self._counts[name].pop(rowid, None)
        self._stable_keys[name].pop(rowid, None)
        dirty = {name}
        for fk in schema.foreign_keys_from(name):
            key = tuple(values.get(column) for column in fk.source_attributes)
            if any(value is None for value in key):
                continue
            parent = self.database.table(fk.target_relation)
            parent_counts = self._counts[fk.target_relation]
            for parent_id in parent.ensure_index(fk.target_attributes).lookup(key):
                parent_counts[parent_id] -= 1
                dirty.add(fk.target_relation)
        for fk in schema.foreign_keys_to(name):
            key = tuple(values.get(column) for column in fk.target_attributes)
            if any(value is None for value in key):
                continue
            child = self.database.table(fk.source_relation)
            child_counts = self._counts[fk.source_relation]
            for child_id in child.ensure_index(fk.source_attributes).lookup(key):
                child_counts[child_id] -= 1
                dirty.add(fk.source_relation)
        for relation_name in dirty:
            self._orders.pop(relation_name, None)

    def row_updated(
        self,
        table: TableStorage,
        rowid: int,
        old_values: Mapping[str, Any],
        new_values: Mapping[str, Any],
    ) -> None:
        if self._needs_rebuild:
            return
        name = table.name
        schema = self.database.schema
        self._stable_keys[name].pop(rowid, None)
        dirty = {name}
        for fk in schema.foreign_keys_from(name):
            old_key = tuple(old_values.get(column) for column in fk.source_attributes)
            new_key = tuple(new_values.get(column) for column in fk.source_attributes)
            if old_key == new_key:
                continue
            parent = self.database.table(fk.target_relation)
            index = parent.ensure_index(fk.target_attributes)
            parent_counts = self._counts[fk.target_relation]
            for key, delta in ((old_key, -1), (new_key, +1)):
                if any(value is None for value in key):
                    continue
                for parent_id in index.lookup(key):
                    if fk.target_relation == name and parent_id == rowid:
                        continue  # own count is recomputed below
                    parent_counts[parent_id] += delta
                    dirty.add(fk.target_relation)
        for fk in schema.foreign_keys_to(name):
            old_key = tuple(old_values.get(column) for column in fk.target_attributes)
            new_key = tuple(new_values.get(column) for column in fk.target_attributes)
            if old_key == new_key:
                continue
            child = self.database.table(fk.source_relation)
            index = child.ensure_index(fk.source_attributes)
            child_counts = self._counts[fk.source_relation]
            for key, delta in ((old_key, -1), (new_key, +1)):
                if any(value is None for value in key):
                    continue
                for child_id in index.lookup(key):
                    if fk.source_relation == name and child_id == rowid:
                        continue
                    child_counts[child_id] += delta
                    dirty.add(fk.source_relation)
        self._counts[name][rowid] = tuple_connectivity(
            self.database, table.relation, table.row_by_id(rowid)
        )
        for relation_name in dirty:
            self._orders.pop(relation_name, None)

    def table_truncated(self, table: TableStorage) -> None:
        # Truncation invalidates counts across every FK-connected relation;
        # it is rare, so the tracker just rebuilds lazily on next access.
        self._needs_rebuild = True

    # -- queries ---------------------------------------------------------

    def connectivity(self, relation_name: str, rowid: int) -> int:
        if self._needs_rebuild:
            self._build()
        return self._counts[relation_name][rowid]

    def ranked_rowids(self, relation_name: str) -> List[int]:
        """Row ids ordered by (descending connectivity, stable row key)."""
        if self._needs_rebuild:
            self._build()
        order = self._orders.get(relation_name)
        if order is None:
            table = self.database.table(relation_name)
            counts = self._counts[relation_name]
            keys = self._stable_keys[relation_name]

            def sort_key(row_id: int):
                stable = keys.get(row_id)
                if stable is None:
                    stable = _stable_key(table.row_by_id(row_id))
                    keys[row_id] = stable
                return (-counts[row_id], stable)

            order = sorted(counts, key=sort_key)
            self._orders[relation_name] = order
        return order


#: One tracker per database, created on first ranking touch (the tracker
#: registry parallels ``graph_for``/``builder_for``).
_TRACKERS: "weakref.WeakKeyDictionary[Database, ConnectivityTracker]" = (
    weakref.WeakKeyDictionary()
)


def tracker_for(database: Database) -> ConnectivityTracker:
    """The shared maintained-connectivity tracker for ``database``."""
    tracker = _TRACKERS.get(database)
    if tracker is None:
        tracker = ConnectivityTracker(database)
        _TRACKERS[database] = tracker
    return tracker


def rank_tuples(
    database: Database,
    relation_name: str,
    limit: Optional[int] = None,
    profile: UserProfile = DEFAULT_PROFILE,
    maintained: bool = True,
) -> List[RankedTuple]:
    """The relation's tuples ordered most-significant-first.

    With ``maintained`` (the default) scores come from the incremental
    :class:`ConnectivityTracker`; ``maintained=False`` is the original
    score-every-row oracle the differential tests compare against.  The
    relation-weight term is constant per relation, so both paths produce
    the same order for every profile.
    """
    relation = database.schema.relation(relation_name)
    if maintained:
        tracker = tracker_for(database)
        weight = profile.relation_weight(relation)
        order = tracker.ranked_rowids(relation.name)
        if limit is not None:
            order = order[:limit]
        table = database.table(relation.name)
        counts = tracker._counts[relation.name]
        return [
            RankedTuple(
                relation_name=relation.name,
                row=table.row_by_id(rowid),
                score=weight + 0.5 * counts[rowid],
            )
            for rowid in order
        ]
    ranked = [
        RankedTuple(
            relation_name=relation.name,
            row=row,
            score=score_tuple(database, relation, row, profile),
        )
        for row in database.table(relation.name).rows()
    ]
    ranked.sort(key=lambda r: (-r.score, _stable_key(r.row)))
    if limit is not None:
        ranked = ranked[:limit]
    return ranked


def rank_relations(
    database: Database,
    profile: UserProfile = DEFAULT_PROFILE,
    include_bridges: bool = False,
    limit: Optional[int] = None,
) -> List[Relation]:
    """Relations ordered by interestingness (weight, then population)."""
    relations = [
        r
        for r in database.schema.relations
        if (include_bridges or not r.bridge) and profile.includes(r.name)
    ]
    relations.sort(
        key=lambda r: (-profile.relation_weight(r), -len(database.table(r.name)), r.name)
    )
    if limit is not None:
        relations = relations[:limit]
    return relations


def _stable_key(row: Row) -> Tuple:
    return tuple(sorted((k, str(v)) for k, v in row.as_dict().items()))


def coverage_plan(
    database: Database,
    profile: UserProfile = DEFAULT_PROFILE,
    max_relations: Optional[int] = None,
    max_tuples_per_relation: Optional[int] = None,
) -> Dict[str, List[RankedTuple]]:
    """Which tuples a size-bounded database narrative should cover.

    Returns an ordered mapping of relation name to its ranked tuples,
    restricted by the two limits (profile limits apply when the arguments
    are ``None``).
    """
    tuples_limit = (
        max_tuples_per_relation
        if max_tuples_per_relation is not None
        else profile.max_tuples_per_relation
    )
    plan: Dict[str, List[RankedTuple]] = {}
    for relation in rank_relations(database, profile, limit=max_relations):
        plan[relation.name] = rank_tuples(database, relation.name, tuples_limit, profile)
    return plan
