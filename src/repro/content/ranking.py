"""Ranking of relations and tuples for size-bounded narratives.

Section 2.2: limiting the resulting text "can be realized either with
structural constraints affecting the traversal of the database schema
graph based on weights on its nodes and/or edges, or with some notion of
ranking of the relations and tuples involved.  The latter would force the
most significant tuples to be presented first and the less significant
tuples to be ignored".

Tuple significance combines the owning relation's weight with the tuple's
*connectivity* — how many related tuples it reaches through foreign keys —
so "Woody Allen" (three movies) outranks a director with none.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.relation import Relation
from repro.content.personalization import DEFAULT_PROFILE, UserProfile
from repro.storage.database import Database
from repro.storage.row import Row


@dataclass(frozen=True)
class RankedTuple:
    """A tuple with its computed significance score."""

    relation_name: str
    row: Row
    score: float

    def __lt__(self, other: "RankedTuple") -> bool:  # pragma: no cover - trivial
        return self.score < other.score


def tuple_connectivity(database: Database, relation: Relation, row: Row) -> int:
    """How many rows in other relations reference (or are referenced by) ``row``."""
    schema = database.schema
    count = 0
    for fk in schema.foreign_keys_to(relation.name):
        values = [row.get(col) for col in fk.target_attributes]
        if any(v is None for v in values):
            continue
        count += len(database.table(fk.source_relation).lookup(fk.source_attributes, values))
    for fk in schema.foreign_keys_from(relation.name):
        values = [row.get(col) for col in fk.source_attributes]
        if any(v is None for v in values):
            continue
        count += len(database.table(fk.target_relation).lookup(fk.target_attributes, values))
    return count


def score_tuple(
    database: Database,
    relation: Relation,
    row: Row,
    profile: UserProfile = DEFAULT_PROFILE,
) -> float:
    """Significance score: relation weight plus dampened connectivity."""
    weight = profile.relation_weight(relation)
    connectivity = tuple_connectivity(database, relation, row)
    return weight + 0.5 * connectivity


def rank_tuples(
    database: Database,
    relation_name: str,
    limit: Optional[int] = None,
    profile: UserProfile = DEFAULT_PROFILE,
) -> List[RankedTuple]:
    """The relation's tuples ordered most-significant-first."""
    relation = database.schema.relation(relation_name)
    ranked = [
        RankedTuple(
            relation_name=relation.name,
            row=row,
            score=score_tuple(database, relation, row, profile),
        )
        for row in database.table(relation.name).rows()
    ]
    ranked.sort(key=lambda r: (-r.score, _stable_key(r.row)))
    if limit is not None:
        ranked = ranked[:limit]
    return ranked


def rank_relations(
    database: Database,
    profile: UserProfile = DEFAULT_PROFILE,
    include_bridges: bool = False,
    limit: Optional[int] = None,
) -> List[Relation]:
    """Relations ordered by interestingness (weight, then population)."""
    relations = [
        r
        for r in database.schema.relations
        if (include_bridges or not r.bridge) and profile.includes(r.name)
    ]
    relations.sort(
        key=lambda r: (-profile.relation_weight(r), -len(database.table(r.name)), r.name)
    )
    if limit is not None:
        relations = relations[:limit]
    return relations


def _stable_key(row: Row) -> Tuple:
    return tuple(sorted((k, str(v)) for k, v in row.as_dict().items()))


def coverage_plan(
    database: Database,
    profile: UserProfile = DEFAULT_PROFILE,
    max_relations: Optional[int] = None,
    max_tuples_per_relation: Optional[int] = None,
) -> Dict[str, List[RankedTuple]]:
    """Which tuples a size-bounded database narrative should cover.

    Returns an ordered mapping of relation name to its ranked tuples,
    restricted by the two limits (profile limits apply when the arguments
    are ``None``).
    """
    tuples_limit = (
        max_tuples_per_relation
        if max_tuples_per_relation is not None
        else profile.max_tuples_per_relation
    )
    plan: Dict[str, List[RankedTuple]] = {}
    for relation in rank_relations(database, profile, limit=max_relations):
        plan[relation.name] = rank_tuples(database, relation.name, tuples_limit, profile)
    return plan
