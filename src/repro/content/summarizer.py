"""Narratives for derived data: schemas, statistics, samples, histograms.

Section 2.1 extends the idea of translating data "to all other forms of
primary or derived data that a database may contain.  Database samples,
histograms, data distribution approximations ... Describing the schema
itself ... User profiles ... and other forms of metadata".  This module
covers those cases.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.catalog.schema import Schema
from repro.content.personalization import UserProfile
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.lexicon.morphology import join_list, number_word, pluralize
from repro.nlg.realize import realize_paragraph
from repro.storage.database import Database


def describe_schema(schema: Schema, lexicon: Optional[Lexicon] = None) -> str:
    """A textual description of the schema's entities and relationships."""
    lexicon = lexicon or default_lexicon(schema)
    sentences: List[str] = []
    concepts = [
        lexicon.concept_plural(relation.name)
        for relation in schema.relations
        if not relation.bridge
    ]
    sentences.append(
        f"The {schema.name} database stores information about {join_list(concepts)}"
    )
    for relation in schema.relations:
        if relation.bridge:
            continue
        attributes = [
            lexicon.caption(relation.name, a.name)
            for a in relation.attributes
            if not a.primary_key
        ]
        if attributes:
            sentences.append(
                f"Each {lexicon.concept(relation.name)} has {join_list(attributes)}"
            )
    for fk in schema.foreign_keys:
        source = schema.relation(fk.source_relation)
        target = schema.relation(fk.target_relation)
        verb = fk.verb_phrase or "is related to"
        if source.bridge:
            continue
        sentences.append(
            f"A {lexicon.concept(source.name)} {verb}"
            f" {pluralize(lexicon.concept(target.name))}"
        )
    bridge_links = _bridge_sentences(schema, lexicon)
    sentences.extend(bridge_links)
    return realize_paragraph(sentences)


def _bridge_sentences(schema: Schema, lexicon: Lexicon) -> List[str]:
    """Describe many-to-many relationships expressed through bridge relations."""
    sentences = []
    for relation in schema.relations:
        if not relation.bridge:
            continue
        targets = [fk.target_relation for fk in schema.foreign_keys_from(relation.name)]
        if len(targets) < 2:
            continue
        endpoints = [lexicon.concept_plural(t) for t in targets[:2]]
        sentences.append(
            f"{endpoints[0].capitalize()} are connected to {endpoints[1]}"
            f" through the {relation.name} relationship"
        )
    return sentences


def describe_statistics(database: Database, lexicon: Optional[Lexicon] = None) -> str:
    """A short narrative of the database's size (row counts per relation)."""
    lexicon = lexicon or default_lexicon(database.schema)
    parts = []
    for relation in database.schema.relations:
        if relation.bridge:
            continue
        count = len(database.table(relation.name))
        noun = lexicon.concept_plural(relation.name) if count != 1 else lexicon.concept(relation.name)
        parts.append(f"{number_word(count)} {noun}")
    return realize_paragraph([f"The database currently describes {join_list(parts)}"])


def describe_sample(
    database: Database,
    relation_name: str,
    sample_size: int = 3,
    lexicon: Optional[Lexicon] = None,
) -> str:
    """Describe a small sample of a relation ("a sample ... includes ...")."""
    lexicon = lexicon or default_lexicon(database.schema)
    relation = database.schema.relation(relation_name)
    heading = relation.heading_attribute.name
    # Batch column accessor: one call instead of materialising whole rows
    # (the columnar engine answers this without touching other columns).
    column = database.table(relation.name).column(heading)
    values = [str(value) for value in column[:sample_size]]
    if not values:
        return realize_paragraph(
            [f"The {lexicon.concept(relation_name)} relation is currently empty"]
        )
    noun = lexicon.concept_plural(relation_name)
    return realize_paragraph(
        [f"A sample of the {noun} in the database includes {join_list(values)}"]
    )


def describe_histogram(
    values: Sequence[float],
    subject: str,
    bucket_count: int = 4,
) -> str:
    """Narrate an equi-width histogram over numeric values.

    Used for the paper's "histograms, data distribution approximations"
    motivation: e.g. movie release years → "Most movies (5 of 9) were
    released between 1995 and 2005".
    """
    cleaned = sorted(v for v in values if v is not None)
    if not cleaned:
        return realize_paragraph([f"There are no {subject} values to summarise"])
    low, high = cleaned[0], cleaned[-1]
    if low == high:
        return realize_paragraph(
            [f"All {len(cleaned)} {subject} values equal {_fmt_number(low)}"]
        )
    width = (high - low) / bucket_count
    buckets = []
    for index in range(bucket_count):
        start = low + index * width
        end = high if index == bucket_count - 1 else low + (index + 1) * width
        members = [
            v for v in cleaned
            if (v >= start and (v < end or (index == bucket_count - 1 and v <= end)))
        ]
        buckets.append((start, end, len(members)))
    start, end, count = max(buckets, key=lambda b: b[2])
    sentences = [
        f"The {subject} values range from {_fmt_number(low)} to {_fmt_number(high)}",
        f"most of them ({count} of {len(cleaned)}) fall between"
        f" {_fmt_number(start)} and {_fmt_number(end)}",
    ]
    return realize_paragraph(sentences)


def describe_profile(profile: UserProfile, schema: Schema) -> str:
    """Narrate a personalisation profile (Section 2.1: "User profiles ...")."""
    sentences = [f"The profile {profile.name} customises how the database talks back"]
    for relation_name, attribute in sorted(profile.heading_overrides.items()):
        sentences.append(
            f"for {relation_name} it prefers to identify tuples by their {attribute}"
        )
    if profile.excluded_relations:
        sentences.append(
            "it never mentions " + join_list(sorted(profile.excluded_relations))
        )
    if profile.budget.max_sentences is not None:
        sentences.append(
            f"narratives are limited to {number_word(profile.budget.max_sentences)} sentences"
        )
    if profile.budget.max_words is not None:
        sentences.append(
            f"narratives are limited to {profile.budget.max_words} words"
        )
    return realize_paragraph(sentences)


def _fmt_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.1f}"
