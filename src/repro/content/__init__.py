"""Database-content translation (Section 2 of the paper)."""

from repro.content.narrator import ContentNarrator
from repro.content.navigation import find_by_heading, non_bridge_path, related_rows
from repro.content.patterns import (
    SynthesisMode,
    join_pattern_clause,
    relationship_sentence,
    split_pattern_clause,
    unary_pattern_clauses,
)
from repro.content.personalization import DEFAULT_PROFILE, UserProfile
from repro.content.presets import (
    MOVIE_LIST_DEFINITION,
    NarrationSpec,
    default_spec,
    employee_spec,
    library_spec,
    movie_spec,
)
from repro.content.ranking import (
    RankedTuple,
    coverage_plan,
    rank_relations,
    rank_tuples,
    score_tuple,
    tuple_connectivity,
)
from repro.content.single_relation import (
    TupleStyle,
    attribute_clause,
    heading_clause,
    heading_value,
    tuple_clauses,
)
from repro.content.summarizer import (
    describe_histogram,
    describe_profile,
    describe_sample,
    describe_schema,
    describe_statistics,
)

__all__ = [
    "ContentNarrator",
    "DEFAULT_PROFILE",
    "MOVIE_LIST_DEFINITION",
    "NarrationSpec",
    "RankedTuple",
    "SynthesisMode",
    "TupleStyle",
    "UserProfile",
    "attribute_clause",
    "coverage_plan",
    "default_spec",
    "describe_histogram",
    "describe_profile",
    "describe_sample",
    "describe_schema",
    "describe_statistics",
    "employee_spec",
    "find_by_heading",
    "heading_clause",
    "heading_value",
    "join_pattern_clause",
    "library_spec",
    "movie_spec",
    "non_bridge_path",
    "rank_relations",
    "rank_tuples",
    "related_rows",
    "relationship_sentence",
    "score_tuple",
    "split_pattern_clause",
    "tuple_clauses",
    "tuple_connectivity",
    "unary_pattern_clauses",
]
