"""Composition of narratives for the structural patterns of Section 2.2.

* Unary pattern (Ri - Rj): the parent tuple's clauses followed by a
  relationship sentence listing the related tuples (the Woody Allen
  example), optionally followed by per-tuple detail sentences in the
  *procedural* synthesis mode.
* Split pattern (Ri < Rj1, Rj2): one sentence whose subject comes from Ri
  and whose subordinate clauses — one per partner — are combined with a
  conjunctive term ("The movie M1 involves the director D1 who was born in
  Italy and the actor A1 who is Greek").
* Join pattern (Ri1, Ri2 > Rj): the symmetric case; the shared relation Rj
  is narrated once and each parent contributes a subordinate clause.
"""

from __future__ import annotations

import enum
from typing import List, Mapping, Optional, Sequence

from repro.catalog.relation import Relation
from repro.content.personalization import DEFAULT_PROFILE, UserProfile
from repro.content.single_relation import TupleStyle, heading_value, tuple_clauses
from repro.lexicon.lexicon import Lexicon
from repro.lexicon.morphology import join_list, pluralize, possessive
from repro.nlg.clause import Clause, EntityPhrase
from repro.nlg.realize import attach_relative
from repro.templates.registry import TemplateRegistry
from repro.templates.spec import ListTemplate, SlotPart, Template, slot, template


class SynthesisMode(enum.Enum):
    """Compact (declarative) vs procedural synthesis (Section 2.2)."""

    COMPACT = "compact"
    PROCEDURAL = "procedural"


# ---------------------------------------------------------------------------
# Unary pattern
# ---------------------------------------------------------------------------


def relationship_sentence(
    parent: Relation,
    parent_row: Mapping,
    child: Relation,
    child_rows: Sequence[Mapping],
    registry: TemplateRegistry,
    lexicon: Lexicon,
    profile: UserProfile = DEFAULT_PROFILE,
    list_template_name: Optional[str] = None,
    compact_list: bool = True,
) -> Optional[Clause]:
    """The sentence connecting a parent tuple to its related child tuples.

    When the join-edge template contains a slot naming a registered list
    template (the paper's ``MOVIE_LIST``), that slot is filled with the
    rendered list; otherwise a default "As a <parent concept>, <NAME>'s
    work includes <list>" style sentence is produced from the lexicon.
    ``compact_list`` controls whether the list items carry their extra
    attributes ("Match Point (2005)") or just the headings ("Match Point").
    """
    if not child_rows:
        return None

    # A designer label registered for the opposite direction (DIRECTOR ->
    # MOVIES when narrating a MOVIES tuple) is still usable as long as there
    # is a single related tuple: the roles are simply swapped so the sentence
    # keeps its intended subject ("As a director, Sofia Ferrara's work
    # includes Ocean Heist (2001)").
    if (
        not registry.has_join_template(parent.name, child.name)
        and registry.has_join_template(child.name, parent.name)
        and len(child_rows) == 1
    ):
        return relationship_sentence(
            child,
            child_rows[0],
            parent,
            [parent_row],
            registry,
            lexicon,
            profile=profile,
            list_template_name=list_template_name,
            compact_list=compact_list,
        )

    parent_subject = heading_value(parent, parent_row, profile)
    join_label = registry.join_template(parent.name, child.name, allow_reverse=False)

    list_name = list_template_name
    if list_name is None and join_label is not None:
        for part in join_label.parts:
            if isinstance(part, SlotPart) and registry.has_list_template(part.attribute):
                list_name = part.attribute
                break

    rendered_list = _render_child_list(
        child, child_rows, registry, profile, list_name, compact_list
    )

    if join_label is not None and list_name is not None:
        values = _join_values(parent, parent_row, child, child_rows)
        values[list_name] = rendered_list
        renderer = registry.compiled(join_label) or join_label
        text = renderer.instantiate(values, strict=False)
        return Clause(subject=text, about=f"{parent.name}->{child.name}",
                      weight=profile.relation_weight(child))

    child_noun = (
        lexicon.concept_plural(child.name)
        if len(child_rows) > 1
        else lexicon.concept(child.name)
    )
    verb = lexicon.relationship_verb(parent.name, child.name)
    if verb in ("directed", "directed by", "wrote", "written", "written by"):
        text = (
            f"As a {lexicon.concept(parent.name)}, {possessive(parent_subject)} work"
            f" includes {rendered_list}"
        )
    else:
        text = (
            f"The {lexicon.concept(parent.name)} {parent_subject}"
            f" {verb or 'is associated with'} the {child_noun} {rendered_list}"
        )
    return Clause(subject=text, about=f"{parent.name}->{child.name}",
                  weight=profile.relation_weight(child))


def _render_child_list(
    child: Relation,
    child_rows: Sequence[Mapping],
    registry: TemplateRegistry,
    profile: UserProfile,
    list_name: Optional[str],
    compact_list: bool,
) -> str:
    if list_name is not None and registry.has_list_template(list_name) and compact_list:
        list_label = registry.list_template(list_name)
        renderer = registry.compiled_list(list_label) or list_label
        return renderer.instantiate(
            [_child_values(child, row) for row in child_rows], strict=False
        )
    headings = [heading_value(child, row, profile) for row in child_rows]
    if compact_list:
        return join_list(headings)
    return ", ".join(headings)


def _child_values(child: Relation, row: Mapping) -> dict:
    values = {}
    for attribute in child.attributes:
        values[attribute.name] = row.get(attribute.name)
        values[f"{child.name}.{attribute.name}"] = row.get(attribute.name)
    return values


def _join_values(
    parent: Relation, parent_row: Mapping, child: Relation, child_rows: Sequence[Mapping]
) -> dict:
    values = {}
    for attribute in parent.attributes:
        values[attribute.name] = parent_row.get(attribute.name)
        values[f"{parent.name}.{attribute.name}"] = parent_row.get(attribute.name)
    if child_rows:
        first = child_rows[0]
        for attribute in child.attributes:
            values.setdefault(attribute.name, first.get(attribute.name))
            values[f"{child.name}.{attribute.name}"] = first.get(attribute.name)
    return values


def unary_pattern_clauses(
    parent: Relation,
    parent_row: Mapping,
    child: Relation,
    child_rows: Sequence[Mapping],
    registry: TemplateRegistry,
    lexicon: Lexicon,
    mode: SynthesisMode = SynthesisMode.COMPACT,
    profile: UserProfile = DEFAULT_PROFILE,
    attribute_order: Optional[Sequence[str]] = None,
) -> List[Clause]:
    """The full unary-pattern narrative: parent detail + relationship [+ children].

    In compact mode the children appear only inside the relationship
    sentence's list (with their extra attributes inlined, e.g. "Match
    Point (2005)").  In procedural mode the list carries headings only and
    every child tuple then gets its own detail sentences — "a coalescence
    of several simple sentences", as the paper puts it.
    """
    clauses = tuple_clauses(
        parent,
        parent_row,
        registry,
        style=TupleStyle.FULL,
        profile=profile,
        attribute_order=attribute_order,
    )
    compact = mode is SynthesisMode.COMPACT
    connection = relationship_sentence(
        parent, parent_row, child, child_rows, registry, lexicon, profile,
        compact_list=compact,
    )
    if connection is not None:
        clauses.append(connection)
    if mode is SynthesisMode.PROCEDURAL:
        for row in child_rows:
            clauses.extend(
                tuple_clauses(child, row, registry, style=TupleStyle.FULL, profile=profile)
            )
    return clauses


# ---------------------------------------------------------------------------
# Split pattern
# ---------------------------------------------------------------------------


def split_pattern_clause(
    center: Relation,
    center_row: Mapping,
    partners: Sequence[tuple],
    registry: TemplateRegistry,
    lexicon: Lexicon,
    profile: UserProfile = DEFAULT_PROFILE,
    verb: str = "involves",
) -> Clause:
    """One sentence for a split pattern Ri < (Rj1, Rj2, ...).

    ``partners`` is a sequence of ``(relation, row)`` pairs.  Each partner
    becomes an entity phrase ("the director D1") carrying its descriptive
    content as a relative clause ("who was born in Italy"); the phrases
    are combined with a conjunctive term, exactly as the paper suggests.
    """
    subject = f"The {lexicon.concept(center.name)} {heading_value(center, center_row, profile)}"
    phrases: List[str] = []
    for partner_relation, partner_row in partners:
        head = (
            f"the {lexicon.concept(partner_relation.name)}"
            f" {heading_value(partner_relation, partner_row, profile)}"
        )
        detail_clauses = tuple_clauses(
            partner_relation,
            partner_row,
            registry,
            style=TupleStyle.FULL,
            profile=profile,
        )
        predicate = _predicate_of(detail_clauses)
        if predicate:
            phrases.append(attach_relative(head, predicate).render())
        else:
            phrases.append(head)
    combined = join_list(phrases)
    return Clause(
        subject=subject,
        verb=verb,
        complements=(combined,),
        about=center.name,
        weight=profile.relation_weight(center),
    )


def _predicate_of(clauses: Sequence[Clause]) -> str:
    """The predicate (verb + complements) of the first informative clause."""
    for clause in clauses:
        if clause.verb:
            return " ".join([clause.verb, *clause.complements]).strip()
    return ""


# ---------------------------------------------------------------------------
# Join pattern
# ---------------------------------------------------------------------------


def join_pattern_clause(
    shared: Relation,
    shared_row: Mapping,
    parents: Sequence[tuple],
    registry: TemplateRegistry,
    lexicon: Lexicon,
    profile: UserProfile = DEFAULT_PROFILE,
) -> Clause:
    """One sentence for a join pattern (Ri1, Ri2 > Rj).

    The shared tuple is the subject and each parent tuple contributes a
    coordinated prepositional phrase: "The movie M1 is shared by the
    director D1 and the actor A1."
    """
    subject = f"The {lexicon.concept(shared.name)} {heading_value(shared, shared_row, profile)}"
    phrases = [
        f"the {lexicon.concept(rel.name)} {heading_value(rel, row, profile)}"
        for rel, row in parents
    ]
    return Clause(
        subject=subject,
        verb="is shared by",
        complements=(join_list(phrases),),
        about=shared.name,
        weight=profile.relation_weight(shared),
    )
