"""Translation of a single relation's tuples into clauses (paper, Section 2.2).

Two alternatives are supported, exactly as the paper describes:

(a) a sentence based only on the heading attribute ("The director's name is
    Woody Allen"), and
(b) one clause per descriptive attribute, followed by common-expression
    aggregation so the subject is not repeated ("Woody Allen was born in
    Brooklyn, New York, USA on December 1, 1935").
"""

from __future__ import annotations

import enum
from typing import List, Mapping, Optional, Sequence

from repro.catalog.relation import Relation
from repro.catalog.types import render_value
from repro.content.personalization import DEFAULT_PROFILE, UserProfile
from repro.nlg.aggregation import merge_clauses
from repro.nlg.clause import Clause
from repro.templates.registry import TemplateRegistry
from repro.templates.spec import SlotPart, Template, TextPart


class TupleStyle(enum.Enum):
    """The two single-relation translation alternatives of Section 2.2."""

    HEADING_ONLY = "heading_only"
    FULL = "full"


def heading_value(relation: Relation, row: Mapping, profile: UserProfile = DEFAULT_PROFILE) -> str:
    """The rendered subject value of a tuple (its heading attribute)."""
    attribute = profile.heading_attribute(relation)
    return render_value(row.get(attribute))


def heading_clause(
    relation: Relation,
    row: Mapping,
    registry: TemplateRegistry,
    profile: UserProfile = DEFAULT_PROFILE,
) -> Clause:
    """Alternative (a): a sentence from the relation's node template."""
    template = registry.relation_template(relation.name)
    renderer = registry.compiled(template) or template
    text = renderer.instantiate(_template_values(relation, row), strict=False)
    return Clause(subject=text, about=relation.name, weight=profile.relation_weight(relation))


def attribute_clause(
    relation: Relation,
    attribute_name: str,
    row: Mapping,
    registry: TemplateRegistry,
    profile: UserProfile = DEFAULT_PROFILE,
) -> Optional[Clause]:
    """The clause contributed by one projection edge for one tuple.

    The clause is built structurally from the edge's template: the leading
    slot becomes the subject, the literal text following it becomes the
    verb, and the instantiated remainder becomes the complement — which is
    what lets :func:`repro.nlg.aggregation.merge_clauses` factor the
    common expression out later.
    """
    if row.get(attribute_name) is None:
        return None
    template = registry.projection_template(relation.name, attribute_name)
    values = _template_values(relation, row)
    compiled = registry.compiled(template)
    if compiled is not None:
        subject, verb, remainder = compiled.split_instantiate(values)
    else:
        subject, verb, remainder = _split_structurally(template, values)
    weight = profile.attribute_weight(relation, attribute_name)
    if subject is None:
        renderer = compiled or template
        return Clause(
            subject=renderer.instantiate(values, strict=False),
            about=f"{relation.name}.{attribute_name}",
            weight=weight,
        )
    return Clause(
        subject=subject,
        verb=verb,
        complements=(remainder,) if remainder else (),
        about=f"{relation.name}.{attribute_name}",
        weight=weight,
    )


def tuple_clauses(
    relation: Relation,
    row: Mapping,
    registry: TemplateRegistry,
    style: TupleStyle = TupleStyle.FULL,
    profile: UserProfile = DEFAULT_PROFILE,
    attribute_order: Optional[Sequence[str]] = None,
    merge: bool = True,
) -> List[Clause]:
    """All clauses describing one tuple, optionally aggregated.

    ``attribute_order`` narrates specific attributes in a specific order
    (the paper's DIRECTOR example lists the birth location before the
    birth date); by default every descriptive attribute is narrated in
    declaration order.
    """
    if style is TupleStyle.HEADING_ONLY:
        return [heading_clause(relation, row, registry, profile)]

    heading_name = profile.heading_attribute(relation)
    names = list(attribute_order) if attribute_order is not None else [
        a.name
        for a in relation.attributes
        if not a.primary_key and a.name != heading_name
    ]
    clauses: List[Clause] = []
    for name in names:
        clause = attribute_clause(relation, name, row, registry, profile)
        if clause is not None:
            clauses.append(clause)
    if not clauses:
        return [heading_clause(relation, row, registry, profile)]
    if merge:
        clauses = merge_clauses(clauses)
    return clauses


def _template_values(relation: Relation, row: Mapping) -> dict:
    """Slot values for a tuple: plain and relation-qualified attribute names."""
    values = {}
    for attribute in relation.attributes:
        value = row.get(attribute.name)
        values[attribute.name] = value
        values[f"{relation.name}.{attribute.name}"] = value
    return values


def _split_structurally(template: Template, values: Mapping) -> tuple:
    """Split an instantiated template into (subject, verb, remainder).

    The subject is the template's leading slot; the verb is the shared
    "common expression" that follows it.  When the template declares a
    ``predicate_verb`` hint (the paper's DIRECTOR templates share
    " was born"), only that hint becomes the verb and the rest of the
    leading text ("in ", "on ") stays with the complement — which is what
    allows the aggregation step to merge the two birth clauses exactly as
    the paper does.  Returns ``(None, None, None)`` when the template does
    not start with a slot.
    """
    parts = list(template.parts)
    if not parts or not isinstance(parts[0], SlotPart):
        return None, None, None
    subject_template = Template(parts=(parts[0],))
    subject = subject_template.instantiate(values, strict=False)

    verb_parts: List[TextPart] = []
    rest = parts[1:]
    while rest and isinstance(rest[0], TextPart):
        verb_parts.append(rest.pop(0))
    leading_text = "".join(p.text for p in verb_parts).strip()

    hint = (template.predicate_verb or "").strip()
    if hint and leading_text.lower().startswith(hint.lower()):
        verb = leading_text[: len(hint)]
        complement_prefix = leading_text[len(hint):].strip()
    else:
        verb = leading_text
        complement_prefix = ""

    remainder = ""
    if rest:
        remainder_template = Template(parts=tuple(rest))
        remainder = remainder_template.instantiate(values, strict=False).strip()
    if complement_prefix:
        remainder = f"{complement_prefix} {remainder}".strip()

    # Templates such as "the year of MOVIE is YEAR" start with text, not a
    # slot, and are handled by the caller; templates whose verb is empty are
    # treated as unmergeable full-text clauses.
    if not verb and not remainder:
        return None, None, None
    return subject, verb, remainder
