"""Personalised narration profiles (paper, Section 2.2).

"It is possible to have personalized settings (e.g., different heading
attributes for relations or different weights on nodes and edges) in order
to produce customized narratives for different users or user groups."

A :class:`UserProfile` carries exactly those settings: heading-attribute
overrides, relation/attribute weight overrides, relations to ignore, and a
length budget.  The content narrator consults the profile at every
decision point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.catalog.relation import Relation
from repro.nlg.document import LengthBudget


@dataclass
class UserProfile:
    """Per-user narration preferences."""

    name: str = "default"
    #: relation name -> attribute name to use as the sentence subject.
    heading_overrides: Dict[str, str] = field(default_factory=dict)
    #: relation name -> weight override (higher = more interesting).
    relation_weights: Dict[str, float] = field(default_factory=dict)
    #: (relation, attribute) -> weight override.
    attribute_weights: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: relations never mentioned in narratives for this user.
    excluded_relations: Set[str] = field(default_factory=set)
    #: default length budget applied when the caller does not pass one.
    budget: LengthBudget = field(default_factory=LengthBudget)
    #: maximum number of tuples listed per relation before truncation.
    max_tuples_per_relation: Optional[int] = None

    # ------------------------------------------------------------------

    def heading_attribute(self, relation: Relation) -> str:
        """The attribute used as sentence subject for ``relation``."""
        override = self.heading_overrides.get(relation.name)
        if override and relation.has_attribute(override):
            return relation.attribute(override).name
        return relation.heading_attribute.name

    def relation_weight(self, relation: Relation) -> float:
        return self.relation_weights.get(relation.name, relation.weight)

    def attribute_weight(self, relation: Relation, attribute_name: str) -> float:
        attr = relation.attribute(attribute_name)
        return self.attribute_weights.get((relation.name, attr.name), attr.weight)

    def includes(self, relation_name: str) -> bool:
        return relation_name not in self.excluded_relations

    # ------------------------------------------------------------------

    def with_heading(self, relation_name: str, attribute_name: str) -> "UserProfile":
        """A copy of the profile with one more heading override."""
        overrides = dict(self.heading_overrides)
        overrides[relation_name] = attribute_name
        return UserProfile(
            name=self.name,
            heading_overrides=overrides,
            relation_weights=dict(self.relation_weights),
            attribute_weights=dict(self.attribute_weights),
            excluded_relations=set(self.excluded_relations),
            budget=self.budget,
            max_tuples_per_relation=self.max_tuples_per_relation,
        )


DEFAULT_PROFILE = UserProfile()
