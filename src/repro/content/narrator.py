"""The content narrator: database contents → natural-language narratives.

This is the public entry point for Section 2 of the paper.  It combines
the schema graph, the template registry, the lexicon, ranking and the
document planner into a handful of high-level calls:

* :meth:`ContentNarrator.narrate_tuple` — one tuple (alternative (a)/(b));
* :meth:`ContentNarrator.narrate_entity` — one tuple plus its related
  tuples across bridge relations (the Woody Allen example), in compact or
  procedural synthesis mode;
* :meth:`ContentNarrator.narrate_split` — a split-pattern sentence
  ("The movie M1 involves the director D1 who ... and the actor A1 ...");
* :meth:`ContentNarrator.narrate_relation` — all (or the top-k) tuples of
  a relation;
* :meth:`ContentNarrator.narrate_database` — a traversal-driven,
  ranking-bounded summary of the whole database;
* :meth:`ContentNarrator.narrate_query_answer` — the textual rendering of
  a query result (Section 2.1: "Whatever holds for whole databases, of
  course, holds for query answers as well").
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Union

from repro.content.navigation import find_by_heading, non_bridge_path, related_rows
from repro.content.patterns import (
    SynthesisMode,
    split_pattern_clause,
    unary_pattern_clauses,
)
from repro.content.personalization import DEFAULT_PROFILE, UserProfile
from repro.content.presets import NarrationSpec, default_spec
from repro.content.ranking import coverage_plan, rank_relations, rank_tuples
from repro.content.single_relation import TupleStyle, heading_value, tuple_clauses
from repro.engine.result import QueryResult
from repro.errors import TranslationError, UnknownRelationError
from repro.graph.schema_graph import SchemaGraph, graph_for
from repro.lexicon.morphology import join_list
from repro.nlg.clause import Clause
from repro.nlg.document import (
    DocumentPlan,
    LengthBudget,
    PlannedSentence,
    collect_streaming,
)
from repro.nlg.realize import realize_paragraph, realize_sentence
from repro.storage.database import Database
from repro.storage.row import Row


class ContentNarrator:
    """Generate narratives about the contents of one database."""

    def __init__(
        self,
        database: Database,
        spec: Optional[NarrationSpec] = None,
        profile: Optional[UserProfile] = None,
    ) -> None:
        self.database = database
        self.spec = spec or default_spec(database.schema)
        self.profile = profile or DEFAULT_PROFILE
        self.graph = graph_for(database.schema)

    # ------------------------------------------------------------------
    # Low-level building blocks
    # ------------------------------------------------------------------

    def tuple_clauses(
        self,
        relation_name: str,
        row: Mapping,
        style: TupleStyle = TupleStyle.FULL,
    ) -> List[Clause]:
        """Clauses describing one tuple, with common expressions merged."""
        relation = self.database.schema.relation(relation_name)
        return tuple_clauses(
            relation,
            row,
            self.spec.registry,
            style=style,
            profile=self.profile,
            attribute_order=self.spec.order_for(relation_name),
        )

    def narrate_tuple(
        self,
        relation_name: str,
        row: Mapping,
        style: TupleStyle = TupleStyle.FULL,
    ) -> str:
        """One tuple as text ("Woody Allen was born in ... on ...")."""
        return realize_paragraph(self.tuple_clauses(relation_name, row, style))

    # ------------------------------------------------------------------
    # Entity narration (unary pattern over a bridge)
    # ------------------------------------------------------------------

    def narrate_entity(
        self,
        relation_name: str,
        heading_or_row: Union[str, Mapping],
        related_relation: Optional[str] = None,
        mode: SynthesisMode = SynthesisMode.COMPACT,
        budget: Optional[LengthBudget] = None,
    ) -> str:
        """A tuple plus its related tuples (the Woody Allen narrative).

        ``heading_or_row`` is either the tuple itself or the value of its
        heading attribute ("Woody Allen").  ``related_relation`` defaults
        to the highest-weight non-bridge neighbour reachable through the
        schema graph (MOVIES for a DIRECTOR).
        """
        relation = self.database.schema.relation(relation_name)
        row = self._resolve_row(relation_name, heading_or_row)
        partner_name = related_relation or self._default_partner(relation.name)

        if partner_name is None:
            clauses = self.tuple_clauses(relation.name, row)
            return self._render(clauses, budget)

        partner = self.database.schema.relation(partner_name)
        path = self.graph.shortest_path(relation.name, partner.name)
        if not path:
            raise TranslationError(
                f"relations {relation.name} and {partner.name} are not connected"
            )
        partner_rows = related_rows(self.database, path, row)
        clauses = unary_pattern_clauses(
            relation,
            row,
            partner,
            partner_rows,
            self.spec.registry,
            self.spec.lexicon,
            mode=mode,
            profile=self.profile,
            attribute_order=self.spec.order_for(relation.name),
        )
        return self._render(clauses, budget)

    def narrate_split(
        self,
        center_relation: str,
        heading_or_row: Union[str, Mapping],
        partner_relations: Sequence[str],
        verb: str = "involves",
    ) -> str:
        """A split-pattern sentence for one center tuple and its partners.

        For each partner relation the first related tuple is used; partner
        relations with no related tuple are skipped.
        """
        center = self.database.schema.relation(center_relation)
        row = self._resolve_row(center_relation, heading_or_row)
        partners = []
        for partner_name in partner_relations:
            partner = self.database.schema.relation(partner_name)
            path = self.graph.shortest_path(center.name, partner.name)
            if not path:
                continue
            rows = related_rows(self.database, path, row)
            if rows:
                partners.append((partner, rows[0]))
        if not partners:
            return self.narrate_tuple(center_relation, row)
        clause = split_pattern_clause(
            center, row, partners, self.spec.registry, self.spec.lexicon,
            profile=self.profile, verb=verb,
        )
        return realize_sentence(clause)

    # ------------------------------------------------------------------
    # Relation and database narration
    # ------------------------------------------------------------------

    def narrate_relation(
        self,
        relation_name: str,
        limit: Optional[int] = None,
        style: TupleStyle = TupleStyle.FULL,
        budget: Optional[LengthBudget] = None,
        streaming: bool = True,
    ) -> str:
        """Narrate the (top ``limit``) tuples of one relation.

        With ``streaming`` (the default) clause production is lazy and
        stops once the length budget is provably satisfied, so the cost
        beyond ranking is O(budget) rather than O(rows); the output is
        byte-identical to the eager (``streaming=False``) path.
        """
        resolved = self._budget(budget)
        ranked = rank_tuples(self.database, relation_name, limit=limit, profile=self.profile)
        if streaming:
            plan = collect_streaming(
                self._relation_sentence_stream(relation_name, ranked, style), resolved
            )
            return plan.render(resolved)
        plan = DocumentPlan()
        for entry in ranked:
            for clause in self.tuple_clauses(relation_name, entry.row, style):
                plan.add_clause(clause)
        return plan.render(resolved)

    def _relation_sentence_stream(self, relation_name, ranked, style):
        relation = self.database.schema.relation(relation_name)
        bound = self._tuple_clause_bound(relation.name, style)
        for entry in ranked:
            for clause in self.tuple_clauses(relation_name, entry.row, style):
                text = realize_sentence(clause)
                if text:
                    yield (
                        PlannedSentence(text=text, weight=clause.weight, about=clause.about),
                        bound,
                    )

    def narrate_database(
        self,
        start: Optional[str] = None,
        relations: Optional[Sequence[str]] = None,
        max_relations: Optional[int] = None,
        max_tuples_per_relation: Optional[int] = 3,
        mode: SynthesisMode = SynthesisMode.COMPACT,
        budget: Optional[LengthBudget] = None,
        include_overview: bool = True,
        streaming: bool = True,
    ) -> str:
        """A ranking-bounded narrative of the whole database.

        The narrative starts from ``start`` (default: the schema graph's
        central relation), covers relations most-interesting-first and
        narrates the top tuples of each, connecting them to their most
        interesting neighbour through the unary pattern.

        With ``streaming`` (the default) relations are ranked and narrated
        lazily and production stops as soon as the sentence budget is
        provably settled — later relations are never tuple-ranked at all.
        The output is byte-identical to the eager (``streaming=False``)
        pipeline, which builds every clause before trimming.
        """
        resolved = self._budget(budget)
        if streaming:
            plan = collect_streaming(
                self._database_sentence_stream(
                    start, relations, max_relations, max_tuples_per_relation,
                    mode, include_overview,
                ),
                resolved,
            )
            return plan.render(resolved)

        plan = DocumentPlan()
        if include_overview:
            plan.add_text(self._overview_sentence(), weight=10.0, about="overview")

        allowed = None
        if relations is not None:
            allowed = {self.database.schema.relation(r).name for r in relations}

        covered = coverage_plan(
            self.database,
            profile=self.profile,
            max_relations=max_relations,
            max_tuples_per_relation=max_tuples_per_relation,
        )
        start_name = (
            self.database.schema.relation(start).name
            if start is not None
            else self.graph.central_relation().name
        )
        ordered_relations = sorted(
            covered.keys(), key=lambda name: (name != start_name,)
        )
        for relation_name in ordered_relations:
            if allowed is not None and relation_name not in allowed:
                continue
            partner = self._default_partner(relation_name)
            for entry in covered[relation_name]:
                clauses = self._entity_clauses(relation_name, entry.row, partner, mode)
                for clause in clauses:
                    plan.add_clause(clause)
        return plan.render(resolved)

    def _database_sentence_stream(
        self,
        start: Optional[str],
        relations: Optional[Sequence[str]],
        max_relations: Optional[int],
        max_tuples_per_relation: Optional[int],
        mode: SynthesisMode,
        include_overview: bool,
    ):
        """Yield ``(sentence, future-weight bound)`` pairs lazily.

        Mirrors the eager pipeline's order exactly: overview first, then
        the covered relations (start relation first, rest in ranking
        order), each tuple's clauses in narration order.  Tuple ranking
        for a relation only happens when the stream reaches it.
        """
        allowed = None
        if relations is not None:
            allowed = {self.database.schema.relation(r).name for r in relations}

        tuples_limit = (
            max_tuples_per_relation
            if max_tuples_per_relation is not None
            else self.profile.max_tuples_per_relation
        )
        ranked_relations = rank_relations(
            self.database, self.profile, limit=max_relations
        )
        start_name = (
            self.database.schema.relation(start).name
            if start is not None
            else self.graph.central_relation().name
        )
        ordered = sorted(
            [r.name for r in ranked_relations], key=lambda name: (name != start_name,)
        )
        active = [
            name for name in ordered if allowed is None or name in allowed
        ]
        partners = {name: self._default_partner(name) for name in active}
        # suffix_bounds[i] = the heaviest clause any relation from i on can
        # produce; it is the early-exit certificate for the collector.
        suffix_bounds: List[float] = [0.0] * (len(active) + 1)
        for index in range(len(active) - 1, -1, -1):
            name = active[index]
            suffix_bounds[index] = max(
                self._max_clause_weight(name, partners[name], mode),
                suffix_bounds[index + 1],
            )

        if include_overview:
            text = realize_sentence(self._overview_sentence())
            if text:
                yield (
                    PlannedSentence(text=text, weight=10.0, about="overview"),
                    suffix_bounds[0],
                )
        for index, relation_name in enumerate(active):
            partner = partners[relation_name]
            bound = suffix_bounds[index]
            ranked = rank_tuples(
                self.database, relation_name, tuples_limit, self.profile
            )
            for entry in ranked:
                for clause in self._entity_clauses(relation_name, entry.row, partner, mode):
                    text = realize_sentence(clause)
                    if text:
                        yield (
                            PlannedSentence(
                                text=text, weight=clause.weight, about=clause.about
                            ),
                            bound,
                        )

    def _tuple_clause_bound(
        self,
        relation_name: str,
        style: TupleStyle,
        use_attribute_order: bool = True,
    ) -> float:
        """An upper bound on the weight of any clause one tuple can yield.

        Full-style tuples produce attribute clauses weighted by attribute
        weight; the heading-only fallback (weighted by relation weight)
        only happens for a tuple whose narrated attributes are all NULL,
        which the table's NULL tallies can rule out entirely — that is
        what lets the bound stay at the attribute level and the streaming
        collector exit early.  ``use_attribute_order`` must be false when
        bounding tuples narrated *without* the spec's attribute order
        (procedural-mode child tuples), which fall back to the default
        descriptive-attribute set.
        """
        relation = self.database.schema.relation(relation_name)
        relation_weight = self.profile.relation_weight(relation)
        if style is TupleStyle.HEADING_ONLY:
            return relation_weight
        heading_name = self.profile.heading_attribute(relation)
        order = self.spec.order_for(relation.name) if use_attribute_order else None
        names = (
            list(order)
            if order is not None
            else [
                a.name
                for a in relation.attributes
                if not a.primary_key and a.name != heading_name
            ]
        )
        if not names:
            return relation_weight
        weights = [self.profile.attribute_weight(relation, name) for name in names]
        table = self.database.table(relation.name)
        fallback_possible = all(table.null_count(name) > 0 for name in names)
        if fallback_possible:
            weights.append(relation_weight)
        return max(weights)

    def _max_clause_weight(
        self, relation_name: str, partner_name: Optional[str], mode: SynthesisMode
    ) -> float:
        """An upper bound on the weight of any clause a relation can yield.

        Entity clauses carry a tuple-clause weight of the relation itself,
        or a relationship-sentence weight — the partner's relation weight,
        or the narrated relation's own weight when the designer label only
        exists for the reverse direction and the roles get swapped
        (``patterns.relationship_sentence``) — or, in procedural mode, the
        partner's own tuple-clause weights (narrated without the spec's
        attribute order), so the maximum over all of those dominates
        everything :meth:`_entity_clauses` can produce.
        """
        weights = [self._tuple_clause_bound(relation_name, TupleStyle.FULL)]
        if partner_name is not None:
            relation = self.database.schema.relation(relation_name)
            partner = self.database.schema.relation(partner_name)
            weights.append(self.profile.relation_weight(partner))
            weights.append(self.profile.relation_weight(relation))
            if mode is SynthesisMode.PROCEDURAL:
                weights.append(
                    self._tuple_clause_bound(
                        partner.name, TupleStyle.FULL, use_attribute_order=False
                    )
                )
        return max(weights)

    def narrate_schema(self) -> str:
        """A narrative describing the schema itself (Section 2.1)."""
        from repro.content.summarizer import describe_schema

        return describe_schema(self.database.schema, self.spec.lexicon)

    # ------------------------------------------------------------------
    # Query answers (Section 2.1)
    # ------------------------------------------------------------------

    def narrate_query_answer(
        self,
        result: QueryResult,
        subject: str = "The query",
        max_rows: int = 10,
    ) -> str:
        """Render a query result as text.

        Single-column results become one list sentence; multi-column
        results are narrated row by row ("name is X and title is Y").
        """
        if result.is_empty:
            return realize_sentence(f"{subject} returns no results")
        sentences: List[str] = []
        total = len(result.rows)
        shown = min(total, max_rows)
        if len(result.columns) == 1:
            values = [str(row.get(result.columns[0])) for row in result.rows[:shown]]
            label = result.columns[0].rsplit(".", 1)[-1]
            summary = f"{subject} returns {total} {label} value" + ("s" if total != 1 else "")
            sentences.append(f"{summary}: {join_list(values)}")
        else:
            sentences.append(f"{subject} returns {total} rows")
            for row in result.rows[:shown]:
                parts = [
                    f"{column.rsplit('.', 1)[-1]} {row.get(column)}"
                    for column in result.columns
                ]
                sentences.append("one result has " + join_list(parts))
        if total > shown:
            sentences.append(f"{total - shown} more rows are not shown")
        return realize_paragraph(sentences)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _resolve_row(self, relation_name: str, heading_or_row: Union[str, Mapping]) -> Row:
        if isinstance(heading_or_row, Row):
            return heading_or_row
        if isinstance(heading_or_row, Mapping):
            return Row(dict(heading_or_row))
        relation = self.database.schema.relation(relation_name)
        heading_attribute = self.profile.heading_attribute(relation)
        row = find_by_heading(
            self.database, relation_name, heading_or_row, heading_attribute
        )
        if row is None:
            raise TranslationError(
                f"no {relation_name} tuple with {heading_attribute} = {heading_or_row!r}"
            )
        return row

    def _default_partner(self, relation_name: str) -> Optional[str]:
        """The most interesting non-bridge relation reachable from ``relation_name``."""
        candidates: List[str] = []
        for neighbour in self.graph.neighbours(relation_name):
            relation = self.database.schema.relation(neighbour)
            if relation.bridge:
                for second in self.graph.neighbours(neighbour):
                    if second != relation_name and not self.database.schema.relation(second).bridge:
                        candidates.append(second)
            else:
                candidates.append(neighbour)
        candidates = [c for c in candidates if self.profile.includes(c)]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda name: (self.profile.relation_weight(self.database.schema.relation(name)), name),
        )

    def _entity_clauses(
        self,
        relation_name: str,
        row: Row,
        partner_name: Optional[str],
        mode: SynthesisMode,
    ) -> List[Clause]:
        relation = self.database.schema.relation(relation_name)
        if partner_name is None:
            return self.tuple_clauses(relation_name, row)
        partner = self.database.schema.relation(partner_name)
        path = self.graph.shortest_path(relation.name, partner.name)
        partner_rows = related_rows(self.database, path, row) if path else []
        if not partner_rows:
            return self.tuple_clauses(relation_name, row)
        return unary_pattern_clauses(
            relation,
            row,
            partner,
            partner_rows,
            self.spec.registry,
            self.spec.lexicon,
            mode=mode,
            profile=self.profile,
            attribute_order=self.spec.order_for(relation.name),
        )

    def _overview_sentence(self) -> str:
        lexicon = self.spec.lexicon
        counts = []
        for relation in self.database.schema.relations:
            if relation.bridge or not self.profile.includes(relation.name):
                continue
            count = len(self.database.table(relation.name))
            noun = (
                lexicon.concept_plural(relation.name)
                if count != 1
                else lexicon.concept(relation.name)
            )
            counts.append(f"{count} {noun}")
        return f"The {self.database.schema.name} database describes {join_list(counts)}"

    def _budget(self, budget: Optional[LengthBudget]) -> LengthBudget:
        if budget is not None:
            return budget
        return self.profile.budget

    def _render(self, clauses: Sequence[Clause], budget: Optional[LengthBudget]) -> str:
        plan = DocumentPlan()
        plan.extend_clauses(clauses)
        return plan.render(self._budget(budget))
