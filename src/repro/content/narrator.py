"""The content narrator: database contents → natural-language narratives.

This is the public entry point for Section 2 of the paper.  It combines
the schema graph, the template registry, the lexicon, ranking and the
document planner into a handful of high-level calls:

* :meth:`ContentNarrator.narrate_tuple` — one tuple (alternative (a)/(b));
* :meth:`ContentNarrator.narrate_entity` — one tuple plus its related
  tuples across bridge relations (the Woody Allen example), in compact or
  procedural synthesis mode;
* :meth:`ContentNarrator.narrate_split` — a split-pattern sentence
  ("The movie M1 involves the director D1 who ... and the actor A1 ...");
* :meth:`ContentNarrator.narrate_relation` — all (or the top-k) tuples of
  a relation;
* :meth:`ContentNarrator.narrate_database` — a traversal-driven,
  ranking-bounded summary of the whole database;
* :meth:`ContentNarrator.narrate_query_answer` — the textual rendering of
  a query result (Section 2.1: "Whatever holds for whole databases, of
  course, holds for query answers as well").
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.content.navigation import find_by_heading, non_bridge_path, related_rows
from repro.content.patterns import (
    SynthesisMode,
    split_pattern_clause,
    unary_pattern_clauses,
)
from repro.content.personalization import DEFAULT_PROFILE, UserProfile
from repro.content.presets import NarrationSpec, default_spec
from repro.content.ranking import coverage_plan, rank_relations, rank_tuples
from repro.content.single_relation import TupleStyle, heading_value, tuple_clauses
from repro.engine.result import QueryResult
from repro.errors import TranslationError, UnknownRelationError
from repro.graph.schema_graph import SchemaGraph, graph_for
from repro.lexicon.morphology import join_list
from repro.nlg.clause import Clause
from repro.nlg.document import (
    DocumentPlan,
    LengthBudget,
    PlannedSentence,
    collect_streaming,
)
from repro.nlg.realize import realize_paragraph, realize_sentence
from repro.storage.database import Database
from repro.storage.row import Row


class ContentNarrator:
    """Generate narratives about the contents of one database."""

    def __init__(
        self,
        database: Database,
        spec: Optional[NarrationSpec] = None,
        profile: Optional[UserProfile] = None,
    ) -> None:
        self.database = database
        self.spec = spec or default_spec(database.schema)
        self.profile = profile or DEFAULT_PROFILE
        self.graph = graph_for(database.schema)
        #: (relation, partner, mode, limit, data version) -> weight histogram.
        self._histogram_cache: Dict[Tuple, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # Low-level building blocks
    # ------------------------------------------------------------------

    def tuple_clauses(
        self,
        relation_name: str,
        row: Mapping,
        style: TupleStyle = TupleStyle.FULL,
    ) -> List[Clause]:
        """Clauses describing one tuple, with common expressions merged."""
        relation = self.database.schema.relation(relation_name)
        return tuple_clauses(
            relation,
            row,
            self.spec.registry,
            style=style,
            profile=self.profile,
            attribute_order=self.spec.order_for(relation_name),
        )

    def narrate_tuple(
        self,
        relation_name: str,
        row: Mapping,
        style: TupleStyle = TupleStyle.FULL,
    ) -> str:
        """One tuple as text ("Woody Allen was born in ... on ...")."""
        return realize_paragraph(self.tuple_clauses(relation_name, row, style))

    # ------------------------------------------------------------------
    # Entity narration (unary pattern over a bridge)
    # ------------------------------------------------------------------

    def narrate_entity(
        self,
        relation_name: str,
        heading_or_row: Union[str, Mapping],
        related_relation: Optional[str] = None,
        mode: SynthesisMode = SynthesisMode.COMPACT,
        budget: Optional[LengthBudget] = None,
    ) -> str:
        """A tuple plus its related tuples (the Woody Allen narrative).

        ``heading_or_row`` is either the tuple itself or the value of its
        heading attribute ("Woody Allen").  ``related_relation`` defaults
        to the highest-weight non-bridge neighbour reachable through the
        schema graph (MOVIES for a DIRECTOR).
        """
        relation = self.database.schema.relation(relation_name)
        row = self._resolve_row(relation_name, heading_or_row)
        partner_name = related_relation or self._default_partner(relation.name)

        if partner_name is None:
            clauses = self.tuple_clauses(relation.name, row)
            return self._render(clauses, budget)

        partner = self.database.schema.relation(partner_name)
        path = self.graph.shortest_path(relation.name, partner.name)
        if not path:
            raise TranslationError(
                f"relations {relation.name} and {partner.name} are not connected"
            )
        partner_rows = related_rows(self.database, path, row)
        clauses = unary_pattern_clauses(
            relation,
            row,
            partner,
            partner_rows,
            self.spec.registry,
            self.spec.lexicon,
            mode=mode,
            profile=self.profile,
            attribute_order=self.spec.order_for(relation.name),
        )
        return self._render(clauses, budget)

    def narrate_split(
        self,
        center_relation: str,
        heading_or_row: Union[str, Mapping],
        partner_relations: Sequence[str],
        verb: str = "involves",
    ) -> str:
        """A split-pattern sentence for one center tuple and its partners.

        For each partner relation the first related tuple is used; partner
        relations with no related tuple are skipped.
        """
        center = self.database.schema.relation(center_relation)
        row = self._resolve_row(center_relation, heading_or_row)
        partners = []
        for partner_name in partner_relations:
            partner = self.database.schema.relation(partner_name)
            path = self.graph.shortest_path(center.name, partner.name)
            if not path:
                continue
            rows = related_rows(self.database, path, row)
            if rows:
                partners.append((partner, rows[0]))
        if not partners:
            return self.narrate_tuple(center_relation, row)
        clause = split_pattern_clause(
            center, row, partners, self.spec.registry, self.spec.lexicon,
            profile=self.profile, verb=verb,
        )
        return realize_sentence(clause)

    # ------------------------------------------------------------------
    # Relation and database narration
    # ------------------------------------------------------------------

    def narrate_relation(
        self,
        relation_name: str,
        limit: Optional[int] = None,
        style: TupleStyle = TupleStyle.FULL,
        budget: Optional[LengthBudget] = None,
        streaming: bool = True,
    ) -> str:
        """Narrate the (top ``limit``) tuples of one relation.

        With ``streaming`` (the default) clause production is lazy and
        stops once the length budget is provably satisfied, so the cost
        beyond ranking is O(budget) rather than O(rows); the output is
        byte-identical to the eager (``streaming=False``) path.
        """
        resolved = self._budget(budget)
        ranked = rank_tuples(self.database, relation_name, limit=limit, profile=self.profile)
        if streaming:
            plan = collect_streaming(
                self._relation_sentence_stream(relation_name, ranked, style), resolved
            )
            return plan.render(resolved)
        plan = DocumentPlan()
        for entry in ranked:
            for clause in self.tuple_clauses(relation_name, entry.row, style):
                plan.add_clause(clause)
        return plan.render(resolved)

    def _relation_sentence_stream(self, relation_name, ranked, style):
        relation = self.database.schema.relation(relation_name)
        bound = self._tuple_clause_bound(relation.name, style)
        for entry in ranked:
            for clause in self.tuple_clauses(relation_name, entry.row, style):
                text = realize_sentence(clause)
                if text:
                    yield (
                        PlannedSentence(text=text, weight=clause.weight, about=clause.about),
                        bound,
                    )

    def narrate_database(
        self,
        start: Optional[str] = None,
        relations: Optional[Sequence[str]] = None,
        max_relations: Optional[int] = None,
        max_tuples_per_relation: Optional[int] = 3,
        mode: SynthesisMode = SynthesisMode.COMPACT,
        budget: Optional[LengthBudget] = None,
        include_overview: bool = True,
        streaming: bool = True,
    ) -> str:
        """A ranking-bounded narrative of the whole database.

        The narrative starts from ``start`` (default: the schema graph's
        central relation), covers relations most-interesting-first and
        narrates the top tuples of each, connecting them to their most
        interesting neighbour through the unary pattern.

        With ``streaming`` (the default) relations are ranked and narrated
        lazily and production stops as soon as the sentence budget is
        provably settled — later relations are never tuple-ranked at all.
        The output is byte-identical to the eager (``streaming=False``)
        pipeline, which builds every clause before trimming.
        """
        resolved = self._budget(budget)
        if streaming:
            plan = collect_streaming(
                self._database_sentence_stream(
                    start, relations, max_relations, max_tuples_per_relation,
                    mode, include_overview,
                ),
                resolved,
            )
            return plan.render(resolved)

        plan = DocumentPlan()
        if include_overview:
            plan.add_text(self._overview_sentence(), weight=10.0, about="overview")

        allowed = None
        if relations is not None:
            allowed = {self.database.schema.relation(r).name for r in relations}

        covered = coverage_plan(
            self.database,
            profile=self.profile,
            max_relations=max_relations,
            max_tuples_per_relation=max_tuples_per_relation,
        )
        start_name = (
            self.database.schema.relation(start).name
            if start is not None
            else self.graph.central_relation().name
        )
        ordered_relations = sorted(
            covered.keys(), key=lambda name: (name != start_name,)
        )
        for relation_name in ordered_relations:
            if allowed is not None and relation_name not in allowed:
                continue
            partner = self._default_partner(relation_name)
            for entry in covered[relation_name]:
                clauses = self._entity_clauses(relation_name, entry.row, partner, mode)
                for clause in clauses:
                    plan.add_clause(clause)
        return plan.render(resolved)

    def _database_sentence_stream(
        self,
        start: Optional[str],
        relations: Optional[Sequence[str]],
        max_relations: Optional[int],
        max_tuples_per_relation: Optional[int],
        mode: SynthesisMode,
        include_overview: bool,
    ):
        """Yield ``(sentence, future-weight bound)`` pairs lazily.

        Mirrors the eager pipeline's order exactly: overview first, then
        the covered relations (start relation first, rest in ranking
        order), each tuple's clauses in narration order.  Tuple ranking
        for a relation only happens when the stream reaches it.
        """
        allowed = None
        if relations is not None:
            allowed = {self.database.schema.relation(r).name for r in relations}

        tuples_limit = (
            max_tuples_per_relation
            if max_tuples_per_relation is not None
            else self.profile.max_tuples_per_relation
        )
        ranked_relations = rank_relations(
            self.database, self.profile, limit=max_relations
        )
        start_name = (
            self.database.schema.relation(start).name
            if start is not None
            else self.graph.central_relation().name
        )
        ordered = sorted(
            [r.name for r in ranked_relations], key=lambda name: (name != start_name,)
        )
        active = [
            name for name in ordered if allowed is None or name in allowed
        ]
        partners = {name: self._default_partner(name) for name in active}
        # Per-relation histograms of producible clause weights (with counts)
        # give the early-exit certificate at clause granularity: the bound
        # attached to each streamed sentence is the heaviest weight with a
        # non-exhausted count anywhere after it, so the collector can stop
        # inside a relation once its heavy clauses have all been produced —
        # which is what lets varied-weight schemas (the shipped movie spec)
        # exit early, not only uniform-weight profiles.
        histograms = [
            self._clause_weight_histogram(name, partners[name], mode, tuples_limit)
            for name in active
        ]
        suffix_bounds: List[float] = [0.0] * (len(active) + 1)
        for index in range(len(active) - 1, -1, -1):
            top = histograms[index][0][0] if histograms[index] else 0.0
            suffix_bounds[index] = max(top, suffix_bounds[index + 1])

        if include_overview:
            text = realize_sentence(self._overview_sentence())
            if text:
                yield (
                    PlannedSentence(text=text, weight=10.0, about="overview"),
                    suffix_bounds[0],
                )
        for index, relation_name in enumerate(active):
            partner = partners[relation_name]
            tail_bound = suffix_bounds[index + 1]
            remaining = dict(histograms[index])
            ranked = rank_tuples(
                self.database, relation_name, tuples_limit, self.profile
            )
            for entry in ranked:
                for clause in self._entity_clauses(relation_name, entry.row, partner, mode):
                    text = realize_sentence(clause)
                    if text:
                        count = remaining.get(clause.weight)
                        if count is not None:
                            if count <= 1:
                                del remaining[clause.weight]
                            elif count != float("inf"):
                                remaining[clause.weight] = count - 1
                        bound = max(remaining) if remaining else 0.0
                        yield (
                            PlannedSentence(
                                text=text, weight=clause.weight, about=clause.about
                            ),
                            bound if bound > tail_bound else tail_bound,
                        )

    def _tuple_clause_bound(
        self,
        relation_name: str,
        style: TupleStyle,
        use_attribute_order: bool = True,
    ) -> float:
        """An upper bound on the weight of any clause one tuple can yield.

        Full-style tuples produce attribute clauses weighted by attribute
        weight; an attribute whose values are currently all NULL produces
        no clause at all, and the heading-only fallback (weighted by
        relation weight) only happens for a tuple whose narrated
        attributes are all NULL — both of which the table's NULL tallies
        rule in or out without touching a row.  ``use_attribute_order``
        must be false when bounding tuples narrated *without* the spec's
        attribute order (procedural-mode child tuples), which fall back to
        the default descriptive-attribute set.
        """
        relation = self.database.schema.relation(relation_name)
        relation_weight = self.profile.relation_weight(relation)
        if style is TupleStyle.HEADING_ONLY:
            return relation_weight
        names = self._narrated_attributes(relation, use_attribute_order)
        if not names:
            return relation_weight
        table = self.database.table(relation.name)
        rows = len(table)
        weights = [
            self.profile.attribute_weight(relation, name)
            for name in names
            if rows - table.null_count(name) > 0
        ]
        fallback_possible = all(table.null_count(name) > 0 for name in names)
        if fallback_possible or not weights:
            weights.append(relation_weight)
        return max(weights)

    def _narrated_attributes(self, relation, use_attribute_order: bool = True):
        heading_name = self.profile.heading_attribute(relation)
        order = self.spec.order_for(relation.name) if use_attribute_order else None
        if order is not None:
            return list(order)
        return [
            a.name
            for a in relation.attributes
            if not a.primary_key and a.name != heading_name
        ]

    def _clause_weight_histogram(
        self,
        relation_name: str,
        partner_name: Optional[str],
        mode: SynthesisMode,
        tuples_limit: Optional[int],
    ) -> List[Tuple[float, float]]:
        """``(weight, max count)`` pairs, heaviest first, for one relation.

        An upper bound on the multiset of clause weights narrating the
        relation can stream: per narrated attribute at most one clause per
        narrated tuple and never more than its non-NULL population, the
        heading fallback at most once per potentially all-NULL tuple, and
        one relationship sentence per tuple (weighted by the partner's or,
        role-swapped, the relation's own weight) only when the schema path
        to the partner is populated at all.  Procedural-mode child detail
        clauses are unbounded per tuple, so their weights carry an
        infinite count — the certificate then degrades to the old
        max-weight bound for exactly those weights.  Memoized per
        ``Database.data_version``.
        """
        key = (relation_name, partner_name, mode, tuples_limit, self.database.data_version)
        cached = self._histogram_cache.get(key)
        if cached is not None:
            return cached
        schema = self.database.schema
        relation = schema.relation(relation_name)
        table = self.database.table(relation.name)
        rows = len(table)
        narrated = rows if tuples_limit is None else min(tuples_limit, rows)
        buckets: Dict[float, float] = {}

        def add(weight: float, count: float) -> None:
            buckets[weight] = buckets.get(weight, 0) + count

        if narrated:
            names = self._narrated_attributes(relation)
            if names:
                min_nulls: Optional[int] = None
                for name in names:
                    nulls = table.null_count(name)
                    if rows - nulls > 0:
                        add(
                            self.profile.attribute_weight(relation, name),
                            min(narrated, rows - nulls),
                        )
                    min_nulls = nulls if min_nulls is None else min(min_nulls, nulls)
                fallback = min(narrated, min_nulls or 0)
                if fallback:
                    add(self.profile.relation_weight(relation), fallback)
            else:
                add(self.profile.relation_weight(relation), narrated)
            if partner_name is not None and self._partner_path_populated(
                relation.name, partner_name
            ):
                partner = schema.relation(partner_name)
                add(self.profile.relation_weight(partner), narrated)
                add(self.profile.relation_weight(relation), narrated)
                if mode is SynthesisMode.PROCEDURAL:
                    infinity = float("inf")
                    partner_table = self.database.table(partner.name)
                    partner_rows = len(partner_table)
                    for name in self._narrated_attributes(partner, use_attribute_order=False):
                        if partner_rows - partner_table.null_count(name) > 0:
                            add(self.profile.attribute_weight(partner, name), infinity)
                    add(self.profile.relation_weight(partner), infinity)
        histogram = sorted(buckets.items(), key=lambda item: -item[0])
        self._histogram_cache[key] = histogram
        if len(self._histogram_cache) > 256:
            self._histogram_cache.clear()
        return histogram

    def _partner_path_populated(self, relation_name: str, partner_name: str) -> bool:
        """Whether any tuple can have related partner rows at all."""
        path = self.graph.shortest_path(relation_name, partner_name)
        if not path:
            return False
        return all(len(self.database.table(name)) > 0 for name in path[1:])

    def narrate_schema(self) -> str:
        """A narrative describing the schema itself (Section 2.1)."""
        from repro.content.summarizer import describe_schema

        return describe_schema(self.database.schema, self.spec.lexicon)

    # ------------------------------------------------------------------
    # Query answers (Section 2.1)
    # ------------------------------------------------------------------

    def narrate_query_answer(
        self,
        result: QueryResult,
        subject: str = "The query",
        max_rows: int = 10,
    ) -> str:
        """Render a query result as text.

        Single-column results become one list sentence; multi-column
        results are narrated row by row ("name is X and title is Y").
        """
        if result.is_empty:
            return realize_sentence(f"{subject} returns no results")
        sentences: List[str] = []
        total = len(result.rows)
        shown = min(total, max_rows)
        if len(result.columns) == 1:
            values = [str(row.get(result.columns[0])) for row in result.rows[:shown]]
            label = result.columns[0].rsplit(".", 1)[-1]
            summary = f"{subject} returns {total} {label} value" + ("s" if total != 1 else "")
            sentences.append(f"{summary}: {join_list(values)}")
        else:
            sentences.append(f"{subject} returns {total} rows")
            for row in result.rows[:shown]:
                parts = [
                    f"{column.rsplit('.', 1)[-1]} {row.get(column)}"
                    for column in result.columns
                ]
                sentences.append("one result has " + join_list(parts))
        if total > shown:
            sentences.append(f"{total - shown} more rows are not shown")
        return realize_paragraph(sentences)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _resolve_row(self, relation_name: str, heading_or_row: Union[str, Mapping]) -> Row:
        if isinstance(heading_or_row, Row):
            return heading_or_row
        if isinstance(heading_or_row, Mapping):
            return Row(dict(heading_or_row))
        relation = self.database.schema.relation(relation_name)
        heading_attribute = self.profile.heading_attribute(relation)
        row = find_by_heading(
            self.database, relation_name, heading_or_row, heading_attribute
        )
        if row is None:
            raise TranslationError(
                f"no {relation_name} tuple with {heading_attribute} = {heading_or_row!r}"
            )
        return row

    def _default_partner(self, relation_name: str) -> Optional[str]:
        """The most interesting non-bridge relation reachable from ``relation_name``."""
        candidates: List[str] = []
        for neighbour in self.graph.neighbours(relation_name):
            relation = self.database.schema.relation(neighbour)
            if relation.bridge:
                for second in self.graph.neighbours(neighbour):
                    if second != relation_name and not self.database.schema.relation(second).bridge:
                        candidates.append(second)
            else:
                candidates.append(neighbour)
        candidates = [c for c in candidates if self.profile.includes(c)]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda name: (self.profile.relation_weight(self.database.schema.relation(name)), name),
        )

    def _entity_clauses(
        self,
        relation_name: str,
        row: Row,
        partner_name: Optional[str],
        mode: SynthesisMode,
    ) -> List[Clause]:
        relation = self.database.schema.relation(relation_name)
        if partner_name is None:
            return self.tuple_clauses(relation_name, row)
        partner = self.database.schema.relation(partner_name)
        path = self.graph.shortest_path(relation.name, partner.name)
        partner_rows = related_rows(self.database, path, row) if path else []
        if not partner_rows:
            return self.tuple_clauses(relation_name, row)
        return unary_pattern_clauses(
            relation,
            row,
            partner,
            partner_rows,
            self.spec.registry,
            self.spec.lexicon,
            mode=mode,
            profile=self.profile,
            attribute_order=self.spec.order_for(relation.name),
        )

    def _overview_sentence(self) -> str:
        lexicon = self.spec.lexicon
        counts = []
        for relation in self.database.schema.relations:
            if relation.bridge or not self.profile.includes(relation.name):
                continue
            count = len(self.database.table(relation.name))
            noun = (
                lexicon.concept_plural(relation.name)
                if count != 1
                else lexicon.concept(relation.name)
            )
            counts.append(f"{count} {noun}")
        return f"The {self.database.schema.name} database describes {join_list(counts)}"

    def _budget(self, budget: Optional[LengthBudget]) -> LengthBudget:
        if budget is not None:
            return budget
        return self.profile.budget

    def _render(self, clauses: Sequence[Clause], budget: Optional[LengthBudget]) -> str:
        plan = DocumentPlan()
        plan.extend_clauses(clauses)
        return plan.render(self._budget(budget))
