"""Template specifications: text parts, value slots and list templates.

The paper annotates schema-graph nodes and edges with *template labels*
such as::

    DNAME + " was born" + " in " + BLOCATION

and list templates with loops bounded by the arity of the data, such as
``MOVIE_LIST`` which renders ``"Match Point (2005), Melinda and Melinda
(2004), and Anything Else (2003)."``.  This module models both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.catalog.types import render_value
from repro.errors import TemplateInstantiationError


@dataclass(frozen=True)
class TextPart:
    """A literal piece of text inside a template."""

    text: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.text!r}"


@dataclass(frozen=True)
class SlotPart:
    """A placeholder filled from a tuple's attribute value.

    ``name`` is the attribute name (optionally ``RELATION.ATTRIBUTE``).
    ``index`` is used inside list templates to refer to the i-th tuple
    (the paper's ``TITLE[i]``); ``None`` means the current/only tuple.
    """

    name: str
    index: Optional[str] = None

    @property
    def attribute(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.index is not None:
            return f"{self.name}[{self.index}]"
        return self.name


TemplatePart = Union[TextPart, SlotPart]


@dataclass(frozen=True)
class Template:
    """A flat template: a concatenation of text and slot parts.

    ``subject`` and ``predicate_verb`` are optional linguistic hints: the
    slot acting as sentence subject (usually the heading attribute) and
    the verb that starts the predicate (e.g. ``"was born"``).  The
    common-expression aggregation of Section 2.2 relies on them to merge
    "DNAME was born in BLOCATION" with "DNAME was born on BDATE".
    """

    parts: Tuple[TemplatePart, ...]
    subject: Optional[str] = None
    predicate_verb: Optional[str] = None

    @property
    def slots(self) -> Tuple[SlotPart, ...]:
        return tuple(p for p in self.parts if isinstance(p, SlotPart))

    @property
    def slot_names(self) -> Tuple[str, ...]:
        return tuple(s.attribute for s in self.slots)

    def instantiate(self, values: Mapping[str, Any], strict: bool = True) -> str:
        """Fill the slots from ``values`` (keys matched case-insensitively)."""
        lowered = {str(k).lower(): v for k, v in values.items()}
        pieces: List[str] = []
        for part in self.parts:
            if isinstance(part, TextPart):
                pieces.append(part.text)
                continue
            value = self._lookup(part, lowered)
            if value is _MISSING:
                if strict:
                    raise TemplateInstantiationError(
                        f"no value supplied for template slot {part.name!r}"
                        f" (available: {sorted(lowered)})"
                    )
                value = ""
            pieces.append(render_value(value))
        return "".join(pieces)

    def _lookup(self, part: SlotPart, values: Dict[str, Any]) -> Any:
        for key in (part.name.lower(), part.attribute.lower()):
            if key in values:
                return values[key]
        # Qualified values ("DIRECTOR.name") matched by suffix.
        suffix_matches = [
            v for k, v in values.items() if k.rsplit(".", 1)[-1] == part.attribute.lower()
        ]
        if len(suffix_matches) == 1:
            return suffix_matches[0]
        return _MISSING

    def __str__(self) -> str:  # pragma: no cover - trivial
        return " + ".join(str(p) for p in self.parts)


class _Missing:
    pass


_MISSING = _Missing()


@dataclass(frozen=True)
class ListTemplate:
    """A template iterated over a sequence of tuples (the paper's MOVIE_LIST).

    ``item`` renders each non-final tuple, ``last_item`` renders the final
    tuple, ``separator`` joins non-final items and ``last_separator`` is
    placed before the final item — reproducing::

        DEFINE MOVIE_LIST as
        [i < arityOf(TITLE)] {TITLE[i] + " (" + YEAR[i] + "), "}
        [i = arityOf(TITLE)] " and " + {TITLE[i] + " (" + YEAR[i] + ").")}
    """

    name: str
    item: Template
    last_item: Optional[Template] = None
    separator: str = ""
    last_separator: str = " and "
    pair_separator: Optional[str] = None

    def instantiate(self, rows: Sequence[Mapping[str, Any]], strict: bool = True) -> str:
        """Render the list over ``rows`` with paper-style punctuation."""
        if not rows:
            return ""
        final_template = self.last_item or self.item
        rendered = [self.item.instantiate(row, strict=strict) for row in rows[:-1]]
        last = final_template.instantiate(rows[-1], strict=strict)
        if not rendered:
            return last
        if len(rendered) == 1 and self.pair_separator is not None:
            return rendered[0] + self.pair_separator + last
        return self.separator.join(rendered) + self.last_separator + last

    @property
    def slot_names(self) -> Tuple[str, ...]:
        names = list(self.item.slot_names)
        if self.last_item is not None:
            for name in self.last_item.slot_names:
                if name not in names:
                    names.append(name)
        return tuple(names)


def text(value: str) -> TextPart:
    """Shorthand constructor for a :class:`TextPart`."""
    return TextPart(value)


def slot(name: str, index: Optional[str] = None) -> SlotPart:
    """Shorthand constructor for a :class:`SlotPart`."""
    return SlotPart(name, index)


def template(*parts: Union[str, TemplatePart], subject: Optional[str] = None,
             verb: Optional[str] = None) -> Template:
    """Build a template from a mix of plain strings and parts.

    Plain strings become text parts; use :func:`slot` for placeholders::

        template(slot("DNAME"), " was born in ", slot("BLOCATION"),
                 subject="DNAME", verb="was born")
    """
    converted: List[TemplatePart] = []
    for part in parts:
        if isinstance(part, str):
            converted.append(TextPart(part))
        else:
            converted.append(part)
    return Template(parts=tuple(converted), subject=subject, predicate_verb=verb)
