"""Template language: specs, paper-syntax parser and the label registry."""

from repro.templates.compile import (
    CompiledListTemplate,
    CompiledTemplate,
    compile_list_template,
    compile_template,
)
from repro.templates.parser import parse_list_template, parse_template
from repro.templates.registry import (
    TemplateRegistry,
    default_join_template,
    default_projection_template,
    default_registry,
    default_relation_template,
)
from repro.templates.spec import (
    ListTemplate,
    SlotPart,
    Template,
    TemplatePart,
    TextPart,
    slot,
    template,
    text,
)

__all__ = [
    "CompiledListTemplate",
    "CompiledTemplate",
    "ListTemplate",
    "SlotPart",
    "Template",
    "TemplatePart",
    "TemplateRegistry",
    "TextPart",
    "compile_list_template",
    "compile_template",
    "default_join_template",
    "default_projection_template",
    "default_registry",
    "default_relation_template",
    "parse_list_template",
    "parse_template",
    "slot",
    "template",
    "text",
]
