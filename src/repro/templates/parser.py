"""Parser for the paper's textual template syntax.

Two forms are supported:

* flat concatenation templates, exactly as written in the paper::

      DNAME + " was born" + " in " + BLOCATION

  (identifiers become slots, quoted strings become text parts);

* list definitions with arity-bounded loops::

      DEFINE MOVIE_LIST as
      [i < arityOf(TITLE)]
      {TITLE[i] + " (" + YEAR[i] + "), "}
      [i = arityOf(TITLE)]
      " and " + {TITLE[i] + " (" + YEAR[i] + ".")}

  which produce :class:`repro.templates.spec.ListTemplate` objects.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import TemplateSyntaxError
from repro.templates.spec import ListTemplate, SlotPart, Template, TemplatePart, TextPart

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        "(?P<dq>(?:[^"\\]|\\.)*)"       # double-quoted text
      | '(?P<sq>(?:[^'\\]|\\.)*)'       # single-quoted text
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)  # slot
        (?:\[(?P<index>[A-Za-z_0-9]+)\])?                               # [i]
      | (?P<plus>\+)
    )
    """,
    re.VERBOSE,
)


def parse_template(
    text: str, subject: Optional[str] = None, verb: Optional[str] = None
) -> Template:
    """Parse a flat concatenation template string into a :class:`Template`."""
    parts, _ = _parse_parts(text)
    if not parts:
        raise TemplateSyntaxError(f"empty template: {text!r}")
    return Template(parts=tuple(parts), subject=subject, predicate_verb=verb)


def _parse_parts(text: str) -> Tuple[List[TemplatePart], int]:
    parts: List[TemplatePart] = []
    pos = 0
    expecting_operand = True
    while pos < len(text):
        remainder = text[pos:]
        if not remainder.strip():
            break
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise TemplateSyntaxError(
                f"cannot parse template near {text[pos:pos + 20]!r}"
            )
        pos = match.end()
        if match.group("plus") is not None:
            expecting_operand = True
            continue
        if match.group("dq") is not None or match.group("sq") is not None:
            raw = match.group("dq") if match.group("dq") is not None else match.group("sq")
            parts.append(TextPart(_unescape(raw)))
        else:
            parts.append(SlotPart(match.group("ident"), match.group("index")))
        expecting_operand = False
    if expecting_operand and parts:
        raise TemplateSyntaxError(f"template ends with a dangling '+': {text!r}")
    return parts, pos


def _unescape(raw: str) -> str:
    return raw.replace('\\"', '"').replace("\\'", "'").replace("\\\\", "\\")


_DEFINE_RE = re.compile(
    r"^\s*DEFINE\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s+as\s+(?P<body>.*)$",
    re.IGNORECASE | re.DOTALL,
)
_SECTION_RE = re.compile(
    r"\[\s*i\s*(?P<op><|=)\s*arityOf\(\s*(?P<attr>[A-Za-z_][A-Za-z_0-9]*)\s*\)\s*\]",
    re.IGNORECASE,
)


def parse_list_template(text: str) -> ListTemplate:
    """Parse a ``DEFINE name AS ...`` list template with arity-guarded sections.

    The ``[i < arityOf(X)]`` section provides the template for every item
    but the last; the ``[i = arityOf(X)]`` section provides the template
    for the last item, optionally prefixed by literal text (the paper's
    ``" and "``) that becomes the list's last separator.
    """
    match = _DEFINE_RE.match(text.strip())
    if match is None:
        raise TemplateSyntaxError("list template must start with 'DEFINE <name> as'")
    name = match.group("name")
    body = match.group("body")

    sections = _split_sections(body)
    if "<" not in sections or "=" not in sections:
        raise TemplateSyntaxError(
            "list template needs both an [i < arityOf(..)] and an [i = arityOf(..)] section"
        )

    item = _parse_braced_template(sections["<"])
    last_prefix, last_item = _parse_last_section(sections["="])
    return ListTemplate(
        name=name,
        item=item,
        last_item=last_item,
        separator="",
        last_separator=last_prefix,
    )


def _split_sections(body: str) -> dict:
    sections: dict = {}
    matches = list(_SECTION_RE.finditer(body))
    if not matches:
        raise TemplateSyntaxError("list template has no [i ... arityOf(...)] sections")
    for index, match in enumerate(matches):
        start = match.end()
        end = matches[index + 1].start() if index + 1 < len(matches) else len(body)
        sections[match.group("op")] = body[start:end].strip()
    return sections


def _parse_braced_template(section: str) -> Template:
    inner = _extract_braces(section)
    parts, _ = _parse_parts(inner)
    return Template(parts=tuple(parts))


def _parse_last_section(section: str) -> Tuple[str, Template]:
    """The last section may start with literal text before the braces."""
    brace_index = section.find("{")
    if brace_index < 0:
        raise TemplateSyntaxError("the [i = arityOf(..)] section must contain a {...} template")
    prefix_text = section[:brace_index].strip()
    prefix = ""
    if prefix_text:
        parts, _ = _parse_parts(prefix_text.rstrip("+").strip())
        prefix = "".join(p.text for p in parts if isinstance(p, TextPart))
    inner = _extract_braces(section[brace_index:])
    parts, _ = _parse_parts(inner)
    return prefix, Template(parts=tuple(parts))


def _extract_braces(section: str) -> str:
    start = section.find("{")
    end = section.rfind("}")
    if start < 0 or end < 0 or end <= start:
        raise TemplateSyntaxError(f"expected a braced template in {section!r}")
    return section[start + 1 : end]
