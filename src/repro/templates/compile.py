"""Compiled templates: slot accessors resolved once, not per instantiation.

``Template.instantiate`` re-walks the part list on every call, lowering
the slot names and re-deriving the structural subject/verb/complement
split per tuple.  For narration over many tuples that is the front-end
equivalent of the interpreted expression evaluator, so this module mirrors
``repro/engine/compile.py``: a :class:`CompiledTemplate` is built once per
:class:`~repro.templates.spec.Template` (the registry memoizes it) with

* adjacent literal text parts merged into single constants,
* per-slot lookup keys (``name.lower()``, ``attribute.lower()``)
  precomputed,
* the structural split used by common-expression aggregation — leading
  slot, verb text, complement prefix — resolved at compile time, leaving
  only the slot lookups for narration time.

Compiled forms are byte-for-byte equivalent to the interpreted ones;
``tests/test_narration_frontend.py`` asserts this across every template
the shipped datasets register and across whole narratives.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.catalog.types import render_value
from repro.errors import TemplateInstantiationError
from repro.templates.spec import ListTemplate, SlotPart, Template, TextPart


class _SlotOp:
    """A compiled slot: the precomputed lookup keys for one placeholder."""

    __slots__ = ("name", "name_lower", "attribute_lower")

    def __init__(self, part: SlotPart) -> None:
        self.name = part.name
        self.name_lower = part.name.lower()
        self.attribute_lower = part.attribute.lower()


class CompiledTemplate:
    """A :class:`Template` compiled to a flat op list plus a precomputed split."""

    __slots__ = ("template", "_ops", "_split")

    def __init__(self, template: Template) -> None:
        self.template = template
        self._ops: Tuple[Union[str, _SlotOp], ...] = _compile_parts(template.parts)
        self._split = _compile_split(template)

    # ------------------------------------------------------------------

    def instantiate(self, values: Mapping[str, Any], strict: bool = True) -> str:
        """Byte-identical to ``self.template.instantiate(values, strict)``."""
        lowered = {str(k).lower(): v for k, v in values.items()}
        return self._render(lowered, strict)

    def _render(self, lowered: Dict[str, Any], strict: bool) -> str:
        pieces: List[str] = []
        append = pieces.append
        missing = _MISSING
        for op in self._ops:
            if op.__class__ is str:
                append(op)
                continue
            value = _resolve_slot(op, lowered)
            if value is missing:
                if strict:
                    raise TemplateInstantiationError(
                        f"no value supplied for template slot {op.name!r}"
                        f" (available: {sorted(lowered)})"
                    )
                value = ""
            append(render_value(value))
        return "".join(pieces)

    # ------------------------------------------------------------------

    def split_instantiate(
        self, values: Mapping[str, Any]
    ) -> Tuple[Optional[str], Optional[str], Optional[str]]:
        """Byte-identical to the interpreted structural split.

        Mirrors ``repro.content.single_relation._split_structurally``: the
        subject slot, verb text and complement prefix were resolved at
        compile time; only the subject and remainder lookups run here.
        """
        split = self._split
        if split is None:
            return None, None, None
        subject_op, verb, complement_prefix, remainder_compiled = split
        lowered = {str(k).lower(): v for k, v in values.items()}
        subject = _render_single(subject_op, lowered)
        remainder = ""
        if remainder_compiled is not None:
            remainder = remainder_compiled._render(lowered, False).strip()
        if complement_prefix:
            remainder = f"{complement_prefix} {remainder}".strip()
        if not verb and not remainder:
            return None, None, None
        return subject, verb, remainder

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CompiledTemplate({self.template})"


class _Missing:
    pass


_MISSING = _Missing()


def _compile_parts(parts: Sequence[Any]) -> Tuple[Union[str, _SlotOp], ...]:
    """Merge adjacent literals and precompute slot keys."""
    ops: List[Union[str, _SlotOp]] = []
    buffer: List[str] = []
    for part in parts:
        if isinstance(part, TextPart):
            buffer.append(part.text)
        else:
            if buffer:
                ops.append("".join(buffer))
                buffer = []
            ops.append(_SlotOp(part))
    if buffer:
        ops.append("".join(buffer))
    return tuple(ops)


def _resolve_slot(op: _SlotOp, lowered: Dict[str, Any]) -> Any:
    """The slot-resolution cascade, shared by every compiled render path.

    Mirrors ``Template._lookup`` (the interpreted oracle in ``spec.py``):
    the full slot name, then the bare attribute, then a unique
    dotted-suffix match; returns ``_MISSING`` when nothing resolves.
    """
    missing = _MISSING
    value = lowered.get(op.name_lower, missing)
    if value is missing:
        value = lowered.get(op.attribute_lower, missing)
    if value is missing:
        attribute = op.attribute_lower
        suffix_matches = [
            v for k, v in lowered.items() if k.rsplit(".", 1)[-1] == attribute
        ]
        if len(suffix_matches) == 1:
            value = suffix_matches[0]
    return value


def _render_single(op: _SlotOp, lowered: Dict[str, Any]) -> str:
    """Render one slot exactly like a single-slot non-strict instantiation."""
    value = _resolve_slot(op, lowered)
    if value is _MISSING:
        value = ""
    return render_value(value)


def _compile_split(template: Template):
    """Precompute the structural (subject, verb, remainder) decomposition."""
    parts = list(template.parts)
    if not parts or not isinstance(parts[0], SlotPart):
        return None
    subject_op = _SlotOp(parts[0])

    rest = parts[1:]
    verb_texts: List[str] = []
    while rest and isinstance(rest[0], TextPart):
        verb_texts.append(rest.pop(0).text)
    leading_text = "".join(verb_texts).strip()

    hint = (template.predicate_verb or "").strip()
    if hint and leading_text.lower().startswith(hint.lower()):
        verb = leading_text[: len(hint)]
        complement_prefix = leading_text[len(hint):].strip()
    else:
        verb = leading_text
        complement_prefix = ""

    remainder_compiled: Optional[CompiledTemplate] = None
    if rest:
        remainder_compiled = CompiledTemplate(Template(parts=tuple(rest)))
    return subject_op, verb, complement_prefix, remainder_compiled


class CompiledListTemplate:
    """A :class:`ListTemplate` with its item templates precompiled."""

    __slots__ = ("template", "_item", "_last_item")

    def __init__(self, template: ListTemplate) -> None:
        self.template = template
        self._item = CompiledTemplate(template.item)
        self._last_item = (
            CompiledTemplate(template.last_item)
            if template.last_item is not None
            else self._item
        )

    def instantiate(self, rows: Sequence[Mapping[str, Any]], strict: bool = True) -> str:
        """Byte-identical to ``self.template.instantiate(rows, strict)``."""
        if not rows:
            return ""
        template = self.template
        rendered = [self._item.instantiate(row, strict=strict) for row in rows[:-1]]
        last = self._last_item.instantiate(rows[-1], strict=strict)
        if not rendered:
            return last
        if len(rendered) == 1 and template.pair_separator is not None:
            return rendered[0] + template.pair_separator + last
        return template.separator.join(rendered) + template.last_separator + last

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CompiledListTemplate({self.template.name})"


def compile_template(template: Template) -> CompiledTemplate:
    """Compile a flat template (one-off; the registry memoizes per label)."""
    return CompiledTemplate(template)


def compile_list_template(template: ListTemplate) -> CompiledListTemplate:
    """Compile a list template (one-off; the registry memoizes per label)."""
    return CompiledListTemplate(template)
