"""Registry associating template labels with schema-graph elements.

"The solution suggests that both nodes and edges are annotated by
appropriate template labels.  These labels are assigned once, e.g., by the
designer, at an initial design phase, and are instantiated at query time"
(Section 2.2).  The registry stores those labels keyed by graph element:

* relation node (``relation``) — the sentence template describing a tuple,
* projection edge (``relation``, ``attribute``) — the phrase describing an
  attribute of a tuple ("the YEAR of a MOVIE(.TITLE)"),
* join edge (``source``, ``target``) — the phrase describing the
  relationship between two relations' heading attributes,
* list templates keyed by name (``MOVIE_LIST``).

Default labels are derived automatically from the schema's NLG metadata
(concepts, captions, heading attributes, FK verb phrases) so the system
works on unannotated schemas; a designer can override any label.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.catalog.relation import Relation
from repro.catalog.schema import Schema
from repro.errors import MissingTemplateError
from repro.oracle import resolve_compiled_default
from repro.templates.compile import (
    CompiledListTemplate,
    CompiledTemplate,
)
from repro.templates.spec import ListTemplate, Template, slot, template


class TemplateRegistry:
    """Template labels for one schema's graph elements.

    Labels are assigned once (Section 2.2), so the registry also plays the
    role the compiled-plan cache plays on the execution side: derived
    default labels are memoized per graph element, and every label —
    designer-provided or derived — is compiled once into its
    :class:`~repro.templates.compile.CompiledTemplate` form.  Pass
    ``compile_templates=False`` to keep the interpreted path (the
    equivalence suite narrates both ways and diffs the bytes).
    """

    def __init__(self, schema: Schema, compile_templates: Optional[bool] = None) -> None:
        self.schema = schema
        # Defaults to compiled unless REPRO_ORACLE forces the interpreted
        # template walker (an explicit argument always wins).
        self.compile_templates = resolve_compiled_default(compile_templates)
        self._relation_templates: Dict[str, Template] = {}
        self._projection_templates: Dict[Tuple[str, str], Template] = {}
        self._join_templates: Dict[Tuple[str, str], Template] = {}
        self._list_templates: Dict[str, ListTemplate] = {}
        self._default_cache: Dict[Tuple, Optional[Template]] = {}
        self._compiled: Dict[int, CompiledTemplate] = {}
        self._compiled_lists: Dict[int, CompiledListTemplate] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def set_relation_template(self, relation: str, label: Template) -> None:
        self._relation_templates[self._rel(relation)] = label

    def set_projection_template(self, relation: str, attribute: str, label: Template) -> None:
        rel = self.schema.relation(relation)
        self._projection_templates[(rel.name, rel.attribute(attribute).name)] = label

    def set_join_template(self, source: str, target: str, label: Template) -> None:
        self._join_templates[(self._rel(source), self._rel(target))] = label

    def set_list_template(self, label: ListTemplate) -> None:
        self._list_templates[label.name.upper()] = label

    def _rel(self, relation: str) -> str:
        return self.schema.relation(relation).name

    # ------------------------------------------------------------------
    # Lookup (with generated defaults)
    # ------------------------------------------------------------------

    def relation_template(self, relation: str) -> Template:
        """The sentence template for a tuple of ``relation``.

        The default is "The <concept>'s <heading caption> is <HEADING>."
        style, e.g. "The director's name is Woody Allen" (Section 2.2's
        alternative (a)).
        """
        name = self._rel(relation)
        if name in self._relation_templates:
            return self._relation_templates[name]
        key = ("relation", name)
        cached = self._default_cache.get(key)
        if cached is None:
            cached = default_relation_template(self.schema.relation(name))
            self._default_cache[key] = cached
        return cached

    def projection_template(self, relation: str, attribute: str) -> Template:
        """The phrase template for a (relation, attribute) projection edge."""
        rel = self.schema.relation(relation)
        attr = rel.attribute(attribute)
        key = (rel.name, attr.name)
        if key in self._projection_templates:
            return self._projection_templates[key]
        cache_key = ("projection", rel.name, attr.name)
        cached = self._default_cache.get(cache_key)
        if cached is None:
            cached = default_projection_template(rel, attr.name)
            self._default_cache[cache_key] = cached
        return cached

    def has_join_template(self, source: str, target: str) -> bool:
        """True when a designer label exists for exactly this direction."""
        return (self._rel(source), self._rel(target)) in self._join_templates

    def join_template(
        self, source: str, target: str, allow_reverse: bool = True
    ) -> Optional[Template]:
        """The phrase template for the join edge ``source`` -> ``target``.

        Falls back to the reverse direction (unless ``allow_reverse`` is
        false), then to a default derived from the foreign key's verb
        phrase; returns ``None`` when the relations are not joined at all.
        """
        key = (self._rel(source), self._rel(target))
        if key in self._join_templates:
            return self._join_templates[key]
        reverse = (key[1], key[0])
        if allow_reverse and reverse in self._join_templates:
            return self._join_templates[reverse]
        cache_key = ("join", key[0], key[1])
        if cache_key in self._default_cache:
            return self._default_cache[cache_key]
        derived = default_join_template(self.schema, key[0], key[1])
        self._default_cache[cache_key] = derived
        return derived

    def list_template(self, name: str) -> ListTemplate:
        key = name.upper()
        if key not in self._list_templates:
            raise MissingTemplateError(f"no list template named {name!r} is registered")
        return self._list_templates[key]

    def has_list_template(self, name: str) -> bool:
        return name.upper() in self._list_templates

    # ------------------------------------------------------------------
    # Compiled forms
    # ------------------------------------------------------------------

    def compiled(self, label: Optional[Template]) -> Optional[CompiledTemplate]:
        """The compiled form of ``label``, memoized; ``None`` when compilation
        is disabled (callers then run the interpreted path) or ``label`` is
        ``None``."""
        if label is None or not self.compile_templates:
            return None
        compiled = self._compiled.get(id(label))
        if compiled is None or compiled.template is not label:
            compiled = CompiledTemplate(label)
            self._compiled[id(label)] = compiled
        return compiled

    def compiled_list(self, label: Optional[ListTemplate]) -> Optional[CompiledListTemplate]:
        """The compiled form of a list template (same contract as ``compiled``)."""
        if label is None or not self.compile_templates:
            return None
        compiled = self._compiled_lists.get(id(label))
        if compiled is None or compiled.template is not label:
            compiled = CompiledListTemplate(label)
            self._compiled_lists[id(label)] = compiled
        return compiled

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"TemplateRegistry({self.schema.name}: {len(self._relation_templates)} relation,"
            f" {len(self._projection_templates)} projection,"
            f" {len(self._join_templates)} join, {len(self._list_templates)} list labels)"
        )


# ---------------------------------------------------------------------------
# Default label derivation
# ---------------------------------------------------------------------------


def default_relation_template(relation: Relation) -> Template:
    """"The <concept>'s <heading caption> is <HEADING>"."""
    heading = relation.heading_attribute
    return template(
        f"the {relation.concept}'s {heading.display_caption} is ",
        slot(f"{relation.name}.{heading.name}"),
        subject=heading.name,
    )


def default_projection_template(relation: Relation, attribute: str) -> Template:
    """"<HEADING> has <attribute caption> <ATTRIBUTE>".

    The template starts with the heading slot so the single-relation
    translator can split it structurally into subject / verb / complement
    and the aggregation step can factor the subject out.
    """
    attr = relation.attribute(attribute)
    heading = relation.heading_attribute
    return template(
        slot(f"{relation.name}.{heading.name}"),
        f" has {attr.display_caption} ",
        slot(f"{relation.name}.{attr.name}"),
        subject=heading.name,
        verb=f"has {attr.display_caption}",
    )


def default_join_template(schema: Schema, source: str, target: str) -> Optional[Template]:
    """A join-edge phrase derived from the FK's verb phrase.

    E.g. for CAST.aid -> ACTOR.id with verb "plays in" the template reads
    "the <actor NAME> plays in the <movie TITLE>" style; without a verb
    phrase it falls back to "the <target concept> <HEADING> of the
    <source concept> <HEADING>".
    """
    fks = schema.foreign_keys_between(source, target)
    if not fks:
        return None
    fk = fks[0]
    source_rel = schema.relation(source)
    target_rel = schema.relation(target)
    source_heading = source_rel.heading_attribute
    target_heading = target_rel.heading_attribute
    verb = fk.verb_phrase or "is associated with"
    return template(
        f"the {source_rel.concept} ",
        slot(f"{source_rel.name}.{source_heading.name}"),
        f" {verb} the {target_rel.concept} ",
        slot(f"{target_rel.name}.{target_heading.name}"),
        subject=source_heading.name,
        verb=verb,
    )


def default_registry(schema: Schema) -> TemplateRegistry:
    """A registry containing only derived defaults for ``schema``."""
    return TemplateRegistry(schema)
