"""repro — a reproduction of "DBMSs Should Talk Back Too" (CIDR 2009).

The library makes a DBMS "talk back": it translates database contents and
SQL queries into natural-language narratives, following the graph-based,
template-annotated approach of Ioannidis & Simitsis.

Quickstart
----------
::

    from repro import movie_database, movie_spec, ContentNarrator, QueryTranslator

    db = movie_database()
    narrator = ContentNarrator(db, spec=movie_spec(db.schema))
    print(narrator.narrate_entity("DIRECTOR", "Woody Allen", "MOVIES"))

    translator = QueryTranslator(db.schema, spec=movie_spec(db.schema))
    print(translator.translate("select m.title from MOVIES m, CAST c, ACTOR a "
                               "where m.id = c.mid and c.aid = a.id "
                               "and a.name = 'Brad Pitt'").text)

Package map
-----------
``repro.catalog``     schemas, relations, attributes, foreign keys
``repro.storage``     in-memory tables, indexes and databases
``repro.sql``         SQL lexer/parser/AST/printer/validator
``repro.engine``      query planner and executor
``repro.graph``       the database schema graph (Section 2.2)
``repro.templates``   template labels and the paper's template syntax
``repro.lexicon``     lexical choices and English morphology helpers
``repro.nlg``         clauses, aggregation, realisation, document planning
``repro.content``     content-to-text translation (Section 2)
``repro.querygraph``  the query graph and the difficulty taxonomy (Section 3)
``repro.rewrite``     unnesting, division and idiom detection
``repro.query_nl``    query-to-text translation (Section 3)
``repro.service``     the concurrent (asyncio) narration service
``repro.datasets``    the paper's schemas, seed data and workload generators
``repro.evaluation``  metrics and the experiment registry
"""

from repro.catalog import (
    Attribute,
    DataType,
    ForeignKey,
    Relation,
    Schema,
    SchemaBuilder,
)
from repro.content import (
    ContentNarrator,
    NarrationSpec,
    SynthesisMode,
    TupleStyle,
    UserProfile,
    default_spec,
    employee_spec,
    library_spec,
    movie_spec,
)
from repro.datasets import (
    MANAGER_QUERY,
    PAPER_NARRATIVES,
    PAPER_QUERIES,
    employee_database,
    employee_schema,
    generate_movie_database,
    library_database,
    library_schema,
    movie_database,
    movie_schema,
)
from repro.engine import Executor, QueryResult, execute
from repro.errors import ReproError
from repro.graph import SchemaGraph, build_schema_graph, dfs_traversal
from repro.lexicon import Lexicon, default_lexicon
from repro.nlg import LengthBudget
from repro.query_nl import AnswerExplainer, QueryTranslation, QueryTranslator, translate_query
from repro.querygraph import QueryCategory, QueryGraph, build_query_graph, classify_query
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    NarrationService,
    NarrationSession,
    RetryPolicy,
    ServiceClosed,
    ServiceOverloaded,
    ShardRouter,
    ShardRouterConfig,
    WorkerCrashed,
)
from repro.sql import parse_select, parse_sql, to_sql
from repro.storage import (
    Database,
    DurabilityConfig,
    DurabilityManager,
    Row,
    StorageConfig,
    Table,
    TableStorage,
)
from repro.templates import TemplateRegistry, parse_list_template, parse_template

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AnswerExplainer",
    "Attribute",
    "CircuitBreaker",
    "ContentNarrator",
    "Deadline",
    "DeadlineExceeded",
    "DataType",
    "Database",
    "DurabilityConfig",
    "DurabilityManager",
    "Executor",
    "ForeignKey",
    "LengthBudget",
    "Lexicon",
    "MANAGER_QUERY",
    "NarrationService",
    "NarrationSession",
    "NarrationSpec",
    "PAPER_NARRATIVES",
    "PAPER_QUERIES",
    "QueryCategory",
    "QueryGraph",
    "QueryResult",
    "QueryTranslation",
    "QueryTranslator",
    "Relation",
    "ReproError",
    "RetryPolicy",
    "Row",
    "Schema",
    "SchemaBuilder",
    "SchemaGraph",
    "ServiceClosed",
    "ServiceOverloaded",
    "ShardRouter",
    "ShardRouterConfig",
    "SynthesisMode",
    "StorageConfig",
    "Table",
    "TableStorage",
    "TemplateRegistry",
    "TupleStyle",
    "UserProfile",
    "WorkerCrashed",
    "build_query_graph",
    "build_schema_graph",
    "classify_query",
    "default_lexicon",
    "default_spec",
    "dfs_traversal",
    "employee_database",
    "employee_schema",
    "employee_spec",
    "execute",
    "generate_movie_database",
    "library_database",
    "library_schema",
    "library_spec",
    "movie_database",
    "movie_schema",
    "movie_spec",
    "parse_list_template",
    "parse_select",
    "parse_sql",
    "parse_template",
    "to_sql",
    "translate_query",
]
