"""The concurrent narration service: an asyncio front over the compiled pipeline.

The paper's vision is a DBMS that *talks back* interactively — which
means serving translation, narration, execution and empty-answer
explanation to many callers at once, not one synchronous caller.  PRs
1–3 made every stage of the pipeline compile-once-run-many (closure
plans, compiled templates, shape-keyed phrase plans, maintained
ranking); this module is the first layer that composes all three
compiled subsystems behind one concurrent interface.

Architecture
------------

:class:`NarrationService` owns a bounded :class:`ThreadPoolExecutor` and
a set of :class:`NarrationSession`\\ s, one per (schema, database) pair.
A session owns the shared compiled state for its schema — the
``builder_for`` query-graph builder, the ``default_lexicon_for`` lexicon
and its phrase-plan store, the compiled template registry inside its
spec, one shared :class:`~repro.engine.executor.Executor` (plan, scan
and subquery caches included) and one
:class:`~repro.content.narrator.ContentNarrator` — and funnels every
request through three tiers:

* **direct-await fast path** — a translate request whose SQL hits the
  exact-text LRU or a compiled phrase plan is served inline on the event
  loop (microseconds, no parse, no graph build).  The session lock is
  only *tried*; if a worker holds it the request falls through to the
  queue rather than blocking the loop.
* **batched cold path** — requests land in a bounded ``asyncio.Queue``
  (back-pressure: producers suspend while the queue is full).  A drain
  task groups each batch's translate *and* execute requests by masked SQL
  shape (:func:`repro.sql.shape.batch_key`), so one phrase-plan compile
  serves every same-shape translate in the batch and one parameterised
  plan binding serves every same-shape execute, and hands each group to
  the worker pool.
* **worker pool** — CPU-bound work (parsing, graph builds, plan
  compilation, execution, narration) runs on the service's
  ``ThreadPoolExecutor``, off the event loop.  Sessions of different
  schemas run in parallel; within a session the work lock serializes
  pipeline access, which is what makes the shared caches sound.

Thread-safety contract
----------------------

Python's hot-path caches here were built for single-threaded speed
(plain dicts, ``OrderedDict`` LRUs); the service makes them safe under
concurrency with a small set of rules, each enforced in code:

* every *pipeline touch* for a session — translator, executor, narrator,
  explainer — happens under that session's ``threading.Lock`` (workers
  block on it; the event-loop fast path only ever try-acquires);
* state shared *across* sessions is internally locked where mutation is
  structural: the per-lexicon :class:`~repro.query_nl.plans.PlanStore`,
  the shared :class:`~repro.querygraph.builder.QueryGraphBuilder` (its
  ``build`` keeps per-statement stacks on the instance) and the module
  factories (``builder_for``/``graph_for``/``default_lexicon_for``/
  ``plan_store_for``) and the masked-shape cache;
* memo dicts whose writes are single-key and value-idempotent (schema
  graph paths, lexicon lookups, template defaults) are left unlocked —
  a race costs a duplicate computation, never a wrong answer.

Because translation and narration are pure functions of (schema,
lexicon, text/data version), any interleaving of requests produces
byte-identical output to sequential synchronous calls; the equivalence
suite in ``tests/test_service.py`` asserts exactly that with 64
concurrent clients.

Observability
-------------

:meth:`NarrationSession.stats` is the per-session endpoint: request
counters by kind and tier (including per-kind shape-group counters for
the batched path), queue high-water mark, the translator's exact-text
LRU and phrase-plan store statistics (including the unplannable-shape
report), the shared executor's cache statistics, and the derived
execution shape-sharing rate (what fraction of executions were served by
a shared parameterised plan).  :meth:`NarrationService.stats` aggregates
every session.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.catalog.schema import Schema
from repro.content.narrator import ContentNarrator
from repro.content.presets import NarrationSpec
from repro.engine.executor import Executor
from repro.lexicon.lexicon import Lexicon
from repro.query_nl.empty_answer import AnswerExplainer
from repro.query_nl.translator import QueryTranslation, QueryTranslator
from repro.service.resilience import AdmissionController, Deadline
from repro.sql.shape import batch_key, is_mutation as _is_mutation
from repro.storage.database import Database
from repro.storage.durability import DurabilityConfig, DurabilityManager

__all__ = ["NarrationService", "NarrationSession", "ServiceClosed"]


class ServiceClosed(RuntimeError):
    """Raised when a request is submitted to a closed service/session."""


class _Request:
    """One queued unit of work: kind, payload, deadline and the caller's future."""

    __slots__ = ("kind", "payload", "future", "deadline")

    def __init__(
        self,
        kind: str,
        payload: Any,
        future: "asyncio.Future",
        deadline: Deadline = Deadline.NONE,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.future = future
        self.deadline = deadline


class NarrationSession:
    """All concurrent access to one (schema, database) pair.

    Sessions are created through :meth:`NarrationService.session`; the
    translate/execute/narrate/explain coroutines are safe to call from
    many tasks at once and return exactly what the synchronous pipeline
    would.  Construction is cheap — the expensive state (executor,
    narrator, explainer) materialises on first use.
    """

    def __init__(
        self,
        service: "NarrationService",
        schema: Schema,
        database: Optional[Database],
        spec: Optional[NarrationSpec],
        lexicon: Optional[Lexicon],
        max_queue: int,
        max_batch: int,
        cache_size: Optional[int] = 512,
        phrase_plans: Optional[bool] = None,
        admission: Optional[AdmissionController] = None,
        default_timeout: Optional[float] = None,
        durability: Optional[DurabilityConfig] = None,
    ) -> None:
        self._service = service
        self.schema = schema
        # Durability attaches before anything caches the database object:
        # with prior state on disk, attach() *replaces* the database with
        # the recovered one (the argument was only a schema-shaped vessel).
        self._durability: Optional[DurabilityManager] = None
        if durability is not None:
            if database is None:
                raise ValueError("durability requires a database-backed session")
            self._durability = DurabilityManager(durability)
            database = self._durability.attach(database)
        self.database = database
        self.spec = spec
        self.translator = QueryTranslator(
            schema,
            spec=spec,
            lexicon=lexicon,
            cache_size=cache_size,
            phrase_plans=phrase_plans,
        )
        self._max_batch = max_batch
        self._max_queue = max_queue
        # Resilience: admission control (shedding off unless configured)
        # and the default per-request deadline (None = unbounded).
        self._admission = admission if admission is not None else AdmissionController()
        self._default_timeout = default_timeout
        # Serializes every pipeline touch; see the module docstring's
        # thread-safety contract.
        self._work_lock = threading.Lock()
        # Counter updates come from both the event loop and the workers.
        self._stats_lock = threading.Lock()
        self._executor: Optional[Executor] = None
        self._narrator: Optional[ContentNarrator] = None
        self._explainer: Optional[AnswerExplainer] = None
        self._queue: Optional["asyncio.Queue[_Request]"] = None
        self._drain_task: Optional["asyncio.Task"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self._counts: Dict[str, int] = {}
        self._fast_path_hits = 0
        self._batches = 0
        self._batched_requests = 0
        self._largest_batch = 0
        # Per-kind group counters; the total group count is derived from
        # these in stats() (every group has exactly one kind).
        self._grouped_by_kind: Dict[str, Dict[str, int]] = {}
        self._queue_high_water = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    async def translate(
        self, sql: str, timeout: Optional[float] = None
    ) -> QueryTranslation:
        """Translate SQL to natural language (Section 3 of the paper).

        Plan/LRU hits are served inline; cold translations are batched by
        shape and run on the worker pool.  ``timeout`` caps this one
        request (falling back to the session's ``default_timeout``); the
        deadline is honored at admission, in the queue and in the drain
        task, and expiry raises the typed
        :class:`~repro.service.resilience.DeadlineExceeded`.
        """
        self._check_open()
        if isinstance(sql, str) and self._work_lock.acquire(blocking=False):
            try:
                fast = self.translator.try_fast_translate(sql)
            finally:
                self._work_lock.release()
            if fast is not None:
                with self._stats_lock:
                    self._fast_path_hits += 1
                    self._counts["translate"] = self._counts.get("translate", 0) + 1
                return fast
        return await self._submit("translate", sql, self._deadline(timeout))

    async def execute(self, sql: str, timeout: Optional[float] = None):
        """Execute SQL on the session's shared (cached, compiled) executor.

        Concurrent same-shape requests are grouped by the drain task, so
        one parameterised plan binding serves the whole group (the first
        request of a fresh shape compiles the shared plan; the rest —
        and every later request of that shape — only rebind literals).
        """
        self._check_open()
        return await self._submit("execute", sql, self._deadline(timeout))

    async def explain_empty(self, sql: str, timeout: Optional[float] = None):
        """Explain an empty (or very large) answer (Section 3.1)."""
        self._check_open()
        return await self._submit("explain", sql, self._deadline(timeout))

    async def narrate_database(self, *, timeout: Optional[float] = None, **kwargs) -> str:
        """Narrate the database contents (Section 2)."""
        self._check_open()
        return await self._submit("narrate_database", kwargs, self._deadline(timeout))

    async def narrate_relation(
        self, relation_name: str, *, timeout: Optional[float] = None, **kwargs
    ) -> str:
        """Narrate one relation's (top) tuples."""
        self._check_open()
        return await self._submit(
            "narrate_relation", (relation_name, kwargs), self._deadline(timeout)
        )

    def _deadline(self, timeout: Optional[float]) -> Deadline:
        """The request deadline: explicit timeout, session default, or none."""
        if timeout is None:
            timeout = self._default_timeout
        return Deadline.after(timeout)

    def captured_shapes(self) -> Dict[str, List[str]]:
        """The session's captured workload, one representative text per shape.

        ``translate`` holds the phrase-plan store's capture, ``execute``
        the shared executor's parameterised-plan capture.  Feeding the
        dict to :meth:`precompile` on a fresh session of an equivalent
        (schema, database) warm-starts it — the shard tier does exactly
        this for respawned workers, and a deployment can persist the dict
        to warm-start the next process generation.
        """
        captured: Dict[str, List[str]] = {
            "translate": self.translator.captured_shapes(),
            "execute": [],
        }
        if self._executor is not None:
            captured["execute"] = self._executor.captured_shapes()
        return captured

    async def precompile(self, shapes: Dict[str, List[str]]) -> Dict[str, int]:
        """Warm-start: replay a :meth:`captured_shapes` dict on this session.

        Runs on the worker pool under the session lock like any other
        pipeline touch; returns how many texts replayed cleanly per kind.
        """
        self._check_open()
        return await self._submit("precompile", shapes)

    async def checkpoint(self) -> int:
        """Snapshot the session's database now; returns the WAL seq covered.

        Only meaningful on a durable session (one created with a
        ``durability`` config) — raises :class:`ValueError` otherwise.
        Runs on the worker pool under the session work lock, so the
        snapshot sees no half-applied mutation.
        """
        self._check_open()
        if self._durability is None:
            raise ValueError("this session has no durability configured")
        return await self._submit("checkpoint", None)

    @property
    def durability(self) -> Optional[DurabilityManager]:
        return self._durability

    async def snapshot_to(self, directory: str, wal_seq: int) -> Dict[str, Any]:
        """Write an atomic snapshot of this session's database to ``directory``.

        Unlike :meth:`checkpoint` this needs no durability config: the
        shard tier uses it to checkpoint a worker replica into the
        *router's* durability directory (the router owns the WAL and its
        compaction; the worker only contributes the state bytes).  Runs
        under the session work lock like every pipeline touch.
        """
        self._check_open()
        return await self._submit("snapshot_to", (directory, wal_seq))

    def stats(self) -> Dict[str, Any]:
        """The per-session cache/plan/request statistics snapshot.

        ``requests`` counts traffic by kind and tier (``shape_groups_by_
        kind`` shows how well the drain task is coalescing same-shape
        translates and executes); ``execution_shape_sharing`` derives the
        executor's shape-hit rate — the fraction of SQL executions served
        by an already-compiled parameterised plan with only a literal
        rebind.
        """
        with self._stats_lock:
            requests = {
                "by_kind": dict(self._counts),
                "fast_path_hits": self._fast_path_hits,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "largest_batch": self._largest_batch,
                "shape_groups": sum(
                    counters["groups"] for counters in self._grouped_by_kind.values()
                ),
                "shape_groups_by_kind": {
                    kind: dict(counters)
                    for kind, counters in self._grouped_by_kind.items()
                },
                "queue_high_water": self._queue_high_water,
                "queue_depth": self._queue.qsize() if self._queue is not None else 0,
                "shed": self._admission.stats(),
            }
        snapshot: Dict[str, Any] = {
            "schema": self.schema.name,
            "has_database": self.database is not None,
            "requests": requests,
            "translator": self.translator.stats(),
        }
        if self._durability is not None:
            snapshot["durability"] = self._durability.stats()
        if self._executor is not None:
            snapshot["executor"] = self._executor.cache_stats
            shape = snapshot["executor"]["shape_plans"]
            served = shape["hits"] + shape["misses"] + shape["fallbacks"]
            snapshot["execution_shape_sharing"] = {
                "shared": shape["hits"],
                "compiled": shape["misses"],
                "fallbacks": shape["fallbacks"],
                "hit_rate": round(shape["hits"] / served, 4) if served else None,
            }
        return snapshot

    # ------------------------------------------------------------------
    # Queueing and batching
    # ------------------------------------------------------------------

    async def _submit(
        self, kind: str, payload: Any, deadline: Deadline = Deadline.NONE
    ) -> Any:
        loop = asyncio.get_running_loop()
        self._ensure_started(loop)
        queue = self._queue
        assert queue is not None
        # Admission control: shed typed (ServiceOverloaded at the depth
        # threshold, DeadlineExceeded for an already-expired budget)
        # instead of queueing work that can only fail later.
        self._admission.admit(queue.qsize(), deadline)
        future: "asyncio.Future" = loop.create_future()
        request = _Request(kind, payload, future, deadline)
        await queue.put(request)  # suspends while full: back-pressure
        if self._closed and (self._drain_task is None or self._drain_task.done()):
            # The put was suspended on a full queue while the session
            # closed: the drain task is gone, so nothing will ever settle
            # this future.  Reject it here (aclose's flush also sweeps the
            # queue, so whichever side runs first wins — both check
            # ``future.done()``).
            if not future.done():
                future.set_exception(
                    ServiceClosed("the narration service has been closed")
                )
        with self._stats_lock:
            self._counts[kind] = self._counts.get(kind, 0) + 1
            size = queue.qsize()
            if size > self._queue_high_water:
                self._queue_high_water = size
        return await future

    def _ensure_started(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._loop is None:
            self._loop = loop
            self._queue = asyncio.Queue(self._max_queue)
            self._drain_task = loop.create_task(self._drain())
        elif self._loop is not loop:
            raise RuntimeError(
                "a NarrationSession is bound to the event loop that first"
                " used it; create one service per loop"
            )

    async def _drain(self) -> None:
        """Forever: collect a batch, group it by shape, run groups on workers."""
        queue = self._queue
        loop = self._loop
        assert queue is not None and loop is not None
        pool = self._service._pool
        while True:
            first = await queue.get()
            batch = [first]
            while len(batch) < self._max_batch:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            groups = self._group(batch)
            with self._stats_lock:
                self._batches += 1
                self._batched_requests += len(batch)
                self._largest_batch = max(self._largest_batch, len(batch))
                for group in groups:
                    kind_stats = self._grouped_by_kind.setdefault(
                        group[0].kind, {"groups": 0, "requests": 0}
                    )
                    kind_stats["groups"] += 1
                    kind_stats["requests"] += len(group)
            try:
                for group in groups:
                    # One worker invocation per group: requests of one shape
                    # run back-to-back, so the first compile's phrase plan
                    # serves the rest of the group (and every later batch).
                    await loop.run_in_executor(pool, self._process_group, group)
            except asyncio.CancelledError:
                raise
            except BaseException as error:
                # Dispatch itself failed (e.g. the pool shut down under a
                # racing close).  Per-request errors were already delivered
                # by _process_group; settle whatever is still pending so no
                # client awaits forever, and keep draining.
                for request in batch:
                    if not request.future.done():
                        self._deliver(request.future, error=error)
            finally:
                for _ in batch:
                    queue.task_done()

    @staticmethod
    def _group(batch: List[_Request]) -> List[List[_Request]]:
        """Group translate/execute requests by masked shape; others singleton.

        First-arrival order is preserved across groups, and within a
        group requests stay in arrival order — results are independent
        per request (translation is pure; execution sees the same data
        version throughout a drain cycle unless a request in the batch
        mutates, and requests of one session run back-to-back under the
        work lock in arrival order either way), so grouping only affects
        scheduling, never output.  The grouping key carries the request
        kind, so a translate and an execute of the same SQL never share
        a group.

        A mutating execute (INSERT/UPDATE/DELETE) is a *barrier*: it runs
        as a singleton and no read that arrived after it may join a group
        created before it — otherwise a same-shape SELECT could jump the
        mutation and observe stale data that a sequential client would
        never see.
        """
        groups: List[List[_Request]] = []
        by_shape: Dict[Tuple[str, str], List[_Request]] = {}
        for request in batch:
            if request.kind in ("translate", "execute") and isinstance(
                request.payload, str
            ):
                if request.kind == "execute" and _is_mutation(request.payload):
                    by_shape.clear()
                    groups.append([request])
                    continue
                key = (request.kind, batch_key(request.payload))
                bucket = by_shape.get(key)
                if bucket is None:
                    bucket = []
                    by_shape[key] = bucket
                    groups.append(bucket)
                bucket.append(request)
            else:
                groups.append([request])
        return groups

    # ------------------------------------------------------------------
    # Worker side (runs on the service pool)
    # ------------------------------------------------------------------

    def _process_group(self, group: List[_Request]) -> None:
        with self._work_lock:
            for request in group:
                if request.deadline.expired:
                    # The budget ran out while the request waited in the
                    # queue or behind earlier group members: shed it now
                    # rather than spend pipeline time on a dead request.
                    with self._stats_lock:
                        error = self._admission.shed_expired_in_queue()
                    self._deliver(request.future, error=error)
                    continue
                try:
                    result = self._run(request)
                except BaseException as error:  # delivered, never swallowed
                    self._deliver(request.future, error=error)
                else:
                    self._deliver(request.future, result=result)

    def _run(self, request: _Request) -> Any:
        kind = request.kind
        if kind == "translate":
            return self.translator.translate(request.payload)
        if kind == "execute":
            return self._shared_executor().execute_sql(request.payload)
        if kind == "explain":
            return self._shared_explainer().explain(request.payload)
        if kind == "narrate_database":
            return self._shared_narrator().narrate_database(**request.payload)
        if kind == "narrate_relation":
            relation_name, kwargs = request.payload
            return self._shared_narrator().narrate_relation(relation_name, **kwargs)
        if kind == "precompile":
            shapes = request.payload
            replayed = {
                "translate": self.translator.precompile(shapes.get("translate", ()))
            }
            execute_shapes = shapes.get("execute", ())
            if execute_shapes and self.database is not None:
                replayed["execute"] = self._shared_executor().precompile(execute_shapes)
            else:
                replayed["execute"] = 0
            return replayed
        if kind == "checkpoint":
            assert self._durability is not None
            return self._durability.checkpoint()
        if kind == "snapshot_to":
            from repro.storage.snapshot import write_snapshot

            directory, wal_seq = request.payload
            info = write_snapshot(directory, self._require_database(), wal_seq)
            return {"path": str(info.path), "wal_seq": wal_seq}
        raise ValueError(f"unknown request kind {kind!r}")  # pragma: no cover

    def _deliver(self, future: "asyncio.Future", result: Any = None,
                 error: Optional[BaseException] = None) -> None:
        loop = self._loop
        assert loop is not None

        def settle() -> None:
            if future.done():  # cancelled by the client, or already settled
                return
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)

        loop.call_soon_threadsafe(settle)

    # ------------------------------------------------------------------
    # Shared per-session pipeline objects (created lazily, used under lock)
    # ------------------------------------------------------------------

    def _require_database(self) -> Database:
        if self.database is None:
            raise ValueError(
                "this session was created from a schema only; execution and"
                " narration need a database"
            )
        return self.database

    def _shared_executor(self) -> Executor:
        if self._executor is None:
            self._executor = Executor(self._require_database())
        return self._executor

    def _shared_narrator(self) -> ContentNarrator:
        if self._narrator is None:
            self._narrator = ContentNarrator(self._require_database(), spec=self.spec)
        return self._narrator

    def _shared_explainer(self) -> AnswerExplainer:
        if self._explainer is None:
            # Shares the session executor, so explanation re-executions hit
            # the same plan/scan/subquery caches as ordinary execution.
            self._explainer = AnswerExplainer(
                self._require_database(),
                lexicon=self.translator.lexicon,
                executor=self._shared_executor(),
            )
        return self._explainer

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed or self._service._closed:
            raise ServiceClosed("the narration service has been closed")

    async def aclose(self) -> None:
        """Finish queued work, stop the drain task, settle every straggler.

        Requests already queued are drained and answered normally; after
        the drain task stops, any request that slipped into the queue
        through the close race (a producer suspended on a full queue wakes
        *after* the drain finished) is settled with :class:`ServiceClosed`
        rather than left pending forever.
        """
        if self._closed:
            return
        self._closed = True
        if self._queue is not None and self._drain_task is not None:
            if not self._drain_task.done():
                await self._queue.join()
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            await self._flush_rejected()
        self._drain_task = None
        if self._durability is not None:
            # Flush any batched WAL appends; the directory stays valid
            # for the next session generation to recover from.
            self._durability.close()

    async def _flush_rejected(self) -> None:
        """Settle requests the dead drain task will never see.

        Emptying the queue frees capacity, which wakes producers suspended
        in ``queue.put``; each wake-up may enqueue another straggler, so
        the sweep repeats (yielding to the loop between passes) until a
        pass finds the queue empty and the previous pass settled nothing.
        """
        queue = self._queue
        assert queue is not None
        while True:
            settled = 0
            while True:
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                queue.task_done()
                settled += 1
                if not request.future.done():
                    request.future.set_exception(
                        ServiceClosed("the narration service has been closed")
                    )
            if settled == 0:
                break
            # Let woken producers run their ``put`` before the next sweep.
            await asyncio.sleep(0)
        # One more yield: a producer woken by the final sweep may still be
        # about to put; its request is settled by the _submit-side guard.
        await asyncio.sleep(0)


class NarrationService:
    """An asyncio service multiplexing narration sessions over one pool.

    ::

        async with NarrationService(max_workers=4) as service:
            session = service.session(database=movie_database(),
                                      spec_factory=movie_spec)
            translation = await session.translate(sql)
            answer = await session.execute(sql)
            story = await session.narrate_database()
            print(session.stats())

    ``max_workers`` bounds the CPU-bound worker pool shared by every
    session; ``max_queue`` bounds each session's request queue (producers
    suspend while it is full — back-pressure, not unbounded buffering);
    ``max_batch`` caps how many queued requests one drain cycle groups.
    """

    def __init__(
        self,
        max_workers: int = 4,
        max_queue: int = 256,
        max_batch: int = 32,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.max_workers = max_workers
        self.max_queue = max_queue
        self.max_batch = max_batch
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._sessions: Dict[Tuple[int, int], NarrationSession] = {}
        self._sessions_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------

    def session(
        self,
        database: Optional[Database] = None,
        schema: Optional[Schema] = None,
        spec: Optional[NarrationSpec] = None,
        spec_factory=None,
        lexicon: Optional[Lexicon] = None,
        cache_size: Optional[int] = 512,
        phrase_plans: Optional[bool] = None,
        admission: Optional[AdmissionController] = None,
        default_timeout: Optional[float] = None,
        durability: Optional[DurabilityConfig] = None,
    ) -> NarrationSession:
        """The session for ``(schema, database)``, created on first use.

        Pass a ``database`` for the full surface (translate, execute,
        explain, narrate) or just a ``schema`` for translation only.
        ``spec_factory`` (e.g. ``movie_spec``) builds a narration spec
        from the schema once, when the session is first created.
        ``admission`` installs load shedding (an
        :class:`~repro.service.resilience.AdmissionController`; default:
        deadline shedding only, no depth threshold) and
        ``default_timeout`` the per-request deadline every request gets
        unless it passes its own (default: unbounded).  ``durability``
        (a :class:`~repro.storage.durability.DurabilityConfig`) makes
        the session persistent: mutations are write-ahead logged before
        applied, checkpoints happen on the configured cadence, and when
        the directory already holds state the session starts from the
        *recovered* database rather than the one passed in.

        Configuration (``spec``/``spec_factory``/``lexicon``/
        ``cache_size``/``phrase_plans``/``admission``/
        ``default_timeout``/``durability``) applies on first creation
        only; asking for an existing session *with* configuration raises
        rather than silently answering with the first caller's settings.
        """
        if self._closed:
            raise ServiceClosed("the narration service has been closed")
        if database is None and schema is None:
            raise ValueError("session() needs a database or a schema")
        resolved_schema = schema if schema is not None else database.schema
        key = (id(resolved_schema), id(database))
        configured = (
            spec is not None
            or spec_factory is not None
            or lexicon is not None
            or cache_size != 512
            or phrase_plans is not None
            or admission is not None
            or default_timeout is not None
            or durability is not None
        )
        with self._sessions_lock:
            existing = self._sessions.get(key)
            if existing is not None:
                if configured:
                    raise ValueError(
                        "a session for this (schema, database) pair already"
                        " exists; configuration is applied on first creation"
                        " only — call session() without configuration"
                        " arguments to reuse it"
                    )
                return existing
            if spec is None and spec_factory is not None:
                spec = spec_factory(resolved_schema)
            created = NarrationSession(
                self,
                resolved_schema,
                database,
                spec,
                lexicon,
                max_queue=self.max_queue,
                max_batch=self.max_batch,
                cache_size=cache_size,
                phrase_plans=phrase_plans,
                admission=admission,
                default_timeout=default_timeout,
                durability=durability,
            )
            self._sessions[key] = created
            return created

    def stats(self) -> Dict[str, Any]:
        """Aggregate statistics across every session."""
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        return {
            "max_workers": self.max_workers,
            "max_queue": self.max_queue,
            "max_batch": self.max_batch,
            "sessions": [session.stats() for session in sessions],
        }

    # ------------------------------------------------------------------

    async def aclose(self) -> None:
        """Drain every session, then shut the worker pool down.

        ``_closed`` flips *first*, so no new session can be created and no
        new request accepted while the drain and pool shutdown proceed.
        """
        if self._closed:
            return
        self._closed = True
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            await session.aclose()
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "NarrationService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()
