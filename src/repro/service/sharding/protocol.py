"""The shard tier's wire protocol: length-prefixed frames over a socket pair.

The router and its worker processes speak a deliberately tiny protocol —
three tuple shapes and one framing rule — so that every byte of it can be
reasoned about (and fuzzed) in isolation:

Frame
    ``[codec:1][length:4 big-endian][payload:length]``.  ``codec`` names
    the serializer of this one frame: ``0`` is pickle (always available,
    handles every repro object), ``1`` is msgpack (used only when the
    ``msgpack`` package is importable *and* the payload is plain data —
    anything it cannot encode transparently falls back to a pickle
    frame).  Mixed-codec streams are therefore legal and the reader never
    needs negotiation.

Request (router → worker)
    ``(request_id, kind, payload, seq)`` or
    ``(request_id, kind, payload, seq, budget)``.  ``kind`` is one of the
    session kinds (``translate``/``execute``/``explain``/
    ``narrate_database``/``narrate_relation``) or a control kind
    (:data:`STATS`, :data:`PRECOMPILE`, :data:`PING`, :data:`SHUTDOWN`).
    ``seq`` is ``None`` for ordinary requests; a mutation broadcast
    carries its monotonic sequence number here, which makes the request a
    *barrier* on the worker (see :mod:`.worker`).  ``budget`` (optional,
    seconds — *remaining* budget, never an absolute time, because the
    processes do not share a clock) propagates the router-side deadline
    so the worker's session queue can shed an expired read; barrier
    frames never carry one (a replica that shed a write while another
    applied it would diverge forever), so workers ignore ``budget`` when
    ``seq`` is set.

Response (worker → router)
    ``(request_id, status, payload)`` with ``status`` ``"ok"`` or
    ``"err"`` (payload then being the pickled exception, or a
    :class:`RemoteWorkerError` when the original does not pickle).  The
    first frame a worker ever sends is the hello/ready response for
    request id ``0``.

Results cross the boundary in *wire form*: plain data for translations
(:func:`wire_translation`/:func:`unwire_translation` — the lazy graph
factory is a closure and stays behind), and the objects themselves for
everything else (:class:`~repro.engine.result.QueryResult` rows are plain
dict-backed mappings and pickle cheaply).
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct
from typing import Any, Optional, Tuple

from repro.query_nl.translator import QueryTranslation

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack as _msgpack
except Exception:  # pragma: no cover - the common case in this container
    _msgpack = None

__all__ = [
    "CHECKPOINT",
    "CODEC_MSGPACK",
    "CODEC_PICKLE",
    "ERR",
    "FrameReader",
    "OK",
    "PING",
    "PRECOMPILE",
    "READY_ID",
    "RemoteWorkerError",
    "SHUTDOWN",
    "STATS",
    "encode_frame",
    "send_frame",
    "unwire_translation",
    "wire_translation",
]

#: Control request kinds (never collide with session kinds).
STATS = "__stats__"
PRECOMPILE = "__precompile__"
PING = "__ping__"
SHUTDOWN = "__shutdown__"
CHECKPOINT = "__checkpoint__"

#: Response statuses.
OK = "ok"
ERR = "err"

#: The request id of the worker's unsolicited hello/ready frame.
READY_ID = 0

CODEC_PICKLE = 0
CODEC_MSGPACK = 1

_HEADER = struct.Struct("!BI")

#: Read granularity; frames are typically far smaller.
_CHUNK = 1 << 16


class RemoteWorkerError(RuntimeError):
    """A worker-side exception whose original object could not cross the wire."""


def encode_frame(obj: Any) -> bytes:
    """One wire frame for ``obj``: msgpack when it transparently fits, else pickle."""
    if _msgpack is not None:
        try:
            payload = _msgpack.packb(obj, use_bin_type=True)
        except Exception:
            pass
        else:
            return _HEADER.pack(CODEC_MSGPACK, len(payload)) + payload
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(CODEC_PICKLE, len(payload)) + payload


def _decode(codec: int, payload: bytes) -> Any:
    if codec == CODEC_PICKLE:
        return pickle.loads(payload)
    if codec == CODEC_MSGPACK:
        if _msgpack is None:
            raise ValueError("received a msgpack frame but msgpack is unavailable")
        decoded = _msgpack.unpackb(payload, raw=False)
        # Requests/responses are tuples on the wire; msgpack round-trips
        # them as lists, so restore the outer shape.
        return tuple(decoded) if isinstance(decoded, list) else decoded
    raise ValueError(f"unknown frame codec {codec}")


async def send_frame(
    loop: asyncio.AbstractEventLoop,
    sock: socket.socket,
    obj: Any,
    lock: "asyncio.Lock",
) -> None:
    """Serialize and send one frame atomically (the lock orders writers)."""
    frame = encode_frame(obj)
    async with lock:
        await loop.sock_sendall(sock, frame)


class FrameReader:
    """Incremental frame reader over a non-blocking socket.

    ``read()`` returns the next decoded frame, or ``None`` on a clean or
    torn connection end (the shard tier treats both as peer death — the
    supervisor decides what that means).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, sock: socket.socket) -> None:
        self._loop = loop
        self._sock = sock
        self._buffer = bytearray()

    async def read(self) -> Optional[Any]:
        header = await self._fill(_HEADER.size)
        if header is None:
            return None
        codec, length = _HEADER.unpack(header)
        body = await self._fill(_HEADER.size + length)
        if body is None:
            return None
        payload = bytes(body[_HEADER.size :])
        del self._buffer[: _HEADER.size + length]
        return _decode(codec, payload)

    async def _fill(self, needed: int) -> Optional[bytes]:
        """The buffer's first ``needed`` bytes, reading until they exist."""
        while len(self._buffer) < needed:
            try:
                chunk = await self._loop.sock_recv(self._sock, _CHUNK)
            except (ConnectionError, OSError):
                return None
            if not chunk:
                return None
            self._buffer.extend(chunk)
        return bytes(self._buffer[:needed])


# ---------------------------------------------------------------------------
# Wire forms
# ---------------------------------------------------------------------------


def wire_translation(translation: QueryTranslation) -> Tuple:
    """A translation's textual fields as plain wire data.

    The lazy graph factory is a closure over the worker's builder and
    cannot (and should not) cross the process boundary: the translation
    text is the product, and a router-side caller that needs the graph
    can rebuild it from ``sql``.
    """
    return (
        translation.sql,
        translation.text,
        translation.category,
        translation.concise,
        list(translation.notes),
        translation.rewritten_sql,
    )


def unwire_translation(wire: Tuple) -> QueryTranslation:
    sql, text, category, concise, notes, rewritten_sql = wire
    return QueryTranslation(
        sql=sql,
        text=text,
        category=category,
        concise=concise,
        notes=list(notes),
        rewritten_sql=rewritten_sql,
    )
