"""Multi-process shard tier: consistent-hash shape routing over workers.

Public surface:

* :class:`~repro.service.sharding.router.ShardRouter` — the asyncio
  client API mirroring a ``NarrationService`` session, backed by N
  supervised worker processes;
* :class:`~repro.service.sharding.router.HashRing` — the consistent-hash
  ring the router places shape keys on;
* :class:`~repro.service.sharding.supervisor.ShardError` /
  :class:`~repro.service.sharding.supervisor.WorkerCrashed` — the typed
  errors shard-tier callers handle.
"""

from repro.service.sharding.protocol import RemoteWorkerError
from repro.service.sharding.router import HashRing, ShardRouter, ShardRouterConfig
from repro.service.sharding.supervisor import (
    ShardError,
    WorkerCrashed,
    WorkerHandle,
    default_start_method,
)

__all__ = [
    "HashRing",
    "RemoteWorkerError",
    "ShardError",
    "ShardRouter",
    "ShardRouterConfig",
    "WorkerCrashed",
    "WorkerHandle",
    "default_start_method",
]
