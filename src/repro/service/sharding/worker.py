"""Shard worker main: one process, one ``NarrationService`` replica.

A worker owns a private replica of the (schema, database) pair — built in
this process by the *factory* the router named, never pickled across —
and serves requests from its socket through a private
:class:`~repro.service.service.NarrationService` session, so every
compiled cache (phrase plans, exact-text LRU, parameterised plans, scan
and subquery caches, compiled templates) is process-local and stays hot
for the shapes the router's consistent hash assigns to this worker.

Pipelining and the write barrier
--------------------------------

Ordinary requests are *pipelined*: each becomes an asyncio task the
moment its frame arrives, so many requests are in flight at once and the
session's batching queue can group same-shape work exactly as it does in
the single-process service.  A mutation broadcast (``seq is not None``)
is a **barrier**: the read loop first awaits every in-flight task, then
runs the mutation alone to completion and responds, and only then reads
the next frame.  Combined with the router's ordering rule (a read routed
after a write waits for that worker's ack) this makes each replica's
visible history identical to the single-process service's — which is what
keeps shard-tier results byte-identical to the oracle.

Lifecycle
---------

On start the worker builds its replica, then sends the ready frame
(request id 0) carrying its pid.  :data:`~.protocol.SHUTDOWN` drains
in-flight work, closes the service gracefully (the drain/flush path in
``NarrationService.aclose``) and exits 0.  A torn socket means the router
died; the worker exits rather than serve nobody.
"""

from __future__ import annotations

import asyncio
import os
import socket
from typing import Any, Dict, Optional, Tuple

from repro.service.service import NarrationService
from repro.service.sharding.protocol import (
    ERR,
    OK,
    PING,
    PRECOMPILE,
    READY_ID,
    SHUTDOWN,
    STATS,
    FrameReader,
    RemoteWorkerError,
    send_frame,
    wire_translation,
)

__all__ = ["resolve_factory", "worker_main"]


def resolve_factory(path: str):
    """Import ``"module:qualname"`` and return the callable it names."""
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"factory path must be 'module:qualname', got {path!r}")
    module = __import__(module_name, fromlist=["_"])
    target: Any = module
    for part in qualname.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise TypeError(f"{path!r} does not name a callable")
    return target


def worker_main(spec: Dict[str, Any], sock: socket.socket) -> None:
    """Process entry point: build the replica, serve until shutdown."""
    try:
        asyncio.run(_serve(spec, sock))
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


async def _serve(spec: Dict[str, Any], sock: socket.socket) -> None:
    loop = asyncio.get_running_loop()
    sock.setblocking(False)
    write_lock = asyncio.Lock()
    try:
        service, session = _build_session(spec)
    except BaseException as error:
        # The replica could not be built; tell the router why, then exit.
        await send_frame(loop, sock, (READY_ID, ERR, _wire_error(error)), write_lock)
        return
    await send_frame(loop, sock, (READY_ID, OK, {"pid": os.getpid()}), write_lock)

    reader = FrameReader(loop, sock)
    inflight: set = set()

    async def respond(request_id: int, status: str, payload: Any) -> None:
        await send_frame(loop, sock, (request_id, status, payload), write_lock)

    async def handle(request_id: int, kind: str, payload: Any) -> None:
        try:
            result = await _run(session, kind, payload)
        except BaseException as error:
            await respond(request_id, ERR, _wire_error(error))
        else:
            await respond(request_id, OK, result)

    shutdown_id: Optional[int] = None
    while True:
        message = await reader.read()
        if message is None:  # router died or closed the socket
            break
        request_id, kind, payload, seq = message
        if kind == SHUTDOWN:
            shutdown_id = request_id
            break
        if seq is not None:
            # Mutation barrier: everything in flight completes first, the
            # mutation runs alone, and no later frame is even read until
            # it has been acked.
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
                inflight.clear()
            await handle(request_id, kind, payload)
            continue
        task = loop.create_task(handle(request_id, kind, payload))
        inflight.add(task)
        task.add_done_callback(inflight.discard)

    if inflight:
        await asyncio.gather(*inflight, return_exceptions=True)
    await service.aclose()
    if shutdown_id is not None:
        await respond(shutdown_id, OK, {"pid": os.getpid()})


def _build_session(spec: Dict[str, Any]) -> Tuple[NarrationService, Any]:
    database = resolve_factory(spec["database_factory"])()
    spec_factory_path = spec.get("spec_factory")
    service = NarrationService(max_workers=spec.get("service_workers", 2))
    session = service.session(
        database=database,
        spec_factory=(
            resolve_factory(spec_factory_path) if spec_factory_path else None
        ),
        cache_size=spec.get("cache_size", 512),
        phrase_plans=spec.get("phrase_plans"),
    )
    return service, session


async def _run(session, kind: str, payload: Any) -> Any:
    if kind == "translate":
        return wire_translation(await session.translate(payload))
    if kind == "execute":
        return await session.execute(payload)
    if kind == "explain":
        return await session.explain_empty(payload)
    if kind == "narrate_database":
        return await session.narrate_database(**payload)
    if kind == "narrate_relation":
        relation_name, kwargs = payload
        return await session.narrate_relation(relation_name, **kwargs)
    if kind == STATS:
        return {"pid": os.getpid(), "session": session.stats()}
    if kind == PRECOMPILE:
        return await session.precompile(payload)
    if kind == PING:
        return {"pid": os.getpid()}
    raise ValueError(f"unknown request kind {kind!r}")


def _wire_error(error: BaseException) -> BaseException:
    """``error`` itself when it pickles, else a faithful stand-in."""
    import pickle

    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RemoteWorkerError(f"{type(error).__name__}: {error}")
