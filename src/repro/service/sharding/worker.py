"""Shard worker main: one process, one ``NarrationService`` replica.

A worker owns a private replica of the (schema, database) pair — built in
this process by the *factory* the router named, never pickled across —
and serves requests from its socket through a private
:class:`~repro.service.service.NarrationService` session, so every
compiled cache (phrase plans, exact-text LRU, parameterised plans, scan
and subquery caches, compiled templates) is process-local and stays hot
for the shapes the router's consistent hash assigns to this worker.

Pipelining and the write barrier
--------------------------------

Ordinary requests are *pipelined*: each becomes an asyncio task the
moment its frame arrives, so many requests are in flight at once and the
session's batching queue can group same-shape work exactly as it does in
the single-process service.  A mutation broadcast (``seq is not None``)
is a **barrier**: the read loop first awaits every in-flight task, then
runs the mutation alone to completion and responds, and only then reads
the next frame.  Combined with the router's ordering rule (a read routed
after a write waits for that worker's ack) this makes each replica's
visible history identical to the single-process service's — which is what
keeps shard-tier results byte-identical to the oracle.

Deadlines and faults
--------------------

A request frame may carry a *budget* (seconds of deadline remaining,
router-measured); the worker hands it to its session, whose queue and
drain task shed the request typed when the budget runs out.  Barrier
frames (mutations) never honor a budget — shedding a write on one
replica while another applies it would diverge the fleet.

When ``REPRO_FAULTS`` is set (see :mod:`repro.service.faults`) the
worker arms a seeded :class:`~repro.service.faults.FaultInjector` scoped
to its index: ordinary requests are counted, and the deterministic
schedule decides which request the process dies at (``os._exit``,
indistinguishable from SIGKILL), which requests stall before running
(the slow replica), and which response frames are dropped, delayed or
sent undecodable.  Control frames, barrier frames and the ready hello
are exempt, so fault schedules can never diverge replica state or make
a respawn unbuildable.

Lifecycle
---------

On start the worker builds its replica, then sends the ready frame
(request id 0) carrying its pid.  :data:`~.protocol.SHUTDOWN` drains
in-flight work, closes the service gracefully (the drain/flush path in
``NarrationService.aclose``) and exits 0.  A torn socket means the router
died; the worker exits rather than serve nobody.
"""

from __future__ import annotations

import asyncio
import os
import socket
from typing import Any, Dict, Optional, Tuple

from repro.service.faults import CORRUPT, DELAY, DROP, FaultInjector, corrupt_frame
from repro.service.service import NarrationService
from repro.service.sharding.protocol import (
    CHECKPOINT,
    ERR,
    OK,
    PING,
    PRECOMPILE,
    READY_ID,
    SHUTDOWN,
    STATS,
    FrameReader,
    RemoteWorkerError,
    encode_frame,
    send_frame,
    wire_translation,
)

__all__ = ["resolve_factory", "worker_main"]


def resolve_factory(path: str):
    """Import ``"module:qualname"`` and return the callable it names."""
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"factory path must be 'module:qualname', got {path!r}")
    module = __import__(module_name, fromlist=["_"])
    target: Any = module
    for part in qualname.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise TypeError(f"{path!r} does not name a callable")
    return target


def worker_main(
    spec: Dict[str, Any],
    sock: socket.socket,
    index: int = 0,
    parent_fd: Optional[int] = None,
) -> None:
    """Process entry point: build the replica, serve until shutdown.

    ``parent_fd`` is the router-side end of this worker's socketpair as
    inherited across ``fork``; it must be closed here, else this worker
    holds its own connection's peer open and an orphaned worker (router
    SIGKILLed, workers not) never reads EOF and never exits.
    """
    if parent_fd is not None:
        try:
            os.close(parent_fd)
        except OSError:  # pragma: no cover - already closed is fine
            pass
    try:
        asyncio.run(_serve(spec, sock, index))
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


async def _serve(spec: Dict[str, Any], sock: socket.socket, index: int = 0) -> None:
    loop = asyncio.get_running_loop()
    sock.setblocking(False)
    write_lock = asyncio.Lock()
    injector = FaultInjector.from_env(f"worker-{index}")
    try:
        service, session, restored_seq = _build_session(spec)
    except BaseException as error:
        # The replica could not be built; tell the router why, then exit.
        await send_frame(loop, sock, (READY_ID, ERR, _wire_error(error)), write_lock)
        return
    await send_frame(
        loop,
        sock,
        (READY_ID, OK, {"pid": os.getpid(), "restored_seq": restored_seq}),
        write_lock,
    )

    reader = FrameReader(loop, sock)
    inflight: set = set()

    async def respond(
        request_id: int, status: str, payload: Any, fault_index: int = 0
    ) -> None:
        if injector is not None and fault_index:
            fate, seconds = injector.response_fate(fault_index)
            if fate == DROP:
                return  # the router's per-attempt timeout covers this
            if fate == DELAY:
                await asyncio.sleep(seconds)
            elif fate == CORRUPT:
                frame = corrupt_frame(encode_frame((request_id, status, payload)))
                async with write_lock:
                    await loop.sock_sendall(sock, frame)
                return
        await send_frame(loop, sock, (request_id, status, payload), write_lock)

    async def handle(
        request_id: int,
        kind: str,
        payload: Any,
        budget: Optional[float] = None,
        fault_index: int = 0,
    ) -> None:
        if injector is not None and fault_index:
            stall = injector.stall_for(fault_index)
            if stall:  # the slow replica: the request runs, late
                await asyncio.sleep(stall)
        try:
            result = await _run(session, kind, payload, budget)
        except BaseException as error:
            await respond(request_id, ERR, _wire_error(error), fault_index)
        else:
            await respond(request_id, OK, result, fault_index)

    shutdown_id: Optional[int] = None
    ordinary = 0  # fault-injection event counter (ordinary requests only)
    while True:
        message = await reader.read()
        if message is None:  # router died or closed the socket
            break
        request_id, kind, payload, seq = message[:4]
        budget = message[4] if len(message) > 4 else None
        if kind == SHUTDOWN:
            shutdown_id = request_id
            break
        if seq is not None:
            # Mutation barrier: everything in flight completes first, the
            # mutation runs alone, and no later frame is even read until
            # it has been acked.  Barriers never honor a budget (a
            # deadline shed must not be able to diverge replicas) and are
            # exempt from fault injection.
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
                inflight.clear()
            await handle(request_id, kind, payload)
            continue
        fault_index = 0
        if injector is not None and not kind.startswith("__"):
            ordinary += 1
            fault_index = ordinary
            if injector.crash_due(fault_index):
                injector.crash()  # os._exit: the deterministic SIGKILL
        task = loop.create_task(
            handle(request_id, kind, payload, budget, fault_index)
        )
        inflight.add(task)
        task.add_done_callback(inflight.discard)

    if inflight:
        await asyncio.gather(*inflight, return_exceptions=True)
    await service.aclose()
    if shutdown_id is not None:
        await respond(shutdown_id, OK, {"pid": os.getpid()})


def _build_session(spec: Dict[str, Any]) -> Tuple[NarrationService, Any, int]:
    """Build this worker's replica; returns (service, session, restored_seq).

    With a ``durability_dir`` in the spec the factory-built database is
    fast-forwarded from the newest snapshot there — the router then only
    replays the WAL records *after* the snapshot's seq instead of the
    whole history.  The worker never opens the WAL itself: the router
    owns the log (one writer), replicas only contribute snapshots on
    request (:data:`~.protocol.CHECKPOINT`).
    """
    database = resolve_factory(spec["database_factory"])()
    storage = spec.get("storage")
    if storage is not None and storage != database.storage_config:
        # The router's StorageConfig travels in the spec; rebuild the
        # factory's database under it so every replica runs the same
        # engines (rowids and insertion order carry over).
        database = database.with_storage(storage)
    restored_seq = 0
    durability_dir = spec.get("durability_dir")
    if durability_dir:
        from repro.storage.snapshot import latest_snapshot, load_snapshot, restore_into

        info = latest_snapshot(durability_dir)
        if info is not None:
            state = load_snapshot(info.path)
            restore_into(database, state)
            restored_seq = state["wal_seq"]
    spec_factory_path = spec.get("spec_factory")
    service = NarrationService(max_workers=spec.get("service_workers", 2))
    session = service.session(
        database=database,
        spec_factory=(
            resolve_factory(spec_factory_path) if spec_factory_path else None
        ),
        cache_size=spec.get("cache_size", 512),
        phrase_plans=spec.get("phrase_plans"),
    )
    return service, session, restored_seq


async def _run(
    session, kind: str, payload: Any, budget: Optional[float] = None
) -> Any:
    if kind == "translate":
        return wire_translation(await session.translate(payload, timeout=budget))
    if kind == "execute":
        return await session.execute(payload, timeout=budget)
    if kind == "explain":
        return await session.explain_empty(payload, timeout=budget)
    if kind == "narrate_database":
        return await session.narrate_database(timeout=budget, **payload)
    if kind == "narrate_relation":
        relation_name, kwargs = payload
        return await session.narrate_relation(relation_name, timeout=budget, **kwargs)
    if kind == STATS:
        return {"pid": os.getpid(), "session": session.stats()}
    if kind == PRECOMPILE:
        return await session.precompile(payload)
    if kind == CHECKPOINT:
        directory, wal_seq = payload
        return await session.snapshot_to(directory, wal_seq)
    if kind == PING:
        return {"pid": os.getpid()}
    raise ValueError(f"unknown request kind {kind!r}")


def _wire_error(error: BaseException) -> BaseException:
    """``error`` itself when it pickles, else a faithful stand-in."""
    import pickle

    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RemoteWorkerError(f"{type(error).__name__}: {error}")
