"""The shard router: consistent-hash shape routing over worker processes.

:class:`ShardRouter` is the multi-process successor to a single
:class:`~repro.service.service.NarrationService` session: same awaitable
surface (``translate`` / ``execute`` / ``explain_empty`` /
``narrate_database`` / ``narrate_relation`` / ``stats``), but behind it N
worker processes each own a full (schema, database) replica and a private
compiled pipeline — so throughput scales with cores instead of saturating
one GIL.

Routing
-------

Requests are routed by :func:`repro.sql.shape.shape_hash` — the
process-stable 64-bit hash of the masked SQL shape — on a consistent-hash
ring (:class:`HashRing`, virtual-node construction).  Every literal
variant of one query shape therefore lands on the same worker, keeping
that worker's phrase-plan store, exact-text LRU and parameterised-plan
cache hot for the shapes it owns; and when the fleet is resized, only the
ring segment of the changed worker moves.  Narration and explanation
requests route by a stable hash of their arguments for the same affinity
reason.

Writes
------

A mutating statement broadcasts to *all* replicas under a monotonic
sequence number.  The sequence is an ordering barrier twice over: on each
worker the mutation waits for in-flight work and runs alone (see
:mod:`.worker`), and on the router a read routed after a write is not
sent until its target worker acked that write
(:meth:`~.supervisor.WorkerHandle.wait_applied`).  Any interleaving of
concurrent clients therefore observes some serial history, the *same*
history on every replica — which is what makes shard-tier output
byte-identical to the single-process service, the retained oracle.

Supervision
-----------

A dead worker (socket EOF, or a response frame the router cannot decode)
fails its in-flight requests with the typed
:class:`~.supervisor.WorkerCrashed`, then the router respawns it: fresh
process from the same factories, the full mutation log replayed in
sequence order (the replica converges to the fleet state; rejected
entries re-reject and still advance the watermark), and the captured
workload of the dead incarnation replayed through the warm-start API
(:data:`~.protocol.PRECOMPILE`) so the respawned worker's first real
request of every hot shape is a plan hit, not a cold compile.  The whole
rebuild runs under the mutation lock and the worker reopens for traffic
only once it has converged, so neither reads nor new writes can observe
(or interleave with) a half-rebuilt replica.  Once ``max_respawns`` is
exhausted the worker is marked permanently dead and its requests fail
fast with :class:`ShardError`.

Resilience
----------

Every knob lives in :class:`ShardRouterConfig`; the semantics are:

* **Deadlines** — every request carries a
  :class:`~repro.service.resilience.Deadline` (default
  ``request_timeout``), honored while waiting for a ready worker, at the
  read-after-write barrier, and across the worker round-trip; the
  remaining budget also ships to the worker so its session queue can
  shed an expired read.  Expiry raises the typed
  :class:`~repro.service.resilience.DeadlineExceeded`.
* **Retries** — reads are idempotent (routing is deterministic, replicas
  are byte-equivalent), so a read that hits a crashed worker or an
  attempt timeout retries under ``config.retry`` (exponential backoff,
  seeded jitter) within its deadline.  **Mutations are never
  auto-retried**: a crashed worker may or may not have applied the
  write, and the log replay — not a blind resend — is what converges it.
* **Degraded rerouting** — a read whose shape-owner is dead, rebuilding
  or breaker-open reroutes to the next live node in ring order instead
  of failing or waiting: every replica holds the full database, so the
  result is byte-identical — only colder (the fallback's caches do not
  own this shape).  The read still honors the write barrier on the
  worker that actually serves it.
* **Circuit breaking** — one closed/open/half-open
  :class:`~repro.service.resilience.CircuitBreaker` per worker counts
  infrastructure failures (crashes, attempt timeouts — never SQL
  errors); an open breaker diverts reads away from a sick-but-connected
  worker until its half-open probe succeeds.
"""

from __future__ import annotations

import asyncio
import bisect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.query_nl.translator import QueryTranslation
from repro.service.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from repro.service.service import ServiceClosed
from repro.service.sharding.protocol import (
    CHECKPOINT,
    PRECOMPILE,
    SHUTDOWN,
    STATS,
    unwire_translation,
)
from repro.service.sharding.supervisor import (
    ShardError,
    WorkerCrashed,
    WorkerHandle,
    default_start_method,
)
from repro.sql.shape import is_mutation as _is_mutation, shape_hash, stable_hash
from repro.storage.config import StorageConfig
from repro.storage.durability import DurabilityConfig
from repro.storage.snapshot import latest_snapshot, prune_snapshots
from repro.storage.wal import WriteAheadLog
from repro.utils.cache import LRUCache

__all__ = ["HashRing", "ShardRouter", "ShardRouterConfig"]


@dataclass(frozen=True)
class ShardRouterConfig:
    """Every shard-tier timeout, budget and resilience knob, in one place.

    The defaults reproduce the tier's long-standing behaviour (the
    previously hardcoded 10/30/60 second timeouts) plus the PR 7
    resilience semantics at conservative settings; construct with
    overrides (or ``dataclasses.replace`` an existing config) to tune.

    ============================ ==============================================
    knob                         meaning
    ============================ ==============================================
    ``request_timeout``          overall per-read deadline in seconds
                                 (``None`` = unbounded); the old hardcoded
                                 60 s ready-wait
    ``attempt_timeout``          one worker round-trip slice of that deadline —
                                 a dropped response frame costs this much, not
                                 the whole budget
    ``mutation_timeout``         admission deadline for mutation broadcasts
                                 (``None`` = unbounded).  Honored *before* the
                                 broadcast; barrier frames in flight always run
                                 to completion so the ack watermark stays sound
    ``shutdown_timeout``         polite worker drain on ``aclose`` before the
                                 supervisor terminates (the old hardcoded 10 s)
    ``stats_timeout``            per-worker ready-wait inside ``stats()`` (the
                                 old hardcoded 30 s)
    ``stop_timeout``             process-join slice when tearing a worker down
    ``max_respawns``             crash-respawn budget per worker slot before it
                                 is marked permanently dead
    ``retry``                    the :class:`RetryPolicy` for idempotent reads
                                 (``attempts=1`` disables auto-retry)
    ``degraded_reads``           reroute reads owned by a dead/rebuilding/
                                 breaker-open worker to the next live ring node
                                 (byte-identical, colder caches) instead of
                                 waiting or failing
    ``breaker_failures``         consecutive infrastructure failures that trip
                                 a worker's circuit breaker open
    ``breaker_reset``            seconds an open breaker waits before admitting
                                 half-open probes
    ``breaker_probes``           concurrent probes a half-open breaker admits
    ``breaker_wait``             sleep slice while every candidate is ready but
                                 breaker-blocked (bounded by the deadline)
    ============================ ==============================================
    """

    request_timeout: Optional[float] = 60.0
    attempt_timeout: float = 10.0
    mutation_timeout: Optional[float] = None
    shutdown_timeout: float = 10.0
    stats_timeout: float = 30.0
    stop_timeout: float = 5.0
    max_respawns: int = 8
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degraded_reads: bool = True
    breaker_failures: int = 5
    breaker_reset: float = 5.0
    breaker_probes: int = 1
    breaker_wait: float = 0.02

    def __post_init__(self) -> None:
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive")


class HashRing:
    """A consistent-hash ring mapping 64-bit keys to worker indices.

    Each worker contributes ``replicas`` virtual nodes placed by
    :func:`~repro.sql.shape.stable_hash`, so placement is identical in
    every process and every run.  Removing a worker moves only the keys
    it owned; adding one steals roughly ``1/n`` of each segment.
    """

    def __init__(self, worker_indices, replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        points: List[Tuple[int, int]] = []
        for index in worker_indices:
            for replica in range(replicas):
                points.append((stable_hash(f"shard-{index}#{replica}"), index))
        if not points:
            raise ValueError("a hash ring needs at least one worker")
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def route(self, key_hash: int) -> int:
        """The worker index owning ``key_hash`` (clockwise successor)."""
        position = bisect.bisect_right(self._hashes, key_hash)
        if position == len(self._hashes):
            position = 0
        return self._owners[position]

    def preference(self, key_hash: int) -> List[int]:
        """Every distinct worker in ring order starting at ``key_hash``.

        ``preference(k)[0] == route(k)``; the rest is the degradation
        order — the \"next live node\" a read falls back to is the first
        later entry whose worker is up.  Like placement itself, the
        order is a pure function of the key, identical in every process.
        """
        position = bisect.bisect_right(self._hashes, key_hash)
        owners = self._owners
        count = len(owners)
        seen: set = set()
        order: List[int] = []
        for step in range(count):
            owner = owners[(position + step) % count]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
        return order


class ShardRouter:
    """Consistent-hash shape routing over per-core worker processes.

    ::

        async with ShardRouter(movie_database, spec_factory=movie_spec,
                               workers=4) as router:
            translation = await router.translate(sql)
            answer = await router.execute(sql)
            await router.execute("insert into GENRE values (7, 'noir')")
            print(router_stats_summary := await router.stats())

    ``database_factory`` (and the optional ``spec_factory``) must be
    importable module-level callables — each worker *builds* its replica
    by calling them in its own process; nothing heavyweight is pickled
    across.  The single-process service remains the oracle: every result
    is byte-identical to what one ``NarrationService`` session would
    return for the same request history.
    """

    def __init__(
        self,
        database_factory: Union[str, Callable],
        spec_factory: Union[str, Callable, None] = None,
        workers: int = 2,
        service_workers: int = 2,
        cache_size: int = 512,
        phrase_plans: Optional[bool] = None,
        start_method: Optional[str] = None,
        ring_replicas: int = 64,
        capture_limit: int = 512,
        max_respawns: Optional[int] = None,
        config: Optional[ShardRouterConfig] = None,
        durability: Optional[DurabilityConfig] = None,
        storage: Optional[StorageConfig] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if config is None:
            config = ShardRouterConfig()
        if max_respawns is not None:  # convenience override, pre-config API
            config = replace(config, max_respawns=max_respawns)
        self._config = config
        self.workers = workers
        self._durability = durability
        self._spec = {
            "database_factory": _factory_path(database_factory),
            "spec_factory": (
                _factory_path(spec_factory) if spec_factory is not None else None
            ),
            "service_workers": service_workers,
            "cache_size": cache_size,
            "phrase_plans": phrase_plans,
            "durability_dir": (
                str(durability.directory) if durability is not None else None
            ),
            # A frozen dataclass of plain values: pickles across the
            # process boundary as-is.  Workers apply it when building
            # their replicas, so every shard runs the same engines.
            # Leave ``directory`` unset for the paged engine here —
            # workers sharing one heap directory would clobber each
            # other's files; each replica gets its own temp-file heap.
            "storage": storage,
        }
        self._start_method = start_method or default_start_method()
        self._ring = HashRing(range(workers), replicas=ring_replicas)
        self._handles: List[WorkerHandle] = [
            WorkerHandle(index, self._spec, self._start_method)
            for index in range(workers)
        ]
        self._max_respawns = config.max_respawns
        self._breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                failure_threshold=config.breaker_failures,
                reset_timeout=config.breaker_reset,
                probes=config.breaker_probes,
            )
            for _ in range(workers)
        ]
        self._started = False
        self._closed = False
        self._start_lock = asyncio.Lock()
        # Writes: the monotonic sequence and the replay log (seq, sql).
        # With durability configured the log's source of truth is the
        # WAL on disk (opened in start()); this list is the in-memory
        # tail since the last checkpoint, bounded by compaction.
        self._mutation_seq = 0
        self._mutation_log: List[Tuple[int, str]] = []
        self._mutation_lock = asyncio.Lock()
        self._wal: Optional[WriteAheadLog] = None
        self._snapshot_seq = 0  # newest on-disk checkpoint's seq
        self._since_checkpoint = 0
        self._checkpoints = 0
        self._compactions = 0
        self._recovered_mutations = 0
        # Warm-start capture: per worker, one representative text per
        # routed shape, bounded; replayed into a respawned incarnation.
        self._captured: List[Dict[str, LRUCache]] = [
            {"translate": LRUCache(capture_limit), "execute": LRUCache(capture_limit)}
            for _ in range(workers)
        ]
        self._counts: Dict[str, int] = {}
        self._crashes = 0
        self._retries = 0
        self._degraded_reads = 0
        self._deadline_expired = 0
        self._respawn_tasks: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker and wait for the fleet to come up.

        With durability configured, starting *is* recovery: the WAL is
        opened (truncating a torn tail, failing typed on mid-log
        corruption), the mutation sequence resumes where the previous
        router generation left off, each worker fast-forwards from the
        newest snapshot, and the router replays only the log tail the
        snapshot does not cover — all before the first request is
        admitted.
        """
        async with self._start_lock:
            if self._started:
                return
            self._check_open()
            if self._durability is not None and self._wal is None:
                self._open_wal()
            for handle in self._handles:
                handle.set_crash_callback(self._on_crash)
            results = await asyncio.gather(
                *[self._start_worker(handle) for handle in self._handles],
                return_exceptions=True,
            )
            errors = [r for r in results if isinstance(r, BaseException)]
            if errors:
                for handle in self._handles:
                    await handle.stop()
                raise errors[0]
            self._started = True

    def _open_wal(self) -> None:
        """Open (= recover) the router's WAL and resume the sequence."""
        from repro.errors import RecoveryError

        durability = self._durability
        assert durability is not None
        info = latest_snapshot(durability.directory)
        self._snapshot_seq = info.wal_seq if info is not None else 0
        self._wal = WriteAheadLog(
            durability.wal_path,
            fsync=durability.fsync,
            batch_every=durability.batch_every,
            injector=durability.injector,
        )
        if not self._wal.recovered:
            self._wal.set_base(self._snapshot_seq)
        tail = [
            (record.seq, record.payload["sql"])
            for record in self._wal.recovered
            if record.seq > self._snapshot_seq
        ]
        if tail and tail[0][0] > self._snapshot_seq + 1:
            raise RecoveryError(
                f"WAL gap: snapshot covers seq {self._snapshot_seq} but the"
                f" log resumes at seq {tail[0][0]}"
            )
        self._mutation_seq = max(self._wal.last_seq, self._snapshot_seq)
        self._mutation_log = tail
        self._since_checkpoint = len(tail)
        self._recovered_mutations = len(tail)

    async def _start_worker(self, handle: WorkerHandle) -> None:
        """Spawn one worker and converge it before opening for traffic.

        The fresh replica restored the newest snapshot in its own
        process (``restored_seq`` in the hello); the router fast-forwards
        the ack watermark to that seq and replays only the mutations the
        snapshot does not cover.  Without durability the log is empty at
        start and this is exactly the old spawn-and-open.
        """
        await handle.spawn(open_for_traffic=False)
        if handle.restored_seq:
            await handle.mark_applied(handle.restored_seq)
        for seq, sql in self._mutation_log:
            if seq <= handle.restored_seq:
                continue
            try:
                await handle.request("execute", sql, seq=seq)
            except (ShardError, asyncio.TimeoutError):
                raise  # the fresh incarnation itself died
            except Exception:
                pass  # a deterministically-rejected mutation re-rejected
        handle.ready.set()

    async def aclose(self) -> None:
        """Gracefully shut the fleet down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._started:
            # Polite first: every live worker drains its service and
            # exits 0; stop() then only has to join.
            await asyncio.gather(
                *[
                    self._shutdown_worker(handle)
                    for handle in self._handles
                ],
                return_exceptions=True,
            )
        for handle in self._handles:
            await handle.stop(timeout=self._config.stop_timeout)
        if self._wal is not None:
            self._wal.close()  # flush any batched group commit
            self._wal = None

    async def _shutdown_worker(self, handle: WorkerHandle) -> None:
        if handle.alive:
            try:
                await asyncio.wait_for(
                    handle.request(SHUTDOWN, None),
                    timeout=self._config.shutdown_timeout,
                )
            except Exception:
                pass  # stop() terminates what would not drain

    async def __aenter__(self) -> "ShardRouter":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Public request API (mirrors NarrationSession)
    # ------------------------------------------------------------------

    async def translate(
        self, sql: str, timeout: Optional[float] = None
    ) -> QueryTranslation:
        """Translate SQL to natural language on the shape's worker."""
        wire = await self._routed(
            "translate", sql, shape_hash(sql), capture="translate", timeout=timeout
        )
        return unwire_translation(wire)

    async def execute(self, sql: str, timeout: Optional[float] = None):
        """Execute SQL: reads on the shape's worker, writes on every worker.

        Reads are idempotent and auto-retry (and degrade to the next live
        replica) under ``config.retry`` within their deadline; mutations
        never do — see the module docstring's retry/idempotency contract.
        """
        if _is_mutation(sql):
            return await self._broadcast_mutation(sql, timeout=timeout)
        return await self._routed(
            "execute", sql, shape_hash(sql), capture="execute", timeout=timeout
        )

    async def explain_empty(self, sql: str, timeout: Optional[float] = None):
        """Explain an empty (or very large) answer on the shape's worker."""
        return await self._routed("explain", sql, shape_hash(sql), timeout=timeout)

    async def narrate_database(self, *, timeout: Optional[float] = None, **kwargs) -> str:
        """Narrate the database contents (routed by argument shape)."""
        return await self._routed(
            "narrate_database",
            kwargs,
            stable_hash(f"narrate_database:{sorted(kwargs.items())!r}"),
            timeout=timeout,
        )

    async def narrate_relation(
        self, relation_name: str, *, timeout: Optional[float] = None, **kwargs
    ) -> str:
        """Narrate one relation's (top) tuples (routed by relation)."""
        return await self._routed(
            "narrate_relation",
            (relation_name, kwargs),
            stable_hash(f"narrate_relation:{relation_name}:{sorted(kwargs.items())!r}"),
            timeout=timeout,
        )

    async def stats(self) -> Dict[str, Any]:
        """The fleet view: per-worker session stats plus router aggregates.

        ``fleet`` sums the interesting counters across workers (requests
        by kind, fast-path hits, phrase-plan and parameterised-plan
        hits/misses); ``workers`` holds each worker's full
        :meth:`NarrationSession.stats` snapshot together with its pid,
        mutation watermark and respawn count; ``router`` covers routing
        itself (per-kind routed counts, mutations, crashes, respawns).
        """
        self._check_open()
        await self.start()
        snapshots: List[Optional[Dict[str, Any]]] = []
        for handle in self._handles:
            breaker = self._breakers[handle.index]
            if handle.gave_up:
                snapshots.append(
                    {"health": "dead", "breaker": breaker.stats(), "session": None}
                )
                continue
            try:
                await asyncio.wait_for(
                    handle.ready.wait(), timeout=self._config.stats_timeout
                )
                remote = await handle.request(STATS, None)
            except Exception:
                snapshots.append(
                    {
                        "health": handle.health,
                        "breaker": breaker.stats(),
                        "session": None,
                    }
                )
                continue
            snapshots.append(
                {
                    "pid": remote["pid"],
                    "health": handle.health,
                    "breaker": breaker.stats(),
                    "applied_seq": handle.applied_seq,
                    "respawns": handle.respawns,
                    "session": remote["session"],
                }
            )
        durability_stats: Optional[Dict[str, Any]] = None
        if self._wal is not None:
            durability_stats = {
                "directory": self._spec["durability_dir"],
                "recovered_mutations": self._recovered_mutations,
                "snapshot_seq": self._snapshot_seq,
                "checkpoints": self._checkpoints,
                "since_checkpoint": self._since_checkpoint,
                "wal": self._wal.stats(),
            }
        return {
            "workers": snapshots,
            "fleet": _aggregate_fleet(snapshots),
            "router": {
                "workers": self.workers,
                "start_method": self._start_method,
                "requests_by_kind": dict(self._counts),
                "mutations": self._mutation_seq,
                "mutation_log": len(self._mutation_log),
                "compactions": self._compactions,
                "durability": durability_stats,
                "crashes": self._crashes,
                "respawns": sum(handle.respawns for handle in self._handles),
                "retries": self._retries,
                "degraded_reads": self._degraded_reads,
                "deadline_expired": self._deadline_expired,
                "breaker_trips": sum(b.trips for b in self._breakers),
                "worker_health": [handle.health for handle in self._handles],
                "dead_workers": [
                    handle.index for handle in self._handles if handle.gave_up
                ],
            },
        }

    def kill_worker(self, index: int) -> Optional[int]:
        """SIGKILL one worker (crash drills): returns its pid.

        The router notices the death exactly as it would a real crash —
        in-flight requests on that worker fail with
        :class:`WorkerCrashed`, and supervision respawns, replays the
        mutation log and warm-starts the replacement.
        """
        handle = self._handles[index]
        pid = handle.pid
        handle.kill()
        return pid

    # ------------------------------------------------------------------
    # Routing internals
    # ------------------------------------------------------------------

    async def _routed(
        self,
        kind: str,
        payload: Any,
        key_hash: int,
        capture: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Serve one idempotent read under the full resilience contract.

        Pick a worker (the shape's owner, or — degraded — the next live
        ring node when the owner is dead, rebuilding or breaker-open),
        honor the read-after-write barrier on whichever worker serves,
        and run the round-trip inside an attempt slice of the request
        deadline.  Infrastructure failures (crash, attempt timeout,
        mid-wait give-up) retry under ``config.retry``; pipeline errors
        (the worker answered; the SQL was bad) propagate immediately and
        count as breaker successes.  The deadline is terminal: expiry
        raises :class:`DeadlineExceeded` no matter how many attempts
        remain.
        """
        self._check_open()
        await self.start()
        config = self._config
        deadline = Deadline.after(
            timeout if timeout is not None else config.request_timeout
        )
        order = self._ring.preference(key_hash)
        primary = order[0]
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if capture is not None and isinstance(payload, str):
            # Warm-start capture always belongs to the shape's owner:
            # a degraded fallback serving it once must not pollute the
            # fallback's respawn warm-set.
            self._captured[primary][capture].put(shape_hash(payload), payload)
        policy = config.retry
        salt = f"{kind}:{key_hash}"
        attempt = 0
        while True:
            attempt += 1
            index, handle = await self._pick_worker(order, deadline)
            if index != primary:
                self._degraded_reads += 1
            breaker = self._breakers[index]
            # Read-after-write barrier: never send a read to a worker
            # that has not acked every mutation sequenced before this
            # request — degraded or not, every replica applies every
            # write, so the barrier holds on whichever worker serves.
            barrier = self._mutation_seq
            try:
                await asyncio.wait_for(
                    handle.wait_applied(barrier), deadline.remaining()
                )
                result = await asyncio.wait_for(
                    handle.request(
                        kind,
                        payload,
                        budget=deadline.bound(config.attempt_timeout),
                    ),
                    deadline.bound(config.attempt_timeout),
                )
            except asyncio.CancelledError:
                raise
            except (ShardError, asyncio.TimeoutError) as error:
                # Infrastructure failure: the worker crashed mid-request
                # (WorkerCrashed), gave up mid-barrier-wait (ShardError),
                # or the attempt slice / deadline ran out (TimeoutError —
                # including a worker-side DeadlineExceeded shed).
                breaker.record_failure()
                if deadline.expired:
                    self._deadline_expired += 1
                    raise DeadlineExceeded(
                        f"{kind} request deadline expired after {attempt}"
                        f" attempt(s) (last failure: {error!r})"
                    ) from error
                if not policy.should_retry(attempt, deadline):
                    raise
                self._retries += 1
                delay = deadline.bound(policy.delay(attempt, salt))
                if delay:
                    await asyncio.sleep(delay)
            except BaseException:
                # The worker answered; the *pipeline* rejected the
                # request (bad SQL, constraint violation).  That is a
                # healthy worker — and never retryable: the rejection is
                # deterministic.
                breaker.record_success()
                raise
            else:
                breaker.record_success()
                return result

    async def _pick_worker(
        self, order: List[int], deadline: Deadline
    ) -> Tuple[int, WorkerHandle]:
        """The first live, breaker-admitted worker in ring order.

        With ``degraded_reads`` off only the shape's owner is eligible
        (requests wait on its ready gate, the pre-PR 7 behaviour); with
        it on, a dead/rebuilding/breaker-open owner is skipped in favour
        of the next live node.  When nothing is immediately eligible the
        pick waits — on the first viable worker's ready gate, or out a
        breaker slice — bounded by the deadline.  Raises
        :class:`ShardError` terminally when every worker's respawn
        budget is exhausted.
        """
        config = self._config
        while True:
            viable = [i for i in order if not self._handles[i].gave_up]
            if not viable:
                raise ShardError(
                    "every worker is permanently down (respawn budget of"
                    f" {self._max_respawns} exhausted)"
                )
            candidates = viable if config.degraded_reads else viable[:1]
            blocked_but_ready = False
            for index in candidates:
                handle = self._handles[index]
                if not handle.ready.is_set():
                    continue
                if not self._breakers[index].allow():
                    blocked_but_ready = True
                    continue
                return index, handle
            if deadline.expired:
                self._deadline_expired += 1
                raise DeadlineExceeded(
                    "deadline expired before any worker became available"
                )
            if blocked_but_ready:
                # Ready workers exist but every breaker is open: wait out
                # a slice of the breaker timer rather than busy-spinning.
                await asyncio.sleep(deadline.bound(config.breaker_wait))
                continue
            # Nothing ready at all (fleet-wide respawn in flight): wait
            # on the first viable worker's gate under the deadline.
            target = self._handles[viable[0]]
            try:
                await asyncio.wait_for(target.ready.wait(), deadline.remaining())
            except asyncio.TimeoutError:
                self._deadline_expired += 1
                raise DeadlineExceeded(
                    f"deadline expired waiting for worker {target.index}"
                    " to come back"
                ) from None

    async def _broadcast_mutation(self, sql: str, timeout: Optional[float] = None):
        self._check_open()
        await self.start()
        deadline = Deadline.after(
            timeout if timeout is not None else self._config.mutation_timeout
        )
        deadline.require("the mutation broadcast was admitted")
        async with self._mutation_lock:
            # Deadlines stop at this door: once the broadcast holds the
            # lock, every barrier frame runs to completion.  Cancelling a
            # barrier round-trip mid-flight would leave the seq unacked
            # on that worker and wedge (now: expire) every later read
            # barriered on it — convergence outranks latency for writes.
            deadline.require("the mutation broadcast began")
            # Checkpoint on cadence *before* admitting the next write:
            # under the lock the fleet is quiescent and every ready
            # worker has applied everything up to _mutation_seq, so the
            # snapshot is consistent by construction.
            if (
                self._wal is not None
                and self._durability.checkpoint_every
                and self._since_checkpoint >= self._durability.checkpoint_every
            ):
                await self._checkpoint_locked()
            # The lock holds across *all* sends: were two mutations to
            # interleave their broadcasts, workers could apply them in
            # different orders and the replicas would diverge forever.
            self._mutation_seq += 1
            seq = self._mutation_seq
            if self._wal is not None:
                # Log-before-broadcast: once any replica applies this
                # write, it is already on disk and survives losing every
                # process (fsync policy decides about losing the machine).
                self._wal.append({"sql": sql}, seq=seq)
                self._since_checkpoint += 1
            self._mutation_log.append((seq, sql))
            self._counts["execute_mutation"] = (
                self._counts.get("execute_mutation", 0) + 1
            )
            results = []
            failures: List[BaseException] = []
            rejection: Optional[BaseException] = None
            for handle in self._handles:
                if not handle.ready.is_set():
                    # Dead, permanently down, or mid-respawn.  Skipping is
                    # safe: the not-ready → ready transition only happens
                    # in _respawn *under this same lock* after replaying
                    # the complete log — which now contains this entry —
                    # so the worker cannot reopen having missed the write.
                    failures.append(
                        WorkerCrashed(f"worker {handle.index} is down")
                    )
                    continue
                try:
                    results.append(await handle.request("execute", sql, seq=seq))
                except WorkerCrashed as error:
                    # The replica died mid-write; its respawn replays the
                    # log (this mutation included), so the fleet still
                    # converges.  The caller's result comes from the
                    # survivors.
                    failures.append(error)
                except (ShardError, asyncio.TimeoutError) as error:
                    failures.append(error)
                except asyncio.CancelledError:
                    raise
                except BaseException as error:
                    # A *pipeline* error (bad SQL, constraint violation)
                    # is deterministic: every replica rejects identically
                    # and applies nothing.  Keep delivering the frame to
                    # the remaining workers — each must still process the
                    # barrier and ack the seq (request() advances the
                    # watermark on ERR) — then surface the first.  The
                    # entry stays in the log so replayed seqs stay
                    # contiguous; replay tolerates the re-rejection.
                    if rejection is None:
                        rejection = error
            if rejection is not None:
                raise rejection
            if not results:
                raise failures[0] if failures else ShardError(
                    "mutation reached no worker"
                )
            return results[0]

    # ------------------------------------------------------------------
    # Checkpointing (durability)
    # ------------------------------------------------------------------

    async def checkpoint(self) -> Optional[int]:
        """Checkpoint the fleet now; returns the seq covered (or ``None``).

        Only meaningful with durability configured.  Takes the mutation
        lock, so it serialises against broadcasts and respawns exactly
        like the automatic cadence checkpoint does.
        """
        if self._wal is None:
            raise ValueError("this router has no durability configured")
        self._check_open()
        await self.start()
        async with self._mutation_lock:
            return await self._checkpoint_locked()

    async def _checkpoint_locked(self) -> Optional[int]:
        """Snapshot one ready replica, then compact (mutation lock held).

        Any ready worker's state is every worker's state (replicas are
        byte-identical by the barrier protocol), so the first ready one
        contributes the snapshot.  Best-effort: if no worker is ready or
        the snapshot fails, the WAL still holds the full tail and the
        next cadence hit tries again.  On success the WAL and the
        in-memory mutation log both drop everything the snapshot covers —
        which is what bounds the router's memory on write-heavy runs.
        """
        assert self._wal is not None and self._durability is not None
        seq = self._mutation_seq
        target = next(
            (handle for handle in self._handles if handle.ready.is_set()), None
        )
        if target is None:
            return None
        directory = self._spec["durability_dir"]
        try:
            await target.request(CHECKPOINT, (directory, seq))
        except asyncio.CancelledError:
            raise
        except BaseException:
            return None
        self._wal.commit()  # the tail is synced before anything is dropped
        self._wal.compact(seq)
        prune_snapshots(directory, keep=self._durability.keep_snapshots)
        self._snapshot_seq = seq
        self._mutation_log = [
            (entry_seq, entry_sql)
            for entry_seq, entry_sql in self._mutation_log
            if entry_seq > seq
        ]
        self._since_checkpoint = len(self._mutation_log)
        self._checkpoints += 1
        self._compactions += 1
        return seq

    # ------------------------------------------------------------------
    # Supervision internals
    # ------------------------------------------------------------------

    def _on_crash(self, handle: WorkerHandle) -> None:
        if self._closed:
            return
        self._crashes += 1
        task = asyncio.get_running_loop().create_task(self._respawn(handle))
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, handle: WorkerHandle) -> None:
        """Fresh process → replay mutation log → warm-start → reopen."""
        if handle.respawns >= self._max_respawns:
            # Permanently down: fail fast and typed from now on (the
            # ready gate stays cleared; give_up also wakes any reader
            # blocked on the watermark).
            await handle.give_up()
            return
        handle.respawns += 1
        captured = self._captured[handle.index]
        warm = {
            "translate": [sql for _, sql in captured["translate"].items()],
            "execute": [sql for _, sql in captured["execute"].items()],
        }
        try:
            # The whole rebuild holds the mutation lock, and the worker
            # reopens (ready.set) only at the very end: a concurrent
            # broadcast can therefore neither deliver a new seq before
            # the historical log has been replayed (out-of-order apply)
            # nor observe a reopened worker that missed a write — and
            # reads keep waiting on the ready gate, never reaching the
            # fresh replica before it has converged.
            async with self._mutation_lock:
                await handle.spawn(open_for_traffic=False)
                if handle.restored_seq:
                    # The fresh replica fast-forwarded from the newest
                    # snapshot in its own process; only the log tail
                    # beyond it needs replaying.
                    await handle.mark_applied(handle.restored_seq)
                for seq, sql in self._mutation_log:
                    if seq <= handle.restored_seq:
                        continue
                    try:
                        await handle.request("execute", sql, seq=seq)
                    except (ShardError, asyncio.TimeoutError):
                        raise  # the fresh incarnation itself died
                    except Exception:
                        # A deterministically-rejected mutation: the
                        # fleet applied nothing for this seq and neither
                        # does the replica — the watermark still
                        # advanced, so keep replaying.
                        pass
                if warm["translate"] or warm["execute"]:
                    await handle.request(PRECOMPILE, warm)
                handle.ready.set()
                # A fresh, converged incarnation deserves a fresh breaker:
                # the failures that tripped it died with the old process.
                self._breakers[handle.index].reset()
        except asyncio.CancelledError:
            raise
        except BaseException:
            # The respawn itself failed (possibly a crash loop); the
            # crash callback of the failed incarnation tries again until
            # max_respawns is exhausted.
            return

    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("the shard router has been closed")


def _factory_path(factory: Union[str, Callable]) -> str:
    """``"module:qualname"`` for a module-level callable (validated)."""
    if isinstance(factory, str):
        path = factory
    else:
        path = f"{factory.__module__}:{factory.__qualname__}"
    from repro.service.sharding.worker import resolve_factory

    resolved = resolve_factory(path)  # raises early, in the parent
    if not isinstance(factory, str) and resolved is not factory:
        raise ValueError(
            f"{factory!r} is not importable as {path!r}; worker factories"
            " must be module-level callables"
        )
    return path


def _aggregate_fleet(snapshots: List[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Sum the load-bearing counters across worker snapshots."""
    by_kind: Dict[str, int] = {}
    fast_path_hits = 0
    plan_hits = plan_misses = 0
    shape_hits = shape_misses = shape_fallbacks = 0
    live = 0
    for snapshot in snapshots:
        if snapshot is None or snapshot.get("session") is None:
            continue
        live += 1
        session = snapshot["session"]
        for kind, count in session["requests"]["by_kind"].items():
            by_kind[kind] = by_kind.get(kind, 0) + count
        fast_path_hits += session["requests"]["fast_path_hits"]
        plan_store = session["translator"]["plan_store"]
        if plan_store:
            plan_hits += plan_store["hits"]
            plan_misses += plan_store["misses"]
        executor = session.get("executor")
        if executor:
            shape = executor["shape_plans"]
            shape_hits += shape["hits"]
            shape_misses += shape["misses"]
            shape_fallbacks += shape["fallbacks"]
    return {
        "live_workers": live,
        "requests_by_kind": by_kind,
        "fast_path_hits": fast_path_hits,
        "phrase_plans": {"hits": plan_hits, "misses": plan_misses},
        "shape_plans": {
            "hits": shape_hits,
            "misses": shape_misses,
            "fallbacks": shape_fallbacks,
        },
    }
