"""Worker supervision: spawn, monitor, and respawn shard worker processes.

A :class:`WorkerHandle` owns everything the router knows about one worker:
the OS process, the router-side socket end, the reader task demultiplexing
responses to per-request futures, the mutation watermark
(``applied_seq``), and the respawn counter.  The handle exposes exactly
three behaviours to the router:

* :meth:`request` — send a frame, await its response future (in-flight
  pipelining falls out naturally: many requests can be awaiting at once);
* :meth:`wait_applied` — block until this worker has acked mutation
  ``seq`` (the router's read-after-write ordering rule);
* crash handling — when the reader sees the socket die unexpectedly,
  every pending future fails with :class:`WorkerCrashed` (a typed error,
  so callers can distinguish "replica died mid-request" from a real
  pipeline error) and the router's ``on_crash`` callback decides whether
  to respawn.

Respawn itself is deliberately *not* automatic at this layer: the router
owns the mutation log and the warm-start capture, so it drives the
sequence (fresh process → replay mutations → precompile captured shapes →
reopen for traffic) through :meth:`spawn` and ordinary requests.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
from typing import Any, Dict, Optional, Tuple

from repro.service.sharding.protocol import (
    ERR,
    READY_ID,
    FrameReader,
    RemoteWorkerError,
    send_frame,
)
from repro.service.sharding.worker import worker_main

__all__ = ["ShardError", "WorkerCrashed", "WorkerHandle", "default_start_method"]


class ShardError(RuntimeError):
    """Base class for shard-tier infrastructure errors."""


class WorkerCrashed(ShardError):
    """The worker serving this request died before responding.

    The request may or may not have been applied on that replica (for
    reads that is irrelevant; mutations are broadcast and re-played on
    respawn from the router's log, so the fleet converges either way).
    Callers should retry once the router has respawned the worker — the
    router's public methods do not retry implicitly, because a timeout
    policy belongs to the application.
    """


def default_start_method() -> str:
    """``fork`` where available (fast, inherits the socket fd), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerHandle:
    """One supervised worker process and its router-side connection state."""

    def __init__(self, index: int, spec: Dict[str, Any], start_method: str) -> None:
        self.index = index
        self.spec = spec
        self.start_method = start_method
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.pid: Optional[int] = None
        self.applied_seq = 0
        #: WAL seq the incarnation's snapshot restore covers (0 = built
        #: fresh from the factory); the router skips replaying log
        #: entries at or below it and fast-forwards the watermark.
        self.restored_seq = 0
        self.respawns = 0
        self.gave_up = False
        self.ready = asyncio.Event()
        self._sock: Optional[socket.socket] = None
        self._reader_task: Optional["asyncio.Task"] = None
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._next_id = 0
        self._send_lock = asyncio.Lock()
        self._applied_cond = asyncio.Condition()
        self._closing = False
        self._on_crash = None  # set by the router before the first spawn

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def spawn(self, open_for_traffic: bool = True) -> None:
        """Start (or restart) the worker process and await its ready frame.

        A respawn passes ``open_for_traffic=False``: the fresh replica has
        applied *nothing* yet, so the router keeps ``ready`` cleared (and
        the watermark at zero) until the mutation log is replayed and the
        warm-start precompile has run, then opens the gate itself.

        Raises :class:`ShardError` when the worker reports a build failure
        (e.g. an unresolvable factory path) instead of coming up.
        """
        loop = asyncio.get_running_loop()
        context = multiprocessing.get_context(self.start_method)
        if self._sock is not None:  # a previous incarnation's leftover fd
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        parent_sock, child_sock = socket.socketpair()
        # Under fork the child inherits every open fd — including this
        # very socketpair's *parent* side.  Left open there, a worker
        # orphaned by router death never sees EOF on its own socket (it
        # holds the peer itself) and lives forever; ship the fd number so
        # the child closes it first thing.  Spawn inherits nothing.
        parent_fd = parent_sock.fileno() if self.start_method == "fork" else None
        process = context.Process(
            target=worker_main,
            args=(self.spec, child_sock, self.index, parent_fd),
            name=f"repro-shard-{self.index}",
            daemon=True,
        )
        process.start()
        # The child owns its end now; keeping it open here would mask the
        # EOF that signals worker death.
        child_sock.close()
        parent_sock.setblocking(False)
        self.process = process
        self.pid = process.pid
        self.applied_seq = 0  # a fresh incarnation has applied nothing
        self._sock = parent_sock
        self._next_id = READY_ID  # id 0 is reserved for the ready frame
        ready_future: "asyncio.Future" = loop.create_future()
        self._pending[READY_ID] = ready_future
        self._reader_task = loop.create_task(self._read_responses())
        hello = await ready_future
        self._next_id = READY_ID + 1
        if not isinstance(hello, dict) or "pid" not in hello:
            raise ShardError(f"worker {self.index} sent a malformed ready frame")
        self.restored_seq = hello.get("restored_seq", 0)
        if open_for_traffic:
            self.ready.set()

    async def stop(self, timeout: float = 5.0) -> None:
        """Tear the worker down: cancel the reader, close, join/terminate."""
        self._closing = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._sock = None
        process = self.process
        if process is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, process.join, timeout
            )
            if process.exitcode is None:
                process.terminate()
                await asyncio.get_running_loop().run_in_executor(
                    None, process.join, timeout
                )
        self._fail_pending(ShardError("the shard router has been closed"))

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    async def request(
        self,
        kind: str,
        payload: Any,
        seq: Optional[int] = None,
        budget: Optional[float] = None,
    ) -> Any:
        """Send one request frame and await its response.

        Frames from concurrent callers interleave freely (the send lock
        inside :func:`send_frame` keeps each frame atomic); responses are
        matched back by request id, so out-of-order completion on the
        worker is fine.  ``budget`` ships the deadline's *remaining*
        seconds to the worker (never with ``seq`` — barrier frames must
        not be sheddable, see the protocol docs).
        """
        if self._sock is None or self._closing:
            raise WorkerCrashed(f"worker {self.index} is not connected")
        loop = asyncio.get_running_loop()
        self._next_id += 1
        request_id = self._next_id
        future: "asyncio.Future" = loop.create_future()
        self._pending[request_id] = future
        frame = (request_id, kind, payload, seq, None if seq is not None else budget)
        try:
            await send_frame(loop, self._sock, frame, self._send_lock)
        except (ConnectionError, OSError) as error:
            self._pending.pop(request_id, None)
            raise WorkerCrashed(
                f"worker {self.index} connection failed mid-send"
            ) from error
        try:
            result = await future
        except WorkerCrashed:
            # The worker died before acking; whether the mutation landed
            # is unknowable here.  The respawn replay re-delivers this
            # seq from the log and advances the watermark then.
            raise
        except BaseException:
            # The worker *did* process the barrier frame and responded
            # ERR (pipeline rejections are deterministic and apply
            # nothing).  The watermark must still advance — otherwise no
            # worker ever acks this seq and every later read blocks
            # forever in wait_applied.
            if seq is not None:
                await self.mark_applied(seq)
            raise
        if seq is not None:
            await self.mark_applied(seq)
        return result

    async def mark_applied(self, seq: int) -> None:
        """Advance the mutation watermark and wake ordering waiters."""
        async with self._applied_cond:
            if seq > self.applied_seq:
                self.applied_seq = seq
            self._applied_cond.notify_all()

    async def wait_applied(self, seq: int) -> None:
        """Block until this worker has acked mutation ``seq``.

        This is the read-after-write barrier: a read routed after a write
        is not even *sent* until the target worker acknowledged that
        write, so no replica can serve the read from a pre-write state.
        Raises :class:`ShardError` instead of waiting forever when the
        worker's respawn budget has been exhausted (:meth:`give_up`).
        """
        if self.applied_seq >= seq:
            return
        async with self._applied_cond:
            while self.applied_seq < seq:
                if self.gave_up:
                    raise ShardError(
                        f"worker {self.index} is permanently down"
                        " (respawn budget exhausted)"
                    )
                await self._applied_cond.wait()

    async def give_up(self) -> None:
        """Mark this worker permanently dead and wake ordering waiters.

        Called by the router when ``max_respawns`` is exhausted; from
        then on requests fail fast and typed instead of stalling on the
        ready gate or the watermark.
        """
        async with self._applied_cond:
            self.gave_up = True
            self._applied_cond.notify_all()

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    async def _read_responses(self) -> None:
        assert self._sock is not None
        reader = FrameReader(asyncio.get_running_loop(), self._sock)
        desynced = False
        try:
            while True:
                message = await reader.read()
                if message is None:
                    break
                request_id, status, payload = message
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue  # cancelled by the caller, or a duplicate
                if status == ERR:
                    error = payload
                    if not isinstance(error, BaseException):  # pragma: no cover
                        error = RemoteWorkerError(repr(payload))
                    future.set_exception(error)
                else:
                    future.set_result(payload)
        except asyncio.CancelledError:
            raise
        except BaseException:
            # A frame that fails to decode (malformed length, an unknown
            # codec, an exception payload whose class does not unpickle
            # router-side, ...) leaves the stream unusable.  Dying
            # silently here would hang every pending future and skip the
            # respawn, so treat it exactly like worker death.
            desynced = True
        if not self._closing:
            self.ready.clear()
            if desynced:
                # The process may well still be alive; drop the broken
                # connection and the process with it so supervision
                # rebuilds a clean incarnation.
                sock, self._sock = self._sock, None
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover - best-effort
                        pass
                self.kill()
            self._fail_pending(
                WorkerCrashed(f"worker {self.index} (pid {self.pid}) died")
            )
            if self._on_crash is not None:
                self._on_crash(self)

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    # ------------------------------------------------------------------

    def set_crash_callback(self, callback) -> None:
        """``callback(handle)`` runs on the event loop when the worker dies."""
        self._on_crash = callback

    def kill(self) -> None:
        """SIGKILL the worker process (crash drills and tests)."""
        process = self.process
        if process is not None and process.exitcode is None:
            process.kill()

    @property
    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.exitcode is None
            and self._sock is not None
        )

    @property
    def health(self) -> str:
        """This worker's health state: ``live``/``respawning``/``dead``.

        The router surfaces it per worker in ``stats()``; the state
        machine is documented in ``docs/architecture.md`` ("Failure
        modes and resilience").
        """
        if self.gave_up:
            return "dead"
        if not self.ready.is_set():
            return "respawning"
        return "live"
