"""Resilience policies: deadlines, retries, circuit breaking, load shedding.

PR 4–6 made the service tier crash-*correct* — a dead worker fails its
in-flight requests with a typed error, respawn replays the mutation log,
results stay byte-identical to the single-process oracle.  This module
makes it crash-*graceful*: the policy objects that decide what a caller
experiences while the machinery underneath is failing.

The pieces compose but do not know about each other (and none of them
knows about the shard tier — the import direction is strictly
``sharding → service → resilience``):

:class:`Deadline`
    A monotonic-clock budget created once at the request edge and carried
    with the request through every layer — the admission check, the
    service queue, the drain task, the worker round-trip.  Layers consume
    ``remaining()``; nobody re-derives a timeout from a magic constant.

:class:`RetryPolicy`
    Exponential backoff with *seeded* jitter: given the same seed and
    salt, the delay schedule is identical in every process and every run,
    so a chaos test that replays a fault schedule replays the retry
    timing with it.  The policy only computes; the caller owns the loop
    (and the rule that **mutations are never auto-retried**).

:class:`CircuitBreaker`
    The classic closed → open → half-open machine, one per worker.  It
    counts only *infrastructure* failures (crashes, timeouts) — a SQL
    error is a healthy worker doing its job — and while open it lets the
    router degrade reads to the next live replica instead of queueing
    onto a corpse.

:class:`AdmissionController`
    Queue-depth and deadline-based shedding at the submission edge.  An
    overloaded service answers a typed :class:`ServiceOverloaded`
    *immediately* instead of a timeout after the damage is done; a
    request whose deadline already expired is shed for free before it
    occupies a queue slot.

Every policy default is chosen so that a healthy system behaves exactly
as it did before this module existed (no deadline → unbounded, breaker
closed, shedding off); the ``resilience`` benchmark section holds the
fast path to < 5% overhead at defaults.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.sql.shape import stable_hash

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "ServiceOverloaded",
]


class DeadlineExceeded(TimeoutError):
    """The request's deadline expired before a result was produced.

    Subclasses :class:`TimeoutError`, so callers that already handle
    timeouts keep working — but the message says *whose* budget ran out
    and where, which a bare ``TimeoutError`` never does.
    """


class ServiceOverloaded(RuntimeError):
    """The service shed this request at admission instead of queueing it.

    Raised by :class:`AdmissionController` when the session queue is at
    its shed threshold.  Typed so load-balancing callers can distinguish
    "back off and retry elsewhere" from a real failure — and so overload
    shows up as an immediate, explicit answer rather than a timeout.
    """


class CircuitOpen(RuntimeError):
    """Every candidate worker's circuit breaker is open (no probe due)."""


class Deadline:
    """A point on the monotonic clock by which a request must complete.

    ``Deadline.after(None)`` (or :data:`Deadline.NONE`) is the unbounded
    deadline: ``expired`` is always ``False`` and ``remaining()`` is
    ``None`` — which is exactly what ``asyncio.wait_for`` takes for
    "no timeout", so unbounded threads through untouched.
    """

    __slots__ = ("at", "_clock")

    NONE: "Deadline"  # assigned below

    def __init__(self, at: Optional[float], clock: Callable[[], float] = time.monotonic) -> None:
        self.at = at
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: Optional[float], clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """The deadline ``seconds`` from now (``None`` → unbounded)."""
        if seconds is None:
            return cls.NONE
        return cls(clock() + seconds, clock)

    @property
    def expired(self) -> bool:
        return self.at is not None and self._clock() >= self.at

    def remaining(self) -> Optional[float]:
        """Seconds left (never negative), or ``None`` when unbounded."""
        if self.at is None:
            return None
        return max(0.0, self.at - self._clock())

    def bound(self, seconds: Optional[float]) -> Optional[float]:
        """``min(remaining, seconds)`` — one attempt's slice of the budget."""
        remaining = self.remaining()
        if remaining is None:
            return seconds
        if seconds is None:
            return remaining
        return min(remaining, seconds)

    def require(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            raise DeadlineExceeded(f"deadline expired before {what}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.at is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


Deadline.NONE = Deadline(None)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``attempts`` is the *total* number of tries (1 = no retries).  The
    delay before retry ``n`` (n ≥ 1) is
    ``min(max_delay, base_delay * multiplier**(n-1))`` stretched by a
    jitter factor drawn from ``[1 - jitter, 1 + jitter]`` — but drawn
    from a :func:`~repro.sql.shape.stable_hash` of ``(seed, salt, n)``,
    not a shared RNG stream, so the schedule for a given request salt is
    a pure function: identical across processes, runs and interleavings.

    The policy is advice, not a loop: callers decide *what* is retryable.
    The service tier's rule is fixed — idempotent reads retry, mutations
    never do (a crashed worker may or may not have applied the write;
    replaying it is how data diverges).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int, salt: str = "") -> float:
        """Seconds to sleep before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if not self.jitter or not raw:
            return raw
        roll = random.Random(stable_hash(f"{self.seed}:{salt}:{attempt}")).random()
        return raw * (1.0 + self.jitter * (2.0 * roll - 1.0))

    def should_retry(self, attempt: int, deadline: Deadline) -> bool:
        """Whether a failed ``attempt`` (1-based) warrants another try."""
        return attempt < self.attempts and not deadline.expired


#: Breaker states (strings, so they read well in stats snapshots).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A closed / open / half-open breaker guarding one worker.

    * **closed** — traffic flows; ``failure_threshold`` *consecutive*
      infrastructure failures trip it open.
    * **open** — :meth:`allow` answers ``False`` (the router degrades
      reads elsewhere) until ``reset_timeout`` has elapsed.
    * **half-open** — up to ``probes`` requests are let through; one
      success closes the breaker, one failure re-opens it and restarts
      the timer.

    Single-threaded by design: the router only touches breakers from the
    event loop.  ``clock`` is injectable so tests can step time instead
    of sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.probes = probes
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._inflight_probes = 0
        self.trips = 0

    @property
    def state(self) -> str:
        """The current state, advancing open → half-open when the timer lapses."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._inflight_probes = 0
        return self._state

    def allow(self) -> bool:
        """Whether one more request may be sent through this breaker."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and self._inflight_probes < self.probes:
            self._inflight_probes += 1
            return True
        return False

    def record_success(self) -> None:
        """A request completed (or failed for *application* reasons)."""
        if self._state == HALF_OPEN:
            self._state = CLOSED
        self._consecutive_failures = 0
        self._inflight_probes = 0

    def record_failure(self) -> None:
        """An *infrastructure* failure (crash, timeout) on this worker."""
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def force_open(self) -> None:
        """Trip immediately (the router saw the worker die out-of-band)."""
        if self._state != OPEN:
            self._trip()

    def reset(self) -> None:
        """Back to pristine closed (a fresh worker incarnation came up)."""
        self._state = CLOSED
        self._consecutive_failures = 0
        self._inflight_probes = 0

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._inflight_probes = 0
        self.trips += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "trips": self.trips,
            "consecutive_failures": self._consecutive_failures,
        }


class AdmissionController:
    """Shed work at the submission edge instead of timing out later.

    Two independent rules, both off unless configured:

    * ``max_depth`` — when the session queue already holds this many
      requests, a new one is answered :class:`ServiceOverloaded` at once
      (instead of joining a queue it would only time out in).  ``None``
      preserves the pre-existing back-pressure behaviour: producers
      suspend on the bounded queue.
    * deadline shedding — a request whose :class:`Deadline` has already
      expired is answered :class:`DeadlineExceeded` without occupying a
      queue slot.  The drain task applies the same rule to requests that
      expired *while queued* (counted separately as ``shed_in_queue``).

    Counters are plain ints mutated under the session's stats lock (or
    the event loop); they feed the ``shed`` block of ``stats()``.
    """

    def __init__(self, max_depth: Optional[int] = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None to disable)")
        self.max_depth = max_depth
        self.shed_overload = 0
        self.shed_deadline = 0
        self.shed_in_queue = 0

    def admit(self, depth: int, deadline: Deadline = Deadline.NONE) -> None:
        """Raise the typed shed error, or return to admit the request."""
        if deadline.expired:
            self.shed_deadline += 1
            raise DeadlineExceeded("deadline expired before the request was queued")
        if self.max_depth is not None and depth >= self.max_depth:
            self.shed_overload += 1
            raise ServiceOverloaded(
                f"service queue is at its shed threshold ({self.max_depth});"
                " back off and retry"
            )

    def shed_expired_in_queue(self) -> DeadlineExceeded:
        """Count and build the error for a request that expired while queued."""
        self.shed_in_queue += 1
        return DeadlineExceeded("deadline expired while the request was queued")

    def stats(self) -> Dict[str, int]:
        return {
            "overload": self.shed_overload,
            "deadline": self.shed_deadline,
            "in_queue": self.shed_in_queue,
        }
