"""Concurrent narration service (asyncio front end over the compiled pipeline).

See :mod:`repro.service.service` for the architecture and the
thread-safety contract, and ``docs/performance.md`` ("Concurrent
service") for the design discussion.
"""

from repro.service.service import NarrationService, NarrationSession, ServiceClosed
from repro.service.sharding import (
    HashRing,
    ShardError,
    ShardRouter,
    WorkerCrashed,
)

__all__ = [
    "HashRing",
    "NarrationService",
    "NarrationSession",
    "ServiceClosed",
    "ShardError",
    "ShardRouter",
    "WorkerCrashed",
]
