"""Concurrent narration service (asyncio front end over the compiled pipeline).

See :mod:`repro.service.service` for the architecture and the
thread-safety contract, and ``docs/performance.md`` ("Concurrent
service") for the design discussion.
"""

from repro.service.faults import FaultInjector, FaultPlan, parse_faults
from repro.service.resilience import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    ServiceOverloaded,
)
from repro.service.service import NarrationService, NarrationSession, ServiceClosed
from repro.service.sharding import (
    HashRing,
    ShardError,
    ShardRouter,
    ShardRouterConfig,
    WorkerCrashed,
)
from repro.storage.durability import DurabilityConfig, DurabilityManager

__all__ = [
    "AdmissionController",
    "DurabilityConfig",
    "DurabilityManager",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultPlan",
    "HashRing",
    "NarrationService",
    "NarrationSession",
    "RetryPolicy",
    "ServiceClosed",
    "ServiceOverloaded",
    "ShardError",
    "ShardRouter",
    "ShardRouterConfig",
    "WorkerCrashed",
    "parse_faults",
]
