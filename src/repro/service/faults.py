"""Deterministic fault injection for the service and shard tier.

Chaos testing is only useful when a failing run can be *replayed*: the
whole point of the shard tier's oracle discipline is byte-equivalence
under any request history, and a fault schedule that depends on wall
clock or OS scheduling can never be reproduced in CI.  Following the
simulation-first argument of the related work (PAPERS.md), every fault
this module injects is a **pure function of (seed, scope, event kind,
event index)** — no shared RNG stream whose draw order would depend on
async interleaving, no clocks.  Same seed → same schedule, in every
process, every run, every platform (the derivation goes through
:func:`repro.sql.shape.stable_hash`, the same process-stable digest the
hash ring uses).

Enabling
--------

Set ``REPRO_FAULTS`` to a comma-separated spec, e.g.::

    REPRO_FAULTS="seed=42,crash_nth=25,corrupt=0.02,drop=0.01,stall=0.2,stall_s=0.05"

========== =========================================================
key        meaning (defaults in parentheses)
========== =========================================================
seed       schedule seed (0)
crash_nth  the worker process dies at exactly its Nth ordinary
           request, once per incarnation (off)
crash_every the worker dies at every Nth ordinary request (off)
drop       probability a response frame is silently dropped (0)
corrupt    probability a response frame is sent undecodable (0)
delay      probability a response frame is delayed (0)
delay_s    the delay applied when it is (0.05)
stall      probability a request stalls before running (0) — the
           slow-replica fault
stall_s    the stall applied when it is (0.1)
========== =========================================================

Faults apply only to *ordinary* requests (translate / execute-read /
explain / narrate): mutation barrier frames, control frames
(stats/precompile/ping/shutdown) and the ready hello are exempt, so a
fault schedule can never make replicas diverge (a worker that crashes
*around* a mutation is converged by the router's log replay — that path
is chaos-tested too, via ``crash_nth`` landing between mutations) and a
respawned worker can always be rebuilt.

Where the hooks live
--------------------

* :meth:`FaultInjector.crash_due` — checked in the worker's read loop;
  a due crash is ``os._exit`` (indistinguishable from SIGKILL).
* :meth:`FaultInjector.stall_for` — awaited by the worker before
  running the request (the slow replica).
* :meth:`FaultInjector.response_fate` — consulted by the worker before
  sending an ordinary response frame: ``deliver``/``delay`` /``drop``
  (the router's per-attempt timeout fires and the read retries) /
  ``corrupt`` (the router's frame reader desyncs and treats the worker
  as dead — exercising the crash path without a crash).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.sql.shape import stable_hash

__all__ = ["FaultInjector", "FaultPlan", "corrupt_frame", "parse_faults"]

#: The environment variable that arms fault injection.
ENV_VAR = "REPRO_FAULTS"

DELIVER = "deliver"
DELAY = "delay"
DROP = "drop"
CORRUPT = "corrupt"

_FLOAT_KEYS = {"drop", "corrupt", "delay", "delay_s", "stall", "stall_s"}
_INT_KEYS = {"seed", "crash_nth", "crash_every"}


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec (all faults off by default)."""

    seed: int = 0
    crash_nth: Optional[int] = None
    crash_every: Optional[int] = None
    drop: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.05
    stall: float = 0.0
    stall_s: float = 0.1

    @property
    def active(self) -> bool:
        return bool(
            self.crash_nth
            or self.crash_every
            or self.drop
            or self.corrupt
            or self.delay
            or self.stall
        )


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    values: Dict[str, Any] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"fault spec item {item!r} is not key=value")
        if key in _INT_KEYS:
            values[key] = int(raw)
        elif key in _FLOAT_KEYS:
            value = float(raw)
            if key in ("drop", "corrupt", "delay", "stall") and not 0.0 <= value <= 1.0:
                raise ValueError(f"fault rate {key} must be within [0, 1]")
            values[key] = value
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    return FaultPlan(**values)


def corrupt_frame(frame: bytes) -> bytes:
    """An undecodable variant of a wire frame (same length, bad codec).

    The length prefix is left intact so the receiving
    :class:`~repro.service.sharding.protocol.FrameReader` consumes the
    whole frame and fails in ``_decode`` — the stream is then desynced
    in a *detected* way, driving the supervisor's worker-death path.
    """
    return bytes([0xFF]) + frame[1:]


class FaultInjector:
    """Deterministic fault decisions for one scope (one worker process).

    Every decision is derived from
    ``stable_hash(f"{seed}:{scope}:{event}:{index}")`` — never from a
    stream — so concurrent events cannot perturb each other's outcomes
    and the full schedule can be precomputed (:meth:`schedule`) and
    asserted identical across processes.
    """

    def __init__(self, plan: FaultPlan, scope: str) -> None:
        self.plan = plan
        self.scope = scope

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_env(cls, scope: str, environ=os.environ) -> Optional["FaultInjector"]:
        """The injector armed by ``REPRO_FAULTS``, or ``None`` when quiet."""
        spec = environ.get(ENV_VAR, "").strip()
        if not spec:
            return None
        plan = parse_faults(spec)
        return cls(plan, scope) if plan.active else None

    # ------------------------------------------------------------------
    # Decisions (pure functions of (seed, scope, event, index))
    # ------------------------------------------------------------------

    def _roll(self, event: str, index: int) -> float:
        key = f"{self.plan.seed}:{self.scope}:{event}:{index}"
        return Random(stable_hash(key)).random()

    def crash_due(self, index: int) -> bool:
        """Whether this incarnation dies at ordinary request ``index``."""
        if self.plan.crash_nth is not None and index == self.plan.crash_nth:
            return True
        every = self.plan.crash_every
        return bool(every) and index % every == 0

    def crash(self) -> None:  # pragma: no cover - the exit kills coverage
        """Die like SIGKILL would: no cleanup, no exception, exit 139."""
        os._exit(139)

    def stall_for(self, index: int) -> float:
        """Seconds this request stalls before running (0.0 = no stall)."""
        if self.plan.stall and self._roll("stall", index) < self.plan.stall:
            return self.plan.stall_s
        return 0.0

    def response_fate(self, index: int) -> Tuple[str, float]:
        """``(fate, delay_seconds)`` for ordinary response frame ``index``."""
        plan = self.plan
        if not (plan.drop or plan.corrupt or plan.delay):
            return (DELIVER, 0.0)
        roll = self._roll("frame", index)
        if roll < plan.drop:
            return (DROP, 0.0)
        if roll < plan.drop + plan.corrupt:
            return (CORRUPT, 0.0)
        if roll < plan.drop + plan.corrupt + plan.delay:
            return (DELAY, plan.delay_s)
        return (DELIVER, 0.0)

    # ------------------------------------------------------------------
    # Introspection (tests assert cross-process schedule identity)
    # ------------------------------------------------------------------

    def schedule(self, count: int) -> List[Dict[str, Any]]:
        """The first ``count`` ordinary-request decisions, precomputed."""
        return [
            {
                "index": index,
                "crash": self.crash_due(index),
                "stall": self.stall_for(index),
                "fate": self.response_fate(index),
            }
            for index in range(1, count + 1)
        ]
