"""Deterministic fault injection for the service and shard tier.

Chaos testing is only useful when a failing run can be *replayed*: the
whole point of the shard tier's oracle discipline is byte-equivalence
under any request history, and a fault schedule that depends on wall
clock or OS scheduling can never be reproduced in CI.  Following the
simulation-first argument of the related work (PAPERS.md), every fault
this module injects is a **pure function of (seed, scope, event kind,
event index)** — no shared RNG stream whose draw order would depend on
async interleaving, no clocks.  Same seed → same schedule, in every
process, every run, every platform (the derivation goes through
:func:`repro.sql.shape.stable_hash`, the same process-stable digest the
hash ring uses).

Enabling
--------

Set ``REPRO_FAULTS`` to a comma-separated spec, e.g.::

    REPRO_FAULTS="seed=42,crash_nth=25,corrupt=0.02,drop=0.01,stall=0.2,stall_s=0.05"

========== =========================================================
key        meaning (defaults in parentheses)
========== =========================================================
seed       schedule seed (0)
crash_nth  the worker process dies at exactly its Nth ordinary
           request, once per incarnation (off)
crash_every the worker dies at every Nth ordinary request (off)
drop       probability a response frame is silently dropped (0)
corrupt    probability a response frame is sent undecodable (0)
delay      probability a response frame is delayed (0)
delay_s    the delay applied when it is (0.05)
stall      probability a request stalls before running (0) — the
           slow-replica fault
stall_s    the stall applied when it is (0.1)
wal_crash_nth the process dies right after its Nth WAL append — the
           crash-between-append-and-ack window (off)
fsync_stall probability a WAL fsync stalls before running (0)
fsync_stall_s the stall applied when it does (0.02)
========== =========================================================

Faults apply only to *ordinary* requests (translate / execute-read /
explain / narrate): mutation barrier frames, control frames
(stats/precompile/ping/shutdown) and the ready hello are exempt, so a
fault schedule can never make replicas diverge (a worker that crashes
*around* a mutation is converged by the router's log replay — that path
is chaos-tested too, via ``crash_nth`` landing between mutations) and a
respawned worker can always be rebuilt.

Where the hooks live
--------------------

* :meth:`FaultInjector.crash_due` — checked in the worker's read loop;
  a due crash is ``os._exit`` (indistinguishable from SIGKILL).
* :meth:`FaultInjector.stall_for` — awaited by the worker before
  running the request (the slow replica).
* :meth:`FaultInjector.response_fate` — consulted by the worker before
  sending an ordinary response frame: ``deliver``/``delay`` /``drop``
  (the router's per-attempt timeout fires and the read retries) /
  ``corrupt`` (the router's frame reader desyncs and treats the worker
  as dead — exercising the crash path without a crash).
* :meth:`FaultInjector.wal_crash_due` / :meth:`FaultInjector.fsync_stall_for`
  — duck-typed by :class:`~repro.storage.wal.WriteAheadLog` (pass the
  injector via :class:`~repro.storage.durability.DurabilityConfig`): a
  due WAL crash is ``os._exit`` right after the append, before any ack;
  a due fsync stall sleeps before syncing.
* :func:`tear_wal_tail` / :func:`corrupt_wal_record` — *offline* file
  mutilators for recovery drills: deterministically truncate a log
  mid-final-record (the torn write) or flip a byte inside record ``k``
  (mid-log corruption, which recovery must refuse typed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.sql.shape import stable_hash

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "corrupt_frame",
    "corrupt_wal_record",
    "parse_faults",
    "tear_wal_tail",
]

#: The environment variable that arms fault injection.
ENV_VAR = "REPRO_FAULTS"

DELIVER = "deliver"
DELAY = "delay"
DROP = "drop"
CORRUPT = "corrupt"

_FLOAT_KEYS = {
    "drop",
    "corrupt",
    "delay",
    "delay_s",
    "stall",
    "stall_s",
    "fsync_stall",
    "fsync_stall_s",
}
_INT_KEYS = {"seed", "crash_nth", "crash_every", "wal_crash_nth"}


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec (all faults off by default).

    The disk fates (``wal_crash_nth``, ``fsync_stall``/``fsync_stall_s``)
    drive the durability drills: the first kills the process between a
    WAL append and its acknowledgement (the canonical torn-tail /
    lost-ack window), the second makes chosen fsyncs take visibly long
    (the storage stall).  Both are decided by the same pure
    (seed, scope, event, index) derivation as every other fault, so a
    recovery drill replays identically from its seed.
    """

    seed: int = 0
    crash_nth: Optional[int] = None
    crash_every: Optional[int] = None
    drop: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.05
    stall: float = 0.0
    stall_s: float = 0.1
    wal_crash_nth: Optional[int] = None
    fsync_stall: float = 0.0
    fsync_stall_s: float = 0.02

    @property
    def active(self) -> bool:
        return bool(
            self.crash_nth
            or self.crash_every
            or self.drop
            or self.corrupt
            or self.delay
            or self.stall
            or self.wal_crash_nth
            or self.fsync_stall
        )


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    values: Dict[str, Any] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"fault spec item {item!r} is not key=value")
        if key in _INT_KEYS:
            values[key] = int(raw)
        elif key in _FLOAT_KEYS:
            value = float(raw)
            if key in ("drop", "corrupt", "delay", "stall") and not 0.0 <= value <= 1.0:
                raise ValueError(f"fault rate {key} must be within [0, 1]")
            values[key] = value
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    return FaultPlan(**values)


def corrupt_frame(frame: bytes) -> bytes:
    """An undecodable variant of a wire frame (same length, bad codec).

    The length prefix is left intact so the receiving
    :class:`~repro.service.sharding.protocol.FrameReader` consumes the
    whole frame and fails in ``_decode`` — the stream is then desynced
    in a *detected* way, driving the supervisor's worker-death path.
    """
    return bytes([0xFF]) + frame[1:]


class FaultInjector:
    """Deterministic fault decisions for one scope (one worker process).

    Every decision is derived from
    ``stable_hash(f"{seed}:{scope}:{event}:{index}")`` — never from a
    stream — so concurrent events cannot perturb each other's outcomes
    and the full schedule can be precomputed (:meth:`schedule`) and
    asserted identical across processes.
    """

    def __init__(self, plan: FaultPlan, scope: str) -> None:
        self.plan = plan
        self.scope = scope

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_env(cls, scope: str, environ=os.environ) -> Optional["FaultInjector"]:
        """The injector armed by ``REPRO_FAULTS``, or ``None`` when quiet."""
        spec = environ.get(ENV_VAR, "").strip()
        if not spec:
            return None
        plan = parse_faults(spec)
        return cls(plan, scope) if plan.active else None

    # ------------------------------------------------------------------
    # Decisions (pure functions of (seed, scope, event, index))
    # ------------------------------------------------------------------

    def _roll(self, event: str, index: int) -> float:
        key = f"{self.plan.seed}:{self.scope}:{event}:{index}"
        return Random(stable_hash(key)).random()

    def crash_due(self, index: int) -> bool:
        """Whether this incarnation dies at ordinary request ``index``."""
        if self.plan.crash_nth is not None and index == self.plan.crash_nth:
            return True
        every = self.plan.crash_every
        return bool(every) and index % every == 0

    def crash(self) -> None:  # pragma: no cover - the exit kills coverage
        """Die like SIGKILL would: no cleanup, no exception, exit 139."""
        os._exit(139)

    def stall_for(self, index: int) -> float:
        """Seconds this request stalls before running (0.0 = no stall)."""
        if self.plan.stall and self._roll("stall", index) < self.plan.stall:
            return self.plan.stall_s
        return 0.0

    def response_fate(self, index: int) -> Tuple[str, float]:
        """``(fate, delay_seconds)`` for ordinary response frame ``index``."""
        plan = self.plan
        if not (plan.drop or plan.corrupt or plan.delay):
            return (DELIVER, 0.0)
        roll = self._roll("frame", index)
        if roll < plan.drop:
            return (DROP, 0.0)
        if roll < plan.drop + plan.corrupt:
            return (CORRUPT, 0.0)
        if roll < plan.drop + plan.corrupt + plan.delay:
            return (DELAY, plan.delay_s)
        return (DELIVER, 0.0)

    # ------------------------------------------------------------------
    # Disk fates (consulted by repro.storage.wal via duck typing)
    # ------------------------------------------------------------------

    def wal_crash_due(self, index: int) -> bool:
        """Whether the process dies right after WAL append ``index``.

        The crash lands *between* the append (already flushed to the OS)
        and the caller's acknowledgement — the canonical lost-ack window:
        the write is on disk but no client was ever told, and recovery
        must surface it anyway.
        """
        nth = self.plan.wal_crash_nth
        return nth is not None and index == nth

    def fsync_stall_for(self, index: int) -> float:
        """Seconds fsync number ``index`` stalls before running (0 = none)."""
        plan = self.plan
        if plan.fsync_stall and self._roll("fsync", index) < plan.fsync_stall:
            return plan.fsync_stall_s
        return 0.0

    def torn_tail_keep(self, size: int) -> int:
        """How many bytes of a ``size``-byte final record a torn write kept.

        Used by :func:`tear_wal_tail` to truncate a log mid-record the
        way a crash mid-``write`` would; the cut point is a pure function
        of (seed, scope), so the same drill tears the same byte.
        """
        if size <= 1:
            return 0
        return stable_hash(f"{self.plan.seed}:{self.scope}:torn") % size

    # ------------------------------------------------------------------
    # Introspection (tests assert cross-process schedule identity)
    # ------------------------------------------------------------------

    def schedule(self, count: int) -> List[Dict[str, Any]]:
        """The first ``count`` ordinary-request decisions, precomputed."""
        return [
            {
                "index": index,
                "crash": self.crash_due(index),
                "stall": self.stall_for(index),
                "fate": self.response_fate(index),
            }
            for index in range(1, count + 1)
        ]


# ---------------------------------------------------------------------------
# Offline WAL mutilators (recovery drills operate on closed log files)
# ---------------------------------------------------------------------------


def tear_wal_tail(path, seed: int = 0, scope: str = "tear") -> int:
    """Truncate a closed WAL mid-final-record, like a crash mid-``write``.

    The cut point inside the last record is chosen by
    :meth:`FaultInjector.torn_tail_keep` — a pure function of
    ``(seed, scope)`` — so the same drill always tears the same byte.
    Returns how many bytes of the final record survive (0 means even its
    header is gone).  Raises :class:`ValueError` on an empty log: there
    is no record to tear.
    """
    from repro.storage.wal import scan_wal

    scan = scan_wal(path, strict=True)
    if not scan.records:
        raise ValueError(f"{path} holds no records to tear")
    last = scan.records[-1]
    keep = FaultInjector(FaultPlan(seed=seed), scope).torn_tail_keep(last.length)
    with open(path, "r+b") as handle:
        handle.truncate(last.offset + keep)
    return keep


def corrupt_wal_record(path, k: int) -> int:
    """Flip one payload byte of record ``k`` (0-based) in a closed WAL.

    When ``k`` is not the final record this manufactures *mid-log*
    corruption — damage followed by intact data — which recovery must
    refuse with a typed :class:`~repro.errors.WalCorruptionError` rather
    than truncate through.  On the final record it manufactures the
    garbled-in-place torn tail instead.  Returns the absolute file
    offset of the flipped byte.
    """
    from repro.storage.wal import _RECORD_HEADER, scan_wal

    scan = scan_wal(path, strict=True)
    if not 0 <= k < len(scan.records):
        raise ValueError(
            f"{path} has {len(scan.records)} records; cannot corrupt record {k}"
        )
    record = scan.records[k]
    target = record.offset + _RECORD_HEADER.size  # first payload byte
    with open(path, "r+b") as handle:
        handle.seek(target)
        original = handle.read(1)
        handle.seek(target)
        handle.write(bytes([original[0] ^ 0xFF]))
    return target
