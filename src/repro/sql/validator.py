"""Semantic validation of parsed statements against a catalog schema.

Validation resolves every table reference and column reference, checks
alias uniqueness, and reports ambiguous unqualified columns.  The
query-graph builder relies on a validated statement so it can attach each
constraint to the right relation class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.relation import Relation
from repro.catalog.schema import Schema
from repro.errors import SqlValidationError
from repro.sql import ast


@dataclass
class ResolvedColumn:
    """A column reference resolved to its binding (alias) and relation."""

    binding: str
    relation: Relation
    attribute_name: str

    @property
    def qualified(self) -> str:
        return f"{self.binding}.{self.attribute_name}"


@dataclass
class ValidationResult:
    """Outcome of validating a SELECT statement against a schema."""

    statement: ast.SelectStatement
    bindings: Dict[str, Relation] = field(default_factory=dict)
    resolved_columns: List[ResolvedColumn] = field(default_factory=list)
    subquery_results: List["ValidationResult"] = field(default_factory=list)

    def relation_for(self, binding: str) -> Relation:
        try:
            return self.bindings[binding]
        except KeyError as exc:
            raise SqlValidationError(f"unknown table binding {binding!r}") from exc


class _Scope:
    """Precomputed lookup maps for one SELECT's visible bindings.

    Column resolution used to rescan the binding dict per column
    reference; the scope builds the case-insensitive alias map and the
    unqualified-column ownership map once per SELECT instead.
    """

    __slots__ = ("visible", "lowered", "owners")

    def __init__(self, visible: Dict[str, Relation]) -> None:
        self.visible = visible
        self.lowered: Dict[str, Tuple[str, Relation]] = {}
        for binding, relation in visible.items():
            self.lowered.setdefault(binding.lower(), (binding, relation))
        owners: Dict[str, List[Tuple[str, Relation]]] = {}
        for binding, relation in visible.items():
            for attribute in relation.attribute_names:
                bucket = owners.setdefault(attribute.lower(), [])
                if not bucket or bucket[-1][0] != binding:
                    bucket.append((binding, relation))
        self.owners = owners


class Validator:
    """Validate statements against a :class:`Schema`."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    # ------------------------------------------------------------------

    def validate(self, statement: ast.Statement) -> ValidationResult:
        """Validate any supported statement, returning the resolution result."""
        if isinstance(statement, ast.SelectStatement):
            return self.validate_select(statement)
        if isinstance(statement, ast.InsertStatement):
            return self._validate_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._validate_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._validate_delete(statement)
        if isinstance(statement, ast.CreateViewStatement):
            return self.validate_select(statement.query)
        raise SqlValidationError(f"unsupported statement type {type(statement).__name__}")

    def validate_select(
        self,
        statement: ast.SelectStatement,
        outer_bindings: Optional[Dict[str, Relation]] = None,
    ) -> ValidationResult:
        """Validate a SELECT, resolving columns against FROM and outer bindings."""
        bindings = self._collect_bindings(statement)
        visible = dict(outer_bindings or {})
        visible.update(bindings)
        scope = _Scope(visible)

        result = ValidationResult(statement=statement, bindings=bindings)

        for item in statement.select_items:
            self._validate_expression(item.expression, scope, result)
        if statement.where is not None:
            self._validate_expression(statement.where, scope, result)
        for expression in statement.group_by:
            self._validate_expression(expression, scope, result)
        if statement.having is not None:
            self._validate_expression(statement.having, scope, result)
        for order in statement.order_by:
            self._validate_expression(order.expression, scope, result)
        return result

    # ------------------------------------------------------------------

    def _collect_bindings(self, statement: ast.SelectStatement) -> Dict[str, Relation]:
        bindings: Dict[str, Relation] = {}
        seen: set = set()
        for table in statement.from_tables:
            if not self.schema.has_relation(table.name):
                raise SqlValidationError(
                    f"unknown relation {table.name!r} in FROM clause"
                )
            relation = self.schema.relation(table.name)
            binding = table.binding
            if binding.lower() in seen:
                raise SqlValidationError(
                    f"duplicate table alias {binding!r} in FROM clause"
                )
            seen.add(binding.lower())
            bindings[binding] = relation
        return bindings

    def _validate_expression(
        self,
        expression: ast.Expression,
        scope: "_Scope",
        result: ValidationResult,
    ) -> None:
        if isinstance(expression, ast.ColumnRef):
            result.resolved_columns.append(self._resolve_column(expression, scope))
            return
        if isinstance(expression, (ast.InSubquery, ast.Exists, ast.QuantifiedComparison, ast.ScalarSubquery)):
            if isinstance(expression, (ast.InSubquery, ast.QuantifiedComparison)):
                self._validate_expression(expression.operand, scope, result)
            sub_result = self.validate_select(expression.subquery, outer_bindings=scope.visible)
            result.subquery_results.append(sub_result)
            return
        if isinstance(expression, ast.SelectStatement):  # pragma: no cover - defensive
            result.subquery_results.append(
                self.validate_select(expression, outer_bindings=scope.visible)
            )
            return
        for child in expression.children():
            if isinstance(child, ast.Expression):
                self._validate_expression(child, scope, result)

    def _resolve_column(
        self, column: ast.ColumnRef, scope: "_Scope"
    ) -> ResolvedColumn:
        if column.table is not None:
            entry = scope.lowered.get(column.table.lower())
            if entry is None:
                raise SqlValidationError(f"unknown table alias {column.table!r}")
            binding, relation = entry
            attribute = relation._find(column.column)
            if attribute is None:
                raise SqlValidationError(
                    f"relation {relation.name!r} (alias {column.table!r}) has no"
                    f" attribute {column.column!r}"
                )
            return ResolvedColumn(
                binding=binding,
                relation=relation,
                attribute_name=attribute.name,
            )

        matches = scope.owners.get(column.column.lower(), ())
        if not matches:
            raise SqlValidationError(
                f"column {column.column!r} does not exist in any table of the query"
            )
        if len(matches) > 1:
            candidates = ", ".join(f"{b}.{column.column}" for b, _ in matches)
            raise SqlValidationError(
                f"column reference {column.column!r} is ambiguous ({candidates})"
            )
        binding, relation = matches[0]
        return ResolvedColumn(
            binding=binding,
            relation=relation,
            attribute_name=relation.attribute(column.column).name,
        )

    # ------------------------------------------------------------------
    # DML statements
    # ------------------------------------------------------------------

    def _validate_insert(self, statement: ast.InsertStatement) -> ValidationResult:
        relation = self._require_relation(statement.table)
        columns = statement.columns or relation.attribute_names
        for column in columns:
            if not relation.has_attribute(column):
                raise SqlValidationError(
                    f"relation {relation.name!r} has no attribute {column!r}"
                )
        for row in statement.rows:
            if len(row) != len(columns):
                raise SqlValidationError(
                    f"INSERT supplies {len(row)} values for {len(columns)} columns"
                )
        select = ast.SelectStatement(select_items=(ast.SelectItem(ast.Star()),))
        return ValidationResult(statement=select, bindings={relation.name: relation})

    def _validate_update(self, statement: ast.UpdateStatement) -> ValidationResult:
        relation = self._require_relation(statement.table)
        binding = statement.alias or statement.table
        for column, _ in statement.assignments:
            if not relation.has_attribute(column):
                raise SqlValidationError(
                    f"relation {relation.name!r} has no attribute {column!r}"
                )
        result = ValidationResult(
            statement=ast.SelectStatement(select_items=(ast.SelectItem(ast.Star()),)),
            bindings={binding: relation},
        )
        if statement.where is not None:
            self._validate_expression(statement.where, _Scope({binding: relation}), result)
        return result

    def _validate_delete(self, statement: ast.DeleteStatement) -> ValidationResult:
        relation = self._require_relation(statement.table)
        binding = statement.alias or statement.table
        result = ValidationResult(
            statement=ast.SelectStatement(select_items=(ast.SelectItem(ast.Star()),)),
            bindings={binding: relation},
        )
        if statement.where is not None:
            self._validate_expression(statement.where, _Scope({binding: relation}), result)
        return result

    def _require_relation(self, name: str) -> Relation:
        if not self.schema.has_relation(name):
            raise SqlValidationError(f"unknown relation {name!r}")
        return self.schema.relation(name)


def validate(schema: Schema, statement: ast.Statement) -> ValidationResult:
    """Validate ``statement`` against ``schema``."""
    return Validator(schema).validate(statement)
