"""Parsers for the SQL dialect of the paper's examples.

The grammar covers SELECT (with DISTINCT, joins expressed in the FROM/WHERE
style used by the paper, explicit ``JOIN ... ON``, GROUP BY, HAVING,
ORDER BY, LIMIT/OFFSET), nested subqueries via ``IN``, ``EXISTS`` and
quantified comparisons (``= ALL``, ``<= ALL``, ``> ANY`` ...), scalar
subqueries, aggregates (``count(*)``, ``count(distinct x)``, ``sum``,
``avg``, ``min``, ``max``), CASE expressions, plus INSERT / UPDATE /
DELETE / CREATE VIEW statements.

Two expression cores produce identical ASTs and identical errors:

* :class:`Parser` — the production parser.  Expressions go through a
  table-driven Pratt loop: one binding-power lookup per token (keyed on
  the lexer's interned token values) replaces the eight-deep
  ``_parse_or``/``_parse_and``/... call cascade per operand.
* :class:`ReferenceParser` — the original precedence-climbing cascade,
  retained as the differential oracle (the parser analogue of the
  character lexer kept next to :class:`repro.sql.lexer.RegexLexer`).

``parse_sql``/``parse_select`` use the Pratt parser;
``parse_sql_reference`` uses the cascade, and ``use_reference_parser()``
switches the default for a scope, which the benchmarks and the
differential fuzz suite use.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from repro.errors import SqlParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}

# ---------------------------------------------------------------------------
# Binding powers for the table-driven expression core.  The levels mirror
# the reference cascade exactly: OR < AND < NOT < predicate < additive <
# multiplicative < unary prefix.  Predicates (comparisons, IN, BETWEEN,
# LIKE, IS, quantified comparisons, EXISTS) are non-associative: once one
# has been consumed, the *ceiling* drops so that only AND/OR may follow —
# which is precisely what the cascade's single-shot ``_parse_predicate``
# enforces structurally.
# ---------------------------------------------------------------------------

_BP_OR = 10
_BP_AND = 20
_BP_NOT = 25
_BP_PREDICATE = 30
_BP_ADD = 40
_BP_MUL = 50
_NO_CEILING = 1000
_PREDICATE_CEILING = _BP_PREDICATE - 1

#: Left binding power per interned keyword value.
_KEYWORD_BP = {
    "OR": _BP_OR,
    "AND": _BP_AND,
    "IN": _BP_PREDICATE,
    "BETWEEN": _BP_PREDICATE,
    "LIKE": _BP_PREDICATE,
    "IS": _BP_PREDICATE,
}

#: Left binding power per operator lexeme.
_OPERATOR_BP = {
    "=": _BP_PREDICATE,
    "<>": _BP_PREDICATE,
    "!=": _BP_PREDICATE,
    "<": _BP_PREDICATE,
    "<=": _BP_PREDICATE,
    ">": _BP_PREDICATE,
    ">=": _BP_PREDICATE,
    "+": _BP_ADD,
    "-": _BP_ADD,
    "||": _BP_ADD,
    "*": _BP_MUL,
    "/": _BP_MUL,
    "%": _BP_MUL,
}


class Parser:
    """Parse a token stream into an AST :class:`repro.sql.ast.Statement`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    # The token stream always ends with EOF and ``pos`` never moves past
    # it, so offset-0 peeks skip the bounds check entirely.  Keyword
    # helpers compare token values directly: the lexer canonicalises
    # keyword values to their interned upper-case spelling, and every
    # caller in this module passes upper-case words.

    def _peek(self, offset: int = 0) -> Token:
        if offset:
            index = min(self.pos + offset, len(self.tokens) - 1)
            return self.tokens[index]
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        token = self.tokens[self.pos]
        if token.type is not TokenType.KEYWORD:
            return False
        value = token.value
        for word in words:
            if value == word:
                return True
        return False

    def _accept_keyword(self, *words: str) -> bool:
        token = self.tokens[self.pos]
        if token.type is not TokenType.KEYWORD:
            return False
        value = token.value
        for word in words:
            if value == word:
                self.pos += 1
                return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.KEYWORD or token.value != word:
            raise SqlParseError(
                f"expected keyword {word}, found {token.value!r}", token.line, token.column
            )
        self.pos += 1
        return token

    def _accept_punct(self, symbol: str) -> bool:
        token = self.tokens[self.pos]
        if token.type is TokenType.PUNCTUATION and token.value == symbol:
            self.pos += 1
            return True
        return False

    def _expect_punct(self, symbol: str) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.PUNCTUATION or token.value != symbol:
            raise SqlParseError(
                f"expected {symbol!r}, found {token.value!r}", token.line, token.column
            )
        self.pos += 1
        return token

    _IDENTIFIER_KEYWORDS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "VIEW"})

    def _expect_identifier(self) -> str:
        token = self.tokens[self.pos]
        if token.type is TokenType.IDENTIFIER:
            self.pos += 1
            value = token.value
            return value if type(value) is str else str(value)
        # Allow non-reserved-sounding keywords (e.g. aggregate names) as identifiers.
        if token.type is TokenType.KEYWORD and token.value in self._IDENTIFIER_KEYWORDS:
            self.pos += 1
            return token.value
        raise SqlParseError(
            f"expected identifier, found {token.value!r}", token.line, token.column
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("SELECT"):
            statement: ast.Statement = self.parse_select()
        elif token.is_keyword("INSERT"):
            statement = self._parse_insert()
        elif token.is_keyword("UPDATE"):
            statement = self._parse_update()
        elif token.is_keyword("DELETE"):
            statement = self._parse_delete()
        elif token.is_keyword("CREATE"):
            statement = self._parse_create_view()
        else:
            raise SqlParseError(
                f"expected a statement, found {token.value!r}", token.line, token.column
            )
        self._accept_punct(";")
        tail = self._peek()
        if tail.type is not TokenType.EOF:
            raise SqlParseError(
                f"unexpected trailing input {tail.value!r}", tail.line, tail.column
            )
        return statement

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        if self._accept_keyword("ALL"):
            distinct = False

        select_items = self._parse_select_list()

        from_tables: Tuple[ast.TableRef, ...] = ()
        where: Optional[ast.Expression] = None
        join_conditions: List[ast.Expression] = []
        if self._accept_keyword("FROM"):
            from_tables, join_conditions = self._parse_from_clause()

        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        if join_conditions:
            where = ast.conjoin(list(join_conditions) + ([where] if where else []))

        group_by: Tuple[ast.Expression, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_expression_list())

        having: Optional[ast.Expression] = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expression()

        order_by: Tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._parse_order_list())

        limit: Optional[int] = None
        offset: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_int_literal("LIMIT")
        if self._accept_keyword("OFFSET"):
            offset = self._parse_int_literal("OFFSET")

        return ast.SelectStatement(
            select_items=tuple(select_items),
            from_tables=from_tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=distinct,
            limit=limit,
            offset=offset,
        )

    def _parse_int_literal(self, clause: str) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
            raise SqlParseError(
                f"{clause} expects an integer, found {token.value!r}",
                token.line,
                token.column,
            )
        self._advance()
        return int(token.value)

    def _parse_select_list(self) -> List[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        expression = self._parse_expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_from_clause(self) -> Tuple[Tuple[ast.TableRef, ...], List[ast.Expression]]:
        """Parse the FROM clause, returning table refs and any ON conditions."""
        tables: List[ast.TableRef] = [self._parse_table_ref()]
        conditions: List[ast.Expression] = []
        while True:
            if self._accept_punct(","):
                tables.append(self._parse_table_ref())
                continue
            if self._check_keyword("JOIN", "INNER", "LEFT", "RIGHT"):
                # Normalise explicit joins into the comma + WHERE style the
                # rest of the pipeline (and the paper's examples) use.
                self._accept_keyword("INNER")
                self._accept_keyword("LEFT")
                self._accept_keyword("RIGHT")
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                tables.append(self._parse_table_ref())
                if self._accept_keyword("ON"):
                    conditions.append(self._parse_expression())
                continue
            break
        return tuple(tables), conditions

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_identifier()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return ast.TableRef(name=name, alias=alias)

    def _parse_order_list(self) -> List[ast.OrderItem]:
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        elif self._accept_keyword("ASC"):
            descending = False
        return ast.OrderItem(expression=expression, descending=descending)

    def _parse_expression_list(self) -> List[ast.Expression]:
        expressions = [self._parse_expression()]
        while self._accept_punct(","):
            expressions.append(self._parse_expression())
        return expressions

    # ------------------------------------------------------------------
    # Expressions (table-driven Pratt loop over the binding-power tables)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        expression, _ceiling = self._parse_binding(0)
        return expression

    def _parse_additive(self) -> ast.Expression:
        """An operand at predicate-argument level (no predicates inside)."""
        expression, _ceiling = self._parse_binding(_BP_PREDICATE)
        return expression

    def _parse_binding(self, min_bp: int) -> Tuple[ast.Expression, int]:
        """The Pratt core: prefix production, then infix loop.

        Returns ``(expression, ceiling)`` where ``ceiling`` is the highest
        binding power an operator following this expression may have —
        after a predicate only AND/OR may attach, matching the cascade's
        non-associative ``_parse_predicate``.
        """
        left, ceiling = self._parse_prefix(min_bp)
        tokens = self.tokens
        while True:
            token = tokens[self.pos]
            token_type = token.type
            if token_type is TokenType.OPERATOR:
                bp = _OPERATOR_BP.get(token.value, 0)
            elif token_type is TokenType.KEYWORD:
                value = token.value
                bp = _KEYWORD_BP.get(value, 0)
                if (
                    bp == 0
                    and value == "NOT"
                    and self._peek(1).is_keyword("IN", "BETWEEN", "LIKE")
                ):
                    bp = _BP_PREDICATE
            else:
                break
            if bp <= min_bp or bp > ceiling:
                break
            if bp == _BP_PREDICATE:
                left = self._parse_predicate_tail(left)
                ceiling = _PREDICATE_CEILING
            elif bp <= _BP_AND:
                self.pos += 1
                right, right_ceiling = self._parse_binding(bp)
                left = ast.BinaryOp("AND" if bp == _BP_AND else "OR", left, right)
                ceiling = right_ceiling
            else:  # additive / multiplicative, left-associative
                op = token.value
                self.pos += 1
                right, _ = self._parse_binding(bp)
                left = ast.BinaryOp(op if type(op) is str else str(op), left, right)
        return left, ceiling

    def _parse_prefix(self, min_bp: int) -> Tuple[ast.Expression, int]:
        """Null denotations: literals, unary operators, EXISTS, primaries.

        NOT and EXISTS are boolean-level productions: the cascade reaches
        them only through ``_parse_not``/``_parse_predicate``, never inside
        predicate operands, so they apply only when ``min_bp`` sits below
        the predicate level.
        """
        token = self.tokens[self.pos]
        token_type = token.type
        if token_type is TokenType.OPERATOR:
            value = token.value
            if value == "-":
                self.pos += 1
                operand, _ = self._parse_binding(_BP_MUL)
                if isinstance(operand, ast.Literal) and isinstance(
                    operand.value, (int, float)
                ):
                    return ast.Literal(-operand.value), _NO_CEILING
                return ast.UnaryOp("-", operand), _NO_CEILING
            if value == "+":
                # Unary plus: the cascade parses its operand at unary level,
                # where NOT/EXISTS are not valid productions.
                self.pos += 1
                return self._parse_prefix(_BP_MUL)
        elif token_type is TokenType.KEYWORD and min_bp < _BP_PREDICATE:
            value = token.value
            if value == "NOT":
                follower = self._peek(1)
                if follower.is_keyword("EXISTS"):
                    self._advance()
                    self._expect_keyword("EXISTS")
                    return self._parse_exists(negated=True), _PREDICATE_CEILING
                if not follower.is_keyword("IN", "BETWEEN", "LIKE"):
                    self._advance()
                    operand, _ = self._parse_binding(_BP_NOT)
                    return ast.UnaryOp("NOT", operand), _PREDICATE_CEILING
                # NOT immediately followed by IN/BETWEEN/LIKE: fall through to
                # the primary parser, which raises the cascade's exact error.
            elif value == "EXISTS":
                self._advance()
                return self._parse_exists(negated=False), _PREDICATE_CEILING
        return self._parse_primary(), _NO_CEILING

    def _parse_exists(self, negated: bool) -> ast.Expression:
        self._expect_punct("(")
        subquery = self.parse_select()
        self._expect_punct(")")
        return ast.Exists(subquery=subquery, negated=negated)

    def _parse_predicate_tail(self, left: ast.Expression) -> ast.Expression:
        """One predicate-level infix: comparison, IN, BETWEEN, LIKE or IS."""
        token = self.tokens[self.pos]
        if token.type is TokenType.OPERATOR:
            self.pos += 1
            op = token.value
            if type(op) is not str:
                op = str(op)
            if op == "!=":
                op = "<>"
            if self._check_keyword("ALL", "ANY", "SOME"):
                quantifier = "ANY" if self._advance().upper in ("ANY", "SOME") else "ALL"
                self._expect_punct("(")
                subquery = self.parse_select()
                self._expect_punct(")")
                return ast.QuantifiedComparison(
                    operand=left, op=op, quantifier=quantifier, subquery=subquery
                )
            right, _ = self._parse_binding(_BP_PREDICATE)
            return ast.BinaryOp(op, left, right)

        negated = False
        if token.value == "NOT":
            self.pos += 1
            negated = True
        if self._accept_keyword("IN"):
            return self._parse_in_tail(left, negated)
        if self._accept_keyword("BETWEEN"):
            low, _ = self._parse_binding(_BP_PREDICATE)
            self._expect_keyword("AND")
            high, _ = self._parse_binding(_BP_PREDICATE)
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if self._accept_keyword("LIKE"):
            pattern, _ = self._parse_binding(_BP_PREDICATE)
            op = "NOT LIKE" if negated else "LIKE"
            return ast.BinaryOp(op, left, pattern)
        self._expect_keyword("IS")
        is_negated = self._accept_keyword("NOT")
        self._expect_keyword("NULL")
        return ast.IsNull(operand=left, negated=is_negated)

    def _parse_in_tail(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self._expect_punct("(")
        if self._check_keyword("SELECT"):
            subquery = self.parse_select()
            self._expect_punct(")")
            return ast.InSubquery(operand=operand, subquery=subquery, negated=negated)
        values = [self._parse_additive()]
        while self._accept_punct(","):
            values.append(self._parse_additive())
        self._expect_punct(")")
        return ast.InList(operand=operand, values=tuple(values), negated=negated)

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(str(token.value))
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            return self._parse_function_call(str(self._advance().value))

        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()

        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            if self._check_keyword("SELECT"):
                subquery = self.parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery=subquery)
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression

        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()

        raise SqlParseError(
            f"unexpected token {token.value!r} in expression", token.line, token.column
        )

    def _parse_identifier_expression(self) -> ast.Expression:
        first = self._expect_identifier()
        # Function call: identifier immediately followed by "(".
        if self._peek().type is TokenType.PUNCTUATION and self._peek().value == "(":
            return self._parse_function_call(first)
        if self._accept_punct("."):
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value == "*":
                self._advance()
                return ast.Star(table=first)
            column = self._expect_identifier()
            return ast.ColumnRef(column=column, table=first)
        return ast.ColumnRef(column=first)

    def _parse_function_call(self, name: str) -> ast.Expression:
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT")
        args: List[ast.Expression] = []
        if not (self._peek().type is TokenType.PUNCTUATION and self._peek().value == ")"):
            args.append(self._parse_expression())
            while self._accept_punct(","):
                args.append(self._parse_expression())
        self._expect_punct(")")
        return ast.FunctionCall(name=name.upper(), args=tuple(args), distinct=distinct)

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("CASE")
        whens: List[Tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            value = self._parse_expression()
            whens.append((condition, value))
        else_value: Optional[ast.Expression] = None
        if self._accept_keyword("ELSE"):
            else_value = self._parse_expression()
        self._expect_keyword("END")
        if not whens:
            token = self._peek()
            raise SqlParseError("CASE requires at least one WHEN", token.line, token.column)
        return ast.CaseExpression(whens=tuple(whens), else_value=else_value)

    # ------------------------------------------------------------------
    # INSERT / UPDATE / DELETE / CREATE VIEW
    # ------------------------------------------------------------------

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns: List[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier())
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: List[Tuple[ast.Expression, ...]] = []
        while True:
            self._expect_punct("(")
            values = [self._parse_expression()]
            while self._accept_punct(","):
                values.append(self._parse_expression())
            self._expect_punct(")")
            rows.append(tuple(values))
            if not self._accept_punct(","):
                break
        return ast.InsertStatement(table=table, columns=tuple(columns), rows=tuple(rows))

    def _parse_update(self) -> ast.UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        alias: Optional[str] = None
        if self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expression]] = []
        while True:
            column = self._expect_identifier()
            if self._accept_punct("."):
                column = self._expect_identifier()
            token = self._peek()
            if token.type is not TokenType.OPERATOR or token.value != "=":
                raise SqlParseError("expected '=' in SET clause", token.line, token.column)
            self._advance()
            assignments.append((column, self._parse_expression()))
            if not self._accept_punct(","):
                break
        where: Optional[ast.Expression] = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.UpdateStatement(
            table=table, assignments=tuple(assignments), where=where, alias=alias
        )

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        alias: Optional[str] = None
        if self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        where: Optional[ast.Expression] = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.DeleteStatement(table=table, where=where, alias=alias)

    def _parse_create_view(self) -> ast.CreateViewStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("VIEW")
        name = self._expect_identifier()
        self._expect_keyword("AS")
        query = self.parse_select()
        return ast.CreateViewStatement(name=name, query=query)


class ReferenceParser(Parser):
    """The original precedence-climbing expression cascade.

    Statement-level parsing is shared with :class:`Parser`; only the
    expression core differs.  Kept verbatim as the differential oracle for
    the table-driven Pratt parser — the fuzz suite asserts AST and error
    equality between the two on every query the repository ships plus
    randomly mutated inputs.
    """

    # -- Expressions (precedence climbing: OR < AND < NOT < predicate <
    #    add < mul < unary) ------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._check_keyword("NOT") and not self._peek(1).is_keyword("EXISTS", "IN", "BETWEEN", "LIKE"):
            self._advance()
            operand = self._parse_not()
            return ast.UnaryOp("NOT", operand)
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        if self._check_keyword("EXISTS") or (
            self._check_keyword("NOT") and self._peek(1).is_keyword("EXISTS")
        ):
            negated = self._accept_keyword("NOT")
            self._expect_keyword("EXISTS")
            self._expect_punct("(")
            subquery = self.parse_select()
            self._expect_punct(")")
            return ast.Exists(subquery=subquery, negated=negated)

        left = self._parse_additive()

        negated = False
        if self._check_keyword("NOT") and self._peek(1).is_keyword("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True

        if self._accept_keyword("IN"):
            return self._parse_in_tail(left, negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            op = "NOT LIKE" if negated else "LIKE"
            return ast.BinaryOp(op, left, pattern)
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=is_negated)

        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = str(self._advance().value)
            if op == "!=":
                op = "<>"
            if self._check_keyword("ALL", "ANY", "SOME"):
                quantifier = "ANY" if self._advance().upper in ("ANY", "SOME") else "ALL"
                self._expect_punct("(")
                subquery = self.parse_select()
                self._expect_punct(")")
                return ast.QuantifiedComparison(
                    operand=left, op=op, quantifier=quantifier, subquery=subquery
                )
            right = self._parse_additive()
            return ast.BinaryOp(op, left, right)

        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                op = str(self._advance().value)
                right = self._parse_multiplicative()
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                op = str(self._advance().value)
                right = self._parse_unary()
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if token.type is TokenType.OPERATOR and token.value == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_primary()


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

_USE_REFERENCE_PARSER = False


def parse_sql(text: str) -> ast.Statement:
    """Parse SQL ``text`` into a statement AST (table-driven parser)."""
    if _USE_REFERENCE_PARSER:
        return ReferenceParser(tokenize(text)).parse_statement()
    return Parser(tokenize(text)).parse_statement()


def parse_sql_reference(text: str) -> ast.Statement:
    """Parse with the recursive-descent oracle parser."""
    return ReferenceParser(tokenize(text)).parse_statement()


@contextmanager
def use_reference_parser() -> Iterator[None]:
    """Route :func:`parse_sql` through the oracle parser for a scope.

    Used by the benchmarks to measure the interpreted expression core and
    by tests that exercise the whole pipeline against the oracle.
    """
    global _USE_REFERENCE_PARSER
    previous = _USE_REFERENCE_PARSER
    _USE_REFERENCE_PARSER = True
    try:
        yield
    finally:
        _USE_REFERENCE_PARSER = previous


def parse_select(text: str) -> ast.SelectStatement:
    """Parse SQL ``text``, requiring it to be a SELECT statement."""
    statement = parse_sql(text)
    if not isinstance(statement, ast.SelectStatement):
        raise SqlParseError("expected a SELECT statement")
    return statement
