"""Shared SQL shape extraction: one literal-masking implementation for all layers.

Three subsystems key compile-once-run-many caches on the *shape* of a SQL
text — the token stream with every NUMBER/STRING literal replaced by a
placeholder:

* the translator's phrase plans (:mod:`repro.query_nl.plans`) render
  repeated-shape queries by slot substitution,
* the engine's parameterised plans (:mod:`repro.engine.parameterised`)
  execute repeated-shape queries through one compiled logical plan with
  the literals bound as parameters, and
* the concurrent service (:mod:`repro.service.service`) groups same-shape
  translate *and* execute requests so one compile serves a whole batch.

This module is the single implementation they all consume.  It layers a
fast *masking* pass over the lexer's exact :func:`~repro.sql.lexer.shape_of`:

``_mask``
    A one-pass regex that blanks literal spans.  Its number pattern is a
    conservative subset of the lexer's, so masking can only ever cause
    cache misses, never false hits; the store-time self-check in
    :func:`sql_shape` enforces exact agreement with the real tokenization
    before a masked key is ever trusted.

:func:`sql_shape`
    ``(shape, literals)`` for a SQL text, served from a process-wide
    masked-text cache when possible and from :func:`shape_of` otherwise.

:func:`batch_key`
    A grouping key that is equal exactly for mask-equal texts.  It touches
    no shared cache and never tokenizes, so the service can call it on the
    event-loop thread.

Shapes are pure text properties, so one process-wide cache serves every
schema, lexicon and database; the internal lock makes the LRU's recency
bookkeeping safe under the service's worker threads.
"""

from __future__ import annotations

import hashlib
import re
import threading
from typing import Any, List, Optional, Sequence, Tuple

from repro.sql.lexer import NUMBER_MARK, STRING_MARK, shape_of
from repro.utils.cache import LRUCache

__all__ = [
    "NUMBER_MARK",
    "STRING_MARK",
    "batch_key",
    "is_mutation",
    "reconstruct_sql",
    "shape_hash",
    "shape_of",
    "sql_shape",
    "stable_hash",
    "statement_keyword",
]

#: One-pass literal masker for the shape-cache fast path.  Comments and
#: quoted identifiers are consumed (and kept verbatim in the masked text)
#: so that quotes/digits inside them can never be mistaken for literals;
#: the string pattern is exactly the lexer's; the number pattern is a
#: *conservative* subset of the lexer's (the lookbehind skips digits glued
#: to words or dots), which only ever causes cache misses, never false
#: hits — the store-time self-check below enforces exact agreement with
#: the real tokenization before a masked key is ever trusted.
_MASK_RE = re.compile(
    r"""
      (--[^\n]*|/\*(?:[^*]|\*(?!/))*\*/|"[^"]*")
    | ('[^']*(?:''[^']*)*'(?!'))
    | ((?<![\w.])(?:\d+(?:\.\d+)?|\.\d+))
    """,
    re.VERBOSE,
)

#: masked text -> (shape tuple, literal count).
_MASK_CACHE = LRUCache(2048)
_MASK_LOCK = threading.Lock()


def _mask(sql: str):
    """``(masked text, extracted literal values)`` or ``None`` when unusable."""
    if "\x00" in sql:
        return None
    pieces: List[str] = []
    literals: List[Any] = []
    last = 0
    for match in _MASK_RE.finditer(sql):
        index = match.lastindex
        if index == 1:  # comment / quoted identifier: stays distinguishing
            continue
        start, end = match.span()
        pieces.append(sql[last:start])
        last = end
        if index == 2:
            # The placeholder must carry the literal's KIND: `x = 0` and
            # `x = '0'` are different shapes (NUMBER_MARK vs STRING_MARK
            # slots), so their masked texts must differ too — otherwise
            # the shape cache, the service's batch grouping and the
            # parameterised-plan keys would serve one kind's compiled
            # artifacts for the other.
            pieces.append(STRING_MARK)
            body = sql[start + 1 : end - 1]
            if "''" in body:
                body = body.replace("''", "'")
            literals.append(body)
        else:
            pieces.append(NUMBER_MARK)
            lexeme = match.group(3)
            literals.append(float(lexeme) if "." in lexeme else int(lexeme))
    pieces.append(sql[last:])
    return "".join(pieces), literals


def batch_key(sql: str) -> str:
    """A grouping key that is equal exactly for mask-equal SQL texts.

    The concurrent service groups same-shape translate and execute
    requests with this (one phrase-plan or parameterised-plan compile
    then serves the whole group).  Unlike :func:`sql_shape` it touches no
    shared cache and never tokenizes, so it is safe and cheap to call on
    the event-loop thread.
    """
    masked = _mask(sql)
    return masked[0] if masked is not None else sql


def stable_hash(text: str) -> int:
    """A 64-bit hash of ``text`` that is identical in every Python process.

    Python's built-in ``hash`` of strings is salted per process
    (``PYTHONHASHSEED``), so it cannot place keys on a hash ring shared
    by a router and its worker processes, nor survive a router restart.
    This digest is a pure function of the text — same value in every
    process, every run, every platform.
    """
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


def statement_keyword(sql: str) -> str:
    """The first meaningful keyword of a SQL text, lowercased.

    Skips leading whitespace, ``--`` line comments, ``/* ... */`` block
    comments and opening parentheses (a parenthesized ``(select ...)`` is
    still a read), then returns the first identifier-shaped word.  An
    unterminated comment or an empty text returns ``""``.
    """
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace() or ch == "(":
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i + 2)
            i = n if end < 0 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            i = n if end < 0 else end + 2
            continue
        break
    start = i
    while i < n and (sql[i].isalpha() or sql[i] == "_"):
        i += 1
    return sql[start:i].lower()


def is_mutation(sql: str) -> bool:
    """Whether a SQL text may change data.

    This is the write-barrier classifier: the service groups execute
    requests around it, the shard tier broadcasts on it, and the router
    only ever auto-retries statements it returns ``False`` for.  It is
    deliberately conservative — anything whose first meaningful keyword
    (after whitespace, comments and parentheses, see
    :func:`statement_keyword`) is not ``select`` counts as a mutation.  A
    false positive costs a singleton batch group or a skipped retry; a
    false negative could let a read jump a write or replay a write twice.
    """
    return statement_keyword(sql) != "select"


def shape_hash(sql: str) -> int:
    """A process-stable 64-bit hash of ``sql``'s masked shape.

    Mask-equal texts (identical outside literal spans) hash equal, so the
    shard tier can route every literal variant of one query shape to the
    same worker — keeping that worker's phrase-plan store, exact-text LRU
    and parameterised-plan cache hot for the shapes it owns.
    """
    return stable_hash(batch_key(sql))


def sql_shape(sql: str) -> Optional[Tuple[Tuple[str, ...], Tuple[Any, ...]]]:
    """``(shape, literals)`` for ``sql``, or ``None`` when it does not lex.

    The shape is the lexer's token stream with literal positions replaced
    by :data:`NUMBER_MARK`/:data:`STRING_MARK`; ``literals`` holds the
    masked values in text order.  Mask-equal texts (identical outside
    literal spans) are served from the process-wide cache without
    tokenizing; the first sight of a masked text verifies the masker
    against the real tokenization before the cached shape is trusted.
    """
    masked = _mask(sql)
    if masked is not None:
        masked_text, extracted = masked
        with _MASK_LOCK:
            entry = _MASK_CACHE.get(masked_text)
        if entry is not None:
            shape, count = entry
            if count == len(extracted):
                return shape, tuple(extracted)
    shaped = shape_of(sql)
    if shaped is None:
        return None
    shape, literals = shaped
    if masked is not None and list(literals) == masked[1]:
        # The masker reproduced the tokenizer's literals exactly for this
        # text, so mask-equal texts (identical outside literal spans) are
        # safe to serve from the cached shape.
        with _MASK_LOCK:
            _MASK_CACHE.put(masked[0], (shape, len(literals)))
    return shape, literals


def reconstruct_sql(shape: Sequence[str], literals: Sequence[Any]) -> str:
    """SQL text lexing back to ``shape`` with the given literal values."""
    pieces: List[str] = []
    position = 0
    for part in shape:
        if part is NUMBER_MARK or part == NUMBER_MARK:
            pieces.append(repr(literals[position]))
            position += 1
        elif part is STRING_MARK or part == STRING_MARK:
            body = str(literals[position]).replace("'", "''")
            pieces.append(f"'{body}'")
            position += 1
        else:
            pieces.append(part)
    return " ".join(pieces)
