"""Hand-written lexer for the SQL dialect used throughout the paper."""

from __future__ import annotations

from typing import List

from repro.errors import SqlLexError
from repro.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


class Lexer:
    """Convert SQL text into a list of :class:`Token` objects.

    The dialect covers everything the paper's queries Q1-Q9 need: quoted
    string literals (single quotes, doubled-quote escaping), integer and
    float literals, identifiers (optionally double-quoted), the keyword set
    in :mod:`repro.sql.tokens`, comparison/arithmetic operators, and
    ``--``/``/* */`` comments.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Produce the full token list, ending with an EOF token."""
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenType.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        consumed = self.text[self.pos : self.pos + count]
        for ch in consumed:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return consumed

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise SqlLexError("unterminated block comment", self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch == "'":
            return self._string_literal(line, column)
        if ch == '"':
            return self._quoted_identifier(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._word(line, column)

        for operator in MULTI_CHAR_OPERATORS:
            if self.text.startswith(operator, self.pos):
                self._advance(len(operator))
                return Token(TokenType.OPERATOR, operator, line, column)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenType.OPERATOR, ch, line, column)
        if ch in PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCTUATION, ch, line, column)

        raise SqlLexError(f"unexpected character {ch!r}", line, column)

    def _string_literal(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise SqlLexError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == "'":
                if self._peek() == "'":
                    parts.append("'")
                    self._advance()
                    continue
                break
            parts.append(ch)
        return Token(TokenType.STRING, "".join(parts), line, column)

    def _quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise SqlLexError("unterminated quoted identifier", line, column)
            ch = self._advance()
            if ch == '"':
                break
            parts.append(ch)
        return Token(TokenType.IDENTIFIER, "".join(parts), line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        seen_dot = False
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                self._advance()
            else:
                break
        text = self.text[start : self.pos]
        value = float(text) if seen_dot else int(text)
        return Token(TokenType.NUMBER, value, line, column)

    def _word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.text[start : self.pos]
        if text.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, text.upper(), line, column)
        return Token(TokenType.IDENTIFIER, text, line, column)


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: lex ``text`` into tokens."""
    return Lexer(text).tokenize()
