"""Lexers for the SQL dialect used throughout the paper.

Two implementations produce identical token streams:

* :class:`RegexLexer` — the production tokenizer.  One precompiled
  master regex (module level, compiled once per process) classifies each
  lexeme in a single ``match`` call, and the keyword table is interned so
  KEYWORD tokens share canonical string objects.  This is the
  narration-front-end analogue of ``repro/engine/compile.py``: the
  dispatch work the character lexer re-does per character is resolved
  once, at regex-compile time.
* :class:`Lexer` — the original hand-written character-by-character
  lexer, kept as the differential oracle.  ``tests/test_narration_frontend.py``
  asserts both produce the same tokens (values, types and positions) and
  the same errors on every query the repository ships.

``tokenize`` uses the regex lexer; ``tokenize_reference`` uses the
character lexer.  ``use_reference_lexer`` switches the default for a
scope, which the benchmarks use to measure the interpreted front end.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Iterator, List

from repro.errors import SqlLexError
from repro.sql.tokens import (
    KEYWORDS,
    KEYWORD_SPELLINGS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


class Lexer:
    """Convert SQL text into a list of :class:`Token` objects.

    The dialect covers everything the paper's queries Q1-Q9 need: quoted
    string literals (single quotes, doubled-quote escaping), integer and
    float literals, identifiers (optionally double-quoted), the keyword set
    in :mod:`repro.sql.tokens`, comparison/arithmetic operators, and
    ``--``/``/* */`` comments.

    This is the original character-by-character implementation, retained
    as the differential oracle for :class:`RegexLexer`.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Produce the full token list, ending with an EOF token."""
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenType.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        consumed = self.text[self.pos : self.pos + count]
        for ch in consumed:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return consumed

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise SqlLexError("unterminated block comment", self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch == "'":
            return self._string_literal(line, column)
        if ch == '"':
            return self._quoted_identifier(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._word(line, column)

        for operator in MULTI_CHAR_OPERATORS:
            if self.text.startswith(operator, self.pos):
                self._advance(len(operator))
                return Token(TokenType.OPERATOR, operator, line, column)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenType.OPERATOR, ch, line, column)
        if ch in PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCTUATION, ch, line, column)

        raise SqlLexError(f"unexpected character {ch!r}", line, column)

    def _string_literal(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise SqlLexError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == "'":
                if self._peek() == "'":
                    parts.append("'")
                    self._advance()
                    continue
                break
            parts.append(ch)
        return Token(TokenType.STRING, "".join(parts), line, column)

    def _quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise SqlLexError("unterminated quoted identifier", line, column)
            ch = self._advance()
            if ch == '"':
                break
            parts.append(ch)
        return Token(TokenType.IDENTIFIER, "".join(parts), line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        seen_dot = False
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                self._advance()
            else:
                break
        text = self.text[start : self.pos]
        value = float(text) if seen_dot else int(text)
        return Token(TokenType.NUMBER, value, line, column)

    def _word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.text[start : self.pos]
        if text.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, text.upper(), line, column)
        return Token(TokenType.IDENTIFIER, text, line, column)


# ---------------------------------------------------------------------------
# Regex lexer
# ---------------------------------------------------------------------------

#: The master lexeme pattern.  Alternation order matters: comments before
#: the ``-``/``/`` operators, multi-character operators before their
#: single-character prefixes, and ``.5``-style numbers before the ``.``
#: punctuation.  Strings use the ``body (?:'' body)*`` shape so doubled
#: quotes extend the literal without any backtracking blow-up, and the
#: trailing ``(?!')`` keeps a lone trailing quote from closing early —
#: matching the character lexer's escape-first behaviour on malformed
#: input such as ``'abc''`` (whole literal unterminated, not ``'abc'``
#: followed by a stray quote).
_MASTER_RE = re.compile(
    r"""
    \s*(?:
      (?P<word>[^\W\d]\w*)
    | (?P<punct>[(),;])
    | (?P<number>\d+(?:\.\d+)?|\.\d+)
    | (?P<dot>\.)
    | (?P<string>'[^']*(?:''[^']*)*'(?!'))
    | (?P<qident>"[^"]*")
    | (?P<lcomment>--[^\n]*)
    | (?P<bcomment>/\*(?:[^*]|\*(?!/))*\*/)
    | (?P<bcomment_open>/\*)
    | (?P<op><>|!=|<=|>=|\|\||[=<>+\-*/%])
    )
    """,
    re.VERBOSE,
)

#: Group index → group name, so the hot loop dispatches on ``m.lastindex``
#: without the per-match ``lastgroup`` name lookup.
_GROUP_NAMES = {index: name for name, index in _MASTER_RE.groupindex.items()}

_KEYWORD = TokenType.KEYWORD
_IDENTIFIER = TokenType.IDENTIFIER
_NUMBER = TokenType.NUMBER
_STRING = TokenType.STRING
_OPERATOR = TokenType.OPERATOR
_PUNCTUATION = TokenType.PUNCTUATION
_EOF = TokenType.EOF


class RegexLexer:
    """Single-pass tokenizer over the module-level master regex.

    Produces exactly the same token stream (values, types, line/column
    positions) and the same :class:`SqlLexError` diagnostics as
    :class:`Lexer`, in one precompiled-regex match per lexeme.
    """

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text

    def tokenize(self) -> List[Token]:
        text = self.text
        length = len(text)
        tokens: List[Token] = []
        append = tokens.append
        match = _MASTER_RE.match
        find = text.find
        keywords = KEYWORD_SPELLINGS
        interned = KEYWORDS
        pos = 0
        line = 1
        line_start = 0

        while pos < length:
            m = match(text, pos)
            if m is None or m.lastindex is None:
                # Nothing (or only whitespace) matched: skip any leading
                # whitespace by hand, then diagnose at the offending char.
                while pos < length:
                    ch = text[pos]
                    if not ch.isspace():
                        break
                    if ch == "\n":
                        line += 1
                        line_start = pos + 1
                    pos += 1
                if pos >= length:
                    break
                ch = text[pos]
                column = pos - line_start + 1
                if ch == "'":
                    raise SqlLexError("unterminated string literal", line, column)
                if ch == '"':
                    raise SqlLexError("unterminated quoted identifier", line, column)
                raise SqlLexError(f"unexpected character {ch!r}", line, column)

            index = m.lastindex
            start = m.start(index)
            end = m.end()
            if start > pos and find("\n", pos, start) != -1:
                prefix = text[pos:start]
                line += prefix.count("\n")
                line_start = pos + prefix.rfind("\n") + 1
            kind = _GROUP_NAMES[index]
            if kind == "word":
                lexeme = m.group(index)
                canonical = keywords.get(lexeme)
                if canonical is not None:
                    append(Token(_KEYWORD, canonical, line, start - line_start + 1))
                else:
                    upper = lexeme.upper()
                    if upper in interned:
                        append(Token(_KEYWORD, upper, line, start - line_start + 1))
                    else:
                        append(Token(_IDENTIFIER, lexeme, line, start - line_start + 1))
            elif kind == "punct" or kind == "dot":
                append(Token(_PUNCTUATION, text[start], line, start - line_start + 1))
            elif kind == "op":
                append(Token(_OPERATOR, m.group(index), line, start - line_start + 1))
            elif kind == "number":
                lexeme = m.group(index)
                value = float(lexeme) if "." in lexeme else int(lexeme)
                append(Token(_NUMBER, value, line, start - line_start + 1))
            elif kind == "string":
                body = text[start + 1 : end - 1]
                if "''" in body:
                    body = body.replace("''", "'")
                append(Token(_STRING, body, line, start - line_start + 1))
                if "\n" in body:
                    lexeme = text[start:end]
                    line += lexeme.count("\n")
                    line_start = start + lexeme.rfind("\n") + 1
            elif kind == "qident":
                body = text[start + 1 : end - 1]
                append(Token(_IDENTIFIER, body, line, start - line_start + 1))
                if "\n" in body:
                    line += body.count("\n")
                    line_start = start + 2 + body.rfind("\n")
            elif kind == "lcomment":
                pass
            elif kind == "bcomment":
                if find("\n", start, end) != -1:
                    lexeme = text[start:end]
                    line += lexeme.count("\n")
                    line_start = start + lexeme.rfind("\n") + 1
            else:  # bcomment_open: unterminated block comment
                tail = text[start:]
                if "\n" in tail:
                    line += tail.count("\n")
                    line_start = start + tail.rfind("\n") + 1
                raise SqlLexError(
                    "unterminated block comment", line, length - line_start + 1
                )
            pos = end

        append(Token(_EOF, "", line, pos - line_start + 1))
        return tokens


# ---------------------------------------------------------------------------
# Shape extraction (for the translator's shape-keyed phrase plans)
# ---------------------------------------------------------------------------

#: Placeholder markers for literal positions inside a shape key.  ``\x00``
#: cannot appear in identifiers/keywords/operators, so markers never
#: collide with real lexemes.
NUMBER_MARK = "\x00N"
STRING_MARK = "\x00S"

#: Group indices for the integer dispatch in :func:`shape_of` (cheaper than
#: the name lookup the token-building loop performs).
_IDX_WORD = _MASTER_RE.groupindex["word"]
_IDX_PUNCT = _MASTER_RE.groupindex["punct"]
_IDX_NUMBER = _MASTER_RE.groupindex["number"]
_IDX_DOT = _MASTER_RE.groupindex["dot"]
_IDX_STRING = _MASTER_RE.groupindex["string"]
_IDX_QIDENT = _MASTER_RE.groupindex["qident"]
_IDX_LCOMMENT = _MASTER_RE.groupindex["lcomment"]
_IDX_BCOMMENT = _MASTER_RE.groupindex["bcomment"]
_IDX_OP = _MASTER_RE.groupindex["op"]

#: Lexeme → canonical shape part for words (interned keyword spelling or
#: the identifier itself).  SQL workloads reuse a small vocabulary, so the
#: upper-case/keyword resolution runs once per distinct word; bounded to
#: stay a cache rather than a leak under adversarial input.
_WORD_CANON: dict = {}
_WORD_CANON_LIMIT = 8192


def shape_of(text: str):
    """``(shape, literals)`` for ``text``, or ``None`` when it does not lex.

    The *shape* is the token stream with every NUMBER/STRING literal
    replaced by a placeholder marker — two queries with equal shapes parse
    into identical ASTs up to literal values, which is what keys the
    translator's compiled phrase plans.  Runs the same master regex as
    :class:`RegexLexer` in a single pass, but skips ``Token`` construction
    and line/column bookkeeping entirely; any input the lexer would reject
    yields ``None`` so callers fall back to the full (error-reporting)
    pipeline.
    """
    length = len(text)
    parts = []
    literals = []
    append = parts.append
    match = _MASTER_RE.match
    canon = _WORD_CANON
    pos = 0
    while pos < length:
        m = match(text, pos)
        if m is None:
            if text[pos:].isspace():
                break
            return None
        index = m.lastindex
        if index == _IDX_WORD:
            lexeme = m.group(index)
            canonical = canon.get(lexeme)
            if canonical is None:
                canonical = KEYWORD_SPELLINGS.get(lexeme)
                if canonical is None:
                    upper = lexeme.upper()
                    canonical = upper if upper in KEYWORDS else lexeme
                if len(canon) < _WORD_CANON_LIMIT:
                    canon[lexeme] = canonical
            append(canonical)
        elif index == _IDX_PUNCT or index == _IDX_DOT or index == _IDX_OP:
            append(m.group(index))
        elif index == _IDX_NUMBER:
            lexeme = m.group(index)
            literals.append(float(lexeme) if "." in lexeme else int(lexeme))
            append(NUMBER_MARK)
        elif index == _IDX_STRING:
            body = m.group(index)[1:-1]
            if "''" in body:
                body = body.replace("''", "'")
            literals.append(body)
            append(STRING_MARK)
        elif index == _IDX_QIDENT:
            body = m.group(index)[1:-1]
            if "\x00" in body:  # cannot collide with the literal markers
                return None
            append(body)
        elif index == _IDX_LCOMMENT or index == _IDX_BCOMMENT:
            pass
        elif index is None:
            if text[pos:].isspace():
                break
            return None
        else:  # bcomment_open: unterminated block comment
            return None
        pos = m.end()
    return tuple(parts), tuple(literals)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

_USE_REFERENCE = False


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: lex ``text`` into tokens (regex lexer)."""
    if _USE_REFERENCE:
        return Lexer(text).tokenize()
    return RegexLexer(text).tokenize()


def tokenize_reference(text: str) -> List[Token]:
    """Lex with the character-by-character oracle lexer."""
    return Lexer(text).tokenize()


@contextmanager
def use_reference_lexer() -> Iterator[None]:
    """Route :func:`tokenize` through the oracle lexer for a scope.

    Used by the benchmarks to measure the interpreted front end and by
    tests that exercise the whole pipeline against the oracle.
    """
    global _USE_REFERENCE
    previous = _USE_REFERENCE
    _USE_REFERENCE = True
    try:
        yield
    finally:
        _USE_REFERENCE = previous
