"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
import sys
from typing import Any


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.sql.lexer.Lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


#: Reserved words recognised as keywords (upper-cased).  Identifiers equal
#: to one of these (case-insensitively) become KEYWORD tokens.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "AND",
        "OR",
        "NOT",
        "IN",
        "EXISTS",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "AS",
        "ALL",
        "ANY",
        "SOME",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "CREATE",
        "VIEW",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "OUTER",
        "ON",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
    }
)

#: Keyword text in its canonical (upper-case) spelling, interned so every
#: KEYWORD token of a given word shares one string object and keyword
#: comparisons in the parser can start with a pointer check.  The table
#: also carries the lower-case and capitalised spellings so the lexer can
#: resolve the common casings without calling ``str.upper`` at all.
INTERNED_KEYWORDS = {kw: sys.intern(kw) for kw in KEYWORDS}
KEYWORD_SPELLINGS = dict(INTERNED_KEYWORDS)
for _kw, _interned in INTERNED_KEYWORDS.items():
    KEYWORD_SPELLINGS.setdefault(_kw.lower(), _interned)
    KEYWORD_SPELLINGS.setdefault(_kw.capitalize(), _interned)

#: Multi-character operators, longest first so the lexer matches greedily.
MULTI_CHAR_OPERATORS = ("<>", "!=", "<=", ">=", "||")

SINGLE_CHAR_OPERATORS = frozenset("=<>+-*/%")

PUNCTUATION = frozenset("(),.;")


class Token:
    """A single lexical token with its source position (1-based).

    A plain ``__slots__`` class rather than a dataclass: the lexer creates
    one of these per lexeme, so construction cost is part of the parse
    hot path (see ``docs/performance.md``).  Equality compares all four
    fields, matching the frozen-dataclass behaviour it replaces.
    """

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type: TokenType, value: Any, line: int = 1, column: int = 1) -> None:
        self.type = type
        self.value = value
        self.line = line
        self.column = column

    @property
    def upper(self) -> str:
        """The token text upper-cased (useful for keyword comparison)."""
        return str(self.value).upper()

    def is_keyword(self, *words: str) -> bool:
        """True when this token is one of the given keywords."""
        if self.type is not TokenType.KEYWORD:
            return False
        value = self.value
        for word in words:
            if value == word:
                return True
        upper = str(value).upper()
        for word in words:
            if upper == word.upper():
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.type is other.type
            and self.value == other.value
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value, self.line, self.column))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Token(type={self.type!r}, value={self.value!r},"
            f" line={self.line!r}, column={self.column!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.type.value}({self.value!r})"
