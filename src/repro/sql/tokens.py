"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.sql.lexer.Lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


#: Reserved words recognised as keywords (upper-cased).  Identifiers equal
#: to one of these (case-insensitively) become KEYWORD tokens.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "AND",
        "OR",
        "NOT",
        "IN",
        "EXISTS",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "AS",
        "ALL",
        "ANY",
        "SOME",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "CREATE",
        "VIEW",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "OUTER",
        "ON",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
    }
)

#: Multi-character operators, longest first so the lexer matches greedily.
MULTI_CHAR_OPERATORS = ("<>", "!=", "<=", ">=", "||")

SINGLE_CHAR_OPERATORS = frozenset("=<>+-*/%")

PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    value: Any
    line: int = 1
    column: int = 1

    @property
    def upper(self) -> str:
        """The token text upper-cased (useful for keyword comparison)."""
        return str(self.value).upper()

    def is_keyword(self, *words: str) -> bool:
        """True when this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.upper in {w.upper() for w in words}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.type.value}({self.value!r})"
