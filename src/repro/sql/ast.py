"""Abstract syntax tree for the supported SQL dialect.

Every node is an immutable dataclass.  The tree is deliberately close to
SQL's surface structure (SELECT/FROM/WHERE/GROUP BY/HAVING/ORDER BY)
because the query-graph builder of Section 3.2 mirrors exactly those
compartments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence, Tuple, Union


class Node:
    """Base class for all AST nodes."""

    # Empty slots on the bases keep the (slotted) dataclass nodes free of
    # a per-instance ``__dict__``: AST nodes are created in the parse hot
    # path and read everywhere downstream.
    __slots__ = ()

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (used by generic walkers)."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Base class for scalar and boolean expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL (``value is None``)."""

    value: Any

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference such as ``m.title`` or ``title``."""

    column: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column

    def __str__(self) -> str:
        return self.qualified


@dataclass(frozen=True, slots=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a select list or inside ``count(*)``."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True, slots=True)
class BinaryOp(Expression):
    """A binary operation: comparison, arithmetic, AND/OR, LIKE or string concat."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class UnaryOp(Expression):
    """A unary operation: ``NOT expr`` or ``-expr``."""

    op: str
    operand: Expression

    def children(self) -> Iterator[Node]:
        yield self.operand

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True, slots=True)
class FunctionCall(Expression):
    """A function application, including aggregates like ``count(distinct x)``."""

    name: str
    args: Tuple[Expression, ...] = ()
    distinct: bool = False

    AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in self.AGGREGATES

    def children(self) -> Iterator[Node]:
        return iter(self.args)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.lower()}({inner})"


@dataclass(frozen=True, slots=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand

    def __str__(self) -> str:
        tail = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {tail})"


@dataclass(frozen=True, slots=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield self.low
        yield self.high

    def __str__(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {word} {self.low} AND {self.high})"


@dataclass(frozen=True, slots=True)
class InList(Expression):
    """``expr [NOT] IN (value, value, ...)`` with literal values."""

    operand: Expression
    values: Tuple[Expression, ...]
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield from self.values

    def __str__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        inner = ", ".join(str(v) for v in self.values)
        return f"({self.operand} {word} ({inner}))"


@dataclass(frozen=True, slots=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)`` — the nesting connector of query Q5."""

    operand: Expression
    subquery: "SelectStatement"
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield self.subquery

    def __str__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {word} ({self.subquery}))"


@dataclass(frozen=True, slots=True)
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)`` — the connector of query Q6."""

    subquery: "SelectStatement"
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.subquery

    def __str__(self) -> str:
        word = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({word} ({self.subquery}))"


@dataclass(frozen=True, slots=True)
class QuantifiedComparison(Expression):
    """``expr op ALL/ANY (SELECT ...)`` — the connector of query Q9."""

    operand: Expression
    op: str
    quantifier: str  # "ALL" or "ANY"
    subquery: "SelectStatement"

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield self.subquery

    def __str__(self) -> str:
        return f"({self.operand} {self.op} {self.quantifier} ({self.subquery}))"


@dataclass(frozen=True, slots=True)
class ScalarSubquery(Expression):
    """A subquery used as a scalar value, e.g. in Q7's HAVING clause."""

    subquery: "SelectStatement"

    def children(self) -> Iterator[Node]:
        yield self.subquery

    def __str__(self) -> str:
        return f"({self.subquery})"


@dataclass(frozen=True, slots=True)
class CaseExpression(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: Tuple[Tuple[Expression, Expression], ...]
    else_value: Optional[Expression] = None

    def children(self) -> Iterator[Node]:
        for cond, value in self.whens:
            yield cond
            yield value
        if self.else_value is not None:
            yield self.else_value

    def __str__(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond} THEN {value}")
        if self.else_value is not None:
            parts.append(f"ELSE {self.else_value}")
        parts.append("END")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SelectItem(Node):
    """One entry of the select list: an expression with an optional alias."""

    expression: Expression
    alias: Optional[str] = None

    def children(self) -> Iterator[Node]:
        yield self.expression

    @property
    def output_name(self) -> str:
        """The column name this item produces in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.qualified
        return str(self.expression)

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expression} AS {self.alias}"
        return str(self.expression)


@dataclass(frozen=True, slots=True)
class TableRef(Node):
    """A FROM-clause entry: relation name plus optional alias (tuple variable)."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the rest of the query."""
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True, slots=True)
class OrderItem(Node):
    """One ORDER BY entry."""

    expression: Expression
    descending: bool = False

    def children(self) -> Iterator[Node]:
        yield self.expression

    def __str__(self) -> str:
        return f"{self.expression} DESC" if self.descending else str(self.expression)


class Statement(Node):
    """Base class for executable statements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class SelectStatement(Statement):
    """A SELECT query with the full clause structure of Figure 2."""

    select_items: Tuple[SelectItem, ...]
    from_tables: Tuple[TableRef, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    distinct: bool = False
    limit: Optional[int] = None
    offset: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield from self.select_items
        yield from self.from_tables
        if self.where is not None:
            yield self.where
        yield from self.group_by
        if self.having is not None:
            yield self.having
        yield from self.order_by

    # -- convenience views used by the query-graph builder -----------------

    @property
    def table_bindings(self) -> Tuple[str, ...]:
        return tuple(t.binding for t in self.from_tables)

    def has_aggregates(self) -> bool:
        """True when the select list or HAVING clause uses an aggregate."""
        scopes: Sequence[Optional[Node]] = (*self.select_items, self.having)
        for scope in scopes:
            if scope is None:
                continue
            for node in _walk_without_subqueries(scope):
                if isinstance(node, FunctionCall) and node.is_aggregate:
                    return True
        return bool(self.group_by)

    def subqueries(self) -> Tuple["SelectStatement", ...]:
        """All immediate subqueries nested anywhere in this statement."""
        found = []
        for node in _walk_without_subqueries(self, include_root_children=True):
            if isinstance(node, (InSubquery, Exists, QuantifiedComparison, ScalarSubquery)):
                found.append(node.subquery)
        return tuple(found)

    def is_nested(self) -> bool:
        return bool(self.subqueries())

    def __str__(self) -> str:
        from repro.sql.printer import to_sql

        return to_sql(self)


def _walk_without_subqueries(
    node: Node, include_root_children: bool = False
) -> Iterator[Node]:
    """Walk ``node`` but do not descend *into* nested SELECT statements.

    The nested statements themselves are yielded (wrapped in their
    connector nodes) so callers can detect nesting without conflating the
    inner query's aggregates/conditions with the outer query's.
    """
    yield node
    for child in node.children():
        if isinstance(child, SelectStatement) and not include_root_children:
            continue
        if isinstance(child, SelectStatement):
            # include_root_children only applies at the first level
            yield child
            continue
        yield from _walk_without_subqueries(child)


@dataclass(frozen=True, slots=True)
class InsertStatement(Statement):
    """``INSERT INTO table (cols) VALUES (...), (...)``."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expression, ...], ...]

    def children(self) -> Iterator[Node]:
        for row in self.rows:
            yield from row


@dataclass(frozen=True, slots=True)
class UpdateStatement(Statement):
    """``UPDATE table SET col = expr, ... [WHERE cond]``."""

    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None
    alias: Optional[str] = None

    def children(self) -> Iterator[Node]:
        for _, expr in self.assignments:
            yield expr
        if self.where is not None:
            yield self.where


@dataclass(frozen=True, slots=True)
class DeleteStatement(Statement):
    """``DELETE FROM table [WHERE cond]``."""

    table: str
    where: Optional[Expression] = None
    alias: Optional[str] = None

    def children(self) -> Iterator[Node]:
        if self.where is not None:
            yield self.where


@dataclass(frozen=True, slots=True)
class CreateViewStatement(Statement):
    """``CREATE VIEW name AS SELECT ...``."""

    name: str
    query: SelectStatement

    def children(self) -> Iterator[Node]:
        yield self.query


# ---------------------------------------------------------------------------
# Small expression helpers shared by the rewriter and translators
# ---------------------------------------------------------------------------


def conjuncts(expression: Optional[Expression]) -> Tuple[Expression, ...]:
    """Split a WHERE/HAVING expression into its top-level AND-ed conjuncts."""
    if expression is None:
        return ()
    if isinstance(expression, BinaryOp) and expression.op.upper() == "AND":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return (expression,)


def conjoin(expressions: Sequence[Expression]) -> Optional[Expression]:
    """Combine expressions with AND (returns ``None`` for an empty sequence)."""
    result: Optional[Expression] = None
    for expression in expressions:
        result = expression if result is None else BinaryOp("AND", result, expression)
    return result


def column_refs(node: Node) -> Tuple[ColumnRef, ...]:
    """All column references appearing in ``node`` (including subqueries)."""
    return tuple(n for n in node.walk() if isinstance(n, ColumnRef))


def is_join_condition(expression: Expression) -> bool:
    """True for an equality between two column references (a join predicate)."""
    return (
        isinstance(expression, BinaryOp)
        and expression.op == "="
        and isinstance(expression.left, ColumnRef)
        and isinstance(expression.right, ColumnRef)
    )


def is_selection_condition(expression: Expression) -> bool:
    """True for a comparison between a column reference and a literal."""
    if not isinstance(expression, BinaryOp):
        return False
    if expression.op.upper() in ("AND", "OR"):
        return False
    left_col = isinstance(expression.left, ColumnRef)
    right_col = isinstance(expression.right, ColumnRef)
    left_lit = isinstance(expression.left, Literal)
    right_lit = isinstance(expression.right, Literal)
    return (left_col and right_lit) or (left_lit and right_col)
