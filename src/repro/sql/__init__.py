"""SQL front-end: lexer, parser, AST, printer and semantic validator."""

from repro.sql import ast
from repro.sql.lexer import (
    Lexer,
    RegexLexer,
    tokenize,
    tokenize_reference,
    use_reference_lexer,
)
from repro.sql.parser import Parser, parse_select, parse_sql
from repro.sql.printer import expression_to_sql, to_sql
from repro.sql.shape import batch_key, sql_shape
from repro.sql.validator import ValidationResult, Validator, validate

__all__ = [
    "Lexer",
    "Parser",
    "RegexLexer",
    "ValidationResult",
    "Validator",
    "ast",
    "batch_key",
    "expression_to_sql",
    "parse_select",
    "parse_sql",
    "sql_shape",
    "to_sql",
    "tokenize",
    "tokenize_reference",
    "use_reference_lexer",
    "validate",
]
