"""Render AST statements back to SQL text.

The printer produces canonical, deterministic SQL which is used for
round-trip tests (parse → print → parse yields an equal AST) and for
displaying rewritten queries (e.g. the flattened form of a nested query)
next to their natural-language translation.
"""

from __future__ import annotations

from typing import List

from repro.sql import ast


def to_sql(node: ast.Node) -> str:
    """Render a statement or expression as SQL text."""
    if isinstance(node, ast.SelectStatement):
        return _select_to_sql(node)
    if isinstance(node, ast.InsertStatement):
        return _insert_to_sql(node)
    if isinstance(node, ast.UpdateStatement):
        return _update_to_sql(node)
    if isinstance(node, ast.DeleteStatement):
        return _delete_to_sql(node)
    if isinstance(node, ast.CreateViewStatement):
        return f"CREATE VIEW {node.name} AS {_select_to_sql(node.query)}"
    if isinstance(node, ast.Expression):
        return expression_to_sql(node)
    raise TypeError(f"cannot render {type(node).__name__} as SQL")  # pragma: no cover


def _select_to_sql(query: ast.SelectStatement) -> str:
    parts: List[str] = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item_to_sql(item) for item in query.select_items))
    if query.from_tables:
        parts.append("FROM")
        parts.append(", ".join(_table_ref_to_sql(t) for t in query.from_tables))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(expression_to_sql(query.where, top_level=True))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(expression_to_sql(e) for e in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(expression_to_sql(query.having, top_level=True))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_order_item_to_sql(o) for o in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def _select_item_to_sql(item: ast.SelectItem) -> str:
    text = expression_to_sql(item.expression)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _table_ref_to_sql(table: ast.TableRef) -> str:
    if table.alias:
        return f"{table.name} {table.alias}"
    return table.name


def _order_item_to_sql(item: ast.OrderItem) -> str:
    text = expression_to_sql(item.expression)
    return f"{text} DESC" if item.descending else text


def _insert_to_sql(statement: ast.InsertStatement) -> str:
    columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
    rows = ", ".join(
        "(" + ", ".join(expression_to_sql(v) for v in row) + ")" for row in statement.rows
    )
    return f"INSERT INTO {statement.table}{columns} VALUES {rows}"


def _update_to_sql(statement: ast.UpdateStatement) -> str:
    alias = f" {statement.alias}" if statement.alias else ""
    sets = ", ".join(
        f"{column} = {expression_to_sql(value)}" for column, value in statement.assignments
    )
    text = f"UPDATE {statement.table}{alias} SET {sets}"
    if statement.where is not None:
        text += f" WHERE {expression_to_sql(statement.where, top_level=True)}"
    return text


def _delete_to_sql(statement: ast.DeleteStatement) -> str:
    alias = f" {statement.alias}" if statement.alias else ""
    text = f"DELETE FROM {statement.table}{alias}"
    if statement.where is not None:
        text += f" WHERE {expression_to_sql(statement.where, top_level=True)}"
    return text


def expression_to_sql(expression: ast.Expression, top_level: bool = False) -> str:
    """Render an expression; ``top_level`` drops the outermost parentheses."""
    text = _expr(expression)
    if top_level and text.startswith("(") and text.endswith(")") and _balanced(text[1:-1]):
        return text[1:-1]
    return text


def _balanced(text: str) -> bool:
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


def _expr(expression: ast.Expression) -> str:
    if isinstance(expression, ast.Literal):
        return str(expression)
    if isinstance(expression, ast.ColumnRef):
        return expression.qualified
    if isinstance(expression, ast.Star):
        return str(expression)
    if isinstance(expression, ast.BinaryOp):
        return f"({_expr(expression.left)} {expression.op} {_expr(expression.right)})"
    if isinstance(expression, ast.UnaryOp):
        return f"({expression.op} {_expr(expression.operand)})"
    if isinstance(expression, ast.FunctionCall):
        inner = ", ".join(_expr(a) for a in expression.args)
        if expression.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expression.name.lower()}({inner})"
    if isinstance(expression, ast.IsNull):
        suffix = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"({_expr(expression.operand)} {suffix})"
    if isinstance(expression, ast.Between):
        word = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (
            f"({_expr(expression.operand)} {word} {_expr(expression.low)}"
            f" AND {_expr(expression.high)})"
        )
    if isinstance(expression, ast.InList):
        word = "NOT IN" if expression.negated else "IN"
        inner = ", ".join(_expr(v) for v in expression.values)
        return f"({_expr(expression.operand)} {word} ({inner}))"
    if isinstance(expression, ast.InSubquery):
        word = "NOT IN" if expression.negated else "IN"
        return f"({_expr(expression.operand)} {word} ({_select_to_sql(expression.subquery)}))"
    if isinstance(expression, ast.Exists):
        word = "NOT EXISTS" if expression.negated else "EXISTS"
        return f"({word} ({_select_to_sql(expression.subquery)}))"
    if isinstance(expression, ast.QuantifiedComparison):
        return (
            f"({_expr(expression.operand)} {expression.op} {expression.quantifier}"
            f" ({_select_to_sql(expression.subquery)}))"
        )
    if isinstance(expression, ast.ScalarSubquery):
        return f"({_select_to_sql(expression.subquery)})"
    if isinstance(expression, ast.CaseExpression):
        parts = ["CASE"]
        for cond, value in expression.whens:
            parts.append(f"WHEN {_expr(cond)} THEN {_expr(value)}")
        if expression.else_value is not None:
            parts.append(f"ELSE {_expr(expression.else_value)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot render expression {type(expression).__name__}")  # pragma: no cover
