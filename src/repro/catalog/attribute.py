"""Attribute (column) definitions for catalog relations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.types import DataType


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a relation.

    Beyond the usual DBMS metadata (type, nullability, primary-key flag),
    an attribute carries NLG-oriented metadata used by the translators:

    ``caption``
        A human-friendly phrase used when the attribute is mentioned in a
        narrative (defaults to the lower-cased attribute name with
        underscores replaced by spaces, e.g. ``birth date`` for ``bdate``).
    ``heading``
        Whether this attribute is the *heading attribute* of its relation:
        the attribute that is most characteristic of the relation's tuples
        and is normally used as the subject of generated sentences
        (paper, Section 2.2 — ``TITLE`` is the heading attribute of
        ``MOVIE``).
    ``weight``
        Relative interestingness used by the ranking-bounded narrator
        (paper, Section 2.2, "weights on its nodes and/or edges").
    """

    name: str
    dtype: DataType = DataType.TEXT
    nullable: bool = True
    primary_key: bool = False
    caption: Optional[str] = None
    heading: bool = False
    weight: float = 1.0
    description: str = ""
    relation_name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")

    @property
    def qualified_name(self) -> str:
        """``relation.attribute`` when the owning relation is known."""
        if self.relation_name:
            return f"{self.relation_name}.{self.name}"
        return self.name

    @property
    def display_caption(self) -> str:
        """The phrase used for this attribute inside narratives."""
        if self.caption:
            return self.caption
        return self.name.lower().replace("_", " ")

    def renamed(self, relation_name: str) -> "Attribute":
        """Return a copy of this attribute bound to ``relation_name``."""
        return Attribute(
            name=self.name,
            dtype=self.dtype,
            nullable=self.nullable,
            primary_key=self.primary_key,
            caption=self.caption,
            heading=self.heading,
            weight=self.weight,
            description=self.description,
            relation_name=relation_name,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.qualified_name
