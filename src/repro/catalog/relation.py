"""Relation (table) definitions for the catalog."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.attribute import Attribute
from repro.errors import DuplicateAttributeError, UnknownAttributeError


class Relation:
    """A relation schema: an ordered collection of :class:`Attribute` objects.

    Besides the structural definition the relation carries the NLG metadata
    the paper attaches to schema-graph nodes:

    ``concept``
        The *conceptual meaning* of the relation — what its tuples
        represent in the real world (``MOVIES`` conceptually represents
        "movies").  Used when a narrative prefers the concept over the
        heading attribute ("Find movies where Brad Pitt plays").
    ``heading attribute``
        The attribute most characteristic of the relation's tuples, used as
        the subject of generated sentences (``TITLE`` for ``MOVIES``).
    ``weight``
        Relative interestingness of the relation used by ranking-bounded
        narration.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        concept: Optional[str] = None,
        heading_attribute: Optional[str] = None,
        weight: float = 1.0,
        description: str = "",
        bridge: bool = False,
    ) -> None:
        if not name:
            raise ValueError("relation name must be non-empty")
        if not attributes:
            raise ValueError(f"relation {name!r} must have at least one attribute")
        self.name = name
        self.concept = concept or name.lower().rstrip("s").replace("_", " ")
        self.weight = weight
        self.description = description
        #: ``bridge`` marks pure linking relations (e.g. DIRECTED, CAST):
        #: relations that participate in translation only to connect other
        #: relations, with none of their attributes contributing to the
        #: narrative (paper, Section 2.2, "DIRECTED participates ... only for
        #: connecting the other two").
        self.bridge = bridge

        self._attributes: Dict[str, Attribute] = {}
        self._order: List[str] = []
        for attribute in attributes:
            bound = attribute.renamed(name)
            if bound.name in self._attributes:
                raise DuplicateAttributeError(
                    f"attribute {bound.name!r} defined twice on relation {name!r}"
                )
            self._attributes[bound.name] = bound
            self._order.append(bound.name)

        # Attributes never change after construction, so case-insensitive
        # lookups can go through one precomputed lowered map instead of a
        # linear scan (the validator and builder resolve columns per query).
        self._lowered: Dict[str, Attribute] = {}
        for name in self._order:  # first declaration wins on case collisions
            self._lowered.setdefault(name.lower(), self._attributes[name])
        self._heading_name = self._resolve_heading(heading_attribute)

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes of the relation, in declaration order."""
        return tuple(self._attributes[name] for name in self._order)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def has_attribute(self, name: str) -> bool:
        return self._find(name) is not None

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by (case-insensitive) name."""
        found = self._find(name)
        if found is None:
            raise UnknownAttributeError(
                f"relation {self.name!r} has no attribute {name!r}"
                f" (available: {', '.join(self._order)})"
            )
        return found

    def _find(self, name: str) -> Optional[Attribute]:
        found = self._attributes.get(name)
        if found is not None:
            return found
        return self._lowered.get(name.lower())

    # ------------------------------------------------------------------
    # Keys and NLG metadata
    # ------------------------------------------------------------------

    @property
    def primary_key(self) -> Tuple[Attribute, ...]:
        """The primary-key attributes (possibly empty for keyless relations)."""
        return tuple(a for a in self.attributes if a.primary_key)

    @property
    def primary_key_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.primary_key)

    @property
    def heading_attribute(self) -> Attribute:
        """The heading attribute used as sentence subject (paper §2.2)."""
        return self._attributes[self._heading_name]

    def _resolve_heading(self, requested: Optional[str]) -> str:
        if requested is not None:
            found = self._find(requested)
            if found is None:
                raise UnknownAttributeError(
                    f"heading attribute {requested!r} not found on relation {self.name!r}"
                )
            return found.name
        flagged = [a.name for a in self.attributes if a.heading]
        if flagged:
            return flagged[0]
        # Heuristic fallback: prefer a text attribute that is not part of the
        # key (a name/title like column), then the first non-key attribute,
        # then the first attribute.
        non_key_text = [
            a.name
            for a in self.attributes
            if not a.primary_key and a.dtype.value == "text"
        ]
        if non_key_text:
            return non_key_text[0]
        non_key = [a.name for a in self.attributes if not a.primary_key]
        if non_key:
            return non_key[0]
        return self._order[0]

    def with_heading(self, attribute_name: str) -> "Relation":
        """Return a copy of the relation with a different heading attribute.

        Used by personalised narration profiles (paper, Section 2.2:
        "different heading attributes for relations ... in order to produce
        customized narratives").
        """
        return Relation(
            name=self.name,
            attributes=self.attributes,
            concept=self.concept,
            heading_attribute=attribute_name,
            weight=self.weight,
            description=self.description,
            bridge=self.bridge,
        )

    @property
    def non_key_attributes(self) -> Tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if not a.primary_key)

    @property
    def descriptive_attributes(self) -> Tuple[Attribute, ...]:
        """Attributes worth narrating: non-key and not the heading attribute."""
        heading = self.heading_attribute.name
        return tuple(
            a for a in self.attributes if not a.primary_key and a.name != heading
        )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_attribute(name)

    def __iter__(self) -> Iterable[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attribute_names))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        cols = ", ".join(self._order)
        return f"Relation({self.name}: {cols})"
