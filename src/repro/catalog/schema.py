"""Database schema: a named collection of relations and foreign keys."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.foreign_key import ForeignKey
from repro.catalog.relation import Relation
from repro.errors import (
    DuplicateRelationError,
    InvalidForeignKeyError,
    InvalidSchemaError,
    UnknownRelationError,
)


class Schema:
    """An immutable database schema.

    The schema is the source of truth for both the storage engine (which
    tables exist, what their constraints are) and the schema graph (which
    join edges exist).  Construction validates every foreign key against
    the relations it references.
    """

    def __init__(
        self,
        name: str,
        relations: Sequence[Relation],
        foreign_keys: Sequence[ForeignKey] = (),
        description: str = "",
    ) -> None:
        if not name:
            raise ValueError("schema name must be non-empty")
        self.name = name
        self.description = description

        self._relations: Dict[str, Relation] = {}
        self._order: List[str] = []
        for relation in relations:
            if relation.name in self._relations:
                raise DuplicateRelationError(
                    f"relation {relation.name!r} defined twice in schema {name!r}"
                )
            self._relations[relation.name] = relation
            self._order.append(relation.name)

        # The schema is immutable, so case-insensitive relation lookup and
        # the per-relation foreign-key groupings are precomputed once
        # instead of scanned per call (they sit on the translation and
        # narration hot paths).
        self._lowered: Dict[str, Relation] = {}
        for rel_name in self._order:  # first declaration wins on case collisions
            self._lowered.setdefault(rel_name.lower(), self._relations[rel_name])

        self._foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self._foreign_keys:
            self._validate_foreign_key(fk)

        self._fks_from: Dict[str, Tuple[ForeignKey, ...]] = {}
        self._fks_to: Dict[str, Tuple[ForeignKey, ...]] = {}
        for fk in self._foreign_keys:
            self._fks_from[fk.source_relation] = (
                self._fks_from.get(fk.source_relation, ()) + (fk,)
            )
            self._fks_to[fk.target_relation] = (
                self._fks_to.get(fk.target_relation, ()) + (fk,)
            )
        self._fks_between: Dict[Tuple[str, str], Tuple[ForeignKey, ...]] = {}

    # ------------------------------------------------------------------
    # Relation access
    # ------------------------------------------------------------------

    @property
    def relations(self) -> Tuple[Relation, ...]:
        return tuple(self._relations[name] for name in self._order)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def has_relation(self, name: str) -> bool:
        return self._find(name) is not None

    def relation(self, name: str) -> Relation:
        """Look up a relation by (case-insensitive) name."""
        found = self._find(name)
        if found is None:
            raise UnknownRelationError(
                f"schema {self.name!r} has no relation {name!r}"
                f" (available: {', '.join(self._order)})"
            )
        return found

    def _find(self, name: str) -> Optional[Relation]:
        found = self._relations.get(name)
        if found is not None:
            return found
        return self._lowered.get(name.lower())

    # ------------------------------------------------------------------
    # Foreign keys
    # ------------------------------------------------------------------

    @property
    def foreign_keys(self) -> Tuple[ForeignKey, ...]:
        return self._foreign_keys

    def foreign_keys_from(self, relation_name: str) -> Tuple[ForeignKey, ...]:
        """Foreign keys whose source is ``relation_name``."""
        canonical = self.relation(relation_name).name
        return self._fks_from.get(canonical, ())

    def foreign_keys_to(self, relation_name: str) -> Tuple[ForeignKey, ...]:
        """Foreign keys whose target is ``relation_name``."""
        canonical = self.relation(relation_name).name
        return self._fks_to.get(canonical, ())

    def foreign_keys_between(
        self, first: str, second: str
    ) -> Tuple[ForeignKey, ...]:
        """Foreign keys connecting the two relations, in either direction."""
        a = self.relation(first).name
        b = self.relation(second).name
        cached = self._fks_between.get((a, b))
        if cached is None:
            cached = tuple(
                fk
                for fk in self._foreign_keys
                if {fk.source_relation, fk.target_relation} == {a, b}
                or (a == b and fk.source_relation == fk.target_relation == a)
            )
            self._fks_between[(a, b)] = cached
        return cached

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        if not self.has_relation(fk.source_relation):
            raise InvalidForeignKeyError(
                f"foreign key {fk} references unknown source relation"
                f" {fk.source_relation!r}"
            )
        if not self.has_relation(fk.target_relation):
            raise InvalidForeignKeyError(
                f"foreign key {fk} references unknown target relation"
                f" {fk.target_relation!r}"
            )
        source = self.relation(fk.source_relation)
        target = self.relation(fk.target_relation)
        for attr in fk.source_attributes:
            if not source.has_attribute(attr):
                raise InvalidForeignKeyError(
                    f"foreign key {fk} references unknown attribute"
                    f" {fk.source_relation}.{attr}"
                )
        for attr in fk.target_attributes:
            if not target.has_attribute(attr):
                raise InvalidForeignKeyError(
                    f"foreign key {fk} references unknown attribute"
                    f" {fk.target_relation}.{attr}"
                )

    # ------------------------------------------------------------------
    # Whole-schema validation and derived views
    # ------------------------------------------------------------------

    def validate(self, require_primary_keys: bool = False) -> None:
        """Check schema-wide invariants.

        When ``require_primary_keys`` is true every relation must declare a
        primary key; join-edge construction and FK enforcement rely on it.
        """
        if require_primary_keys:
            missing = [r.name for r in self.relations if not r.primary_key]
            if missing:
                raise InvalidSchemaError(
                    "relations without a primary key: " + ", ".join(missing)
                )

    def adjacent_relations(self, relation_name: str) -> Tuple[str, ...]:
        """Relations connected to ``relation_name`` by at least one FK."""
        canonical = self.relation(relation_name).name
        neighbours: List[str] = []
        for fk in self._foreign_keys:
            if fk.source_relation == canonical and fk.target_relation != canonical:
                if fk.target_relation not in neighbours:
                    neighbours.append(fk.target_relation)
            elif fk.target_relation == canonical and fk.source_relation != canonical:
                if fk.source_relation not in neighbours:
                    neighbours.append(fk.source_relation)
        return tuple(neighbours)

    def subschema(self, relation_names: Iterable[str]) -> "Schema":
        """A schema restricted to ``relation_names`` and the FKs among them."""
        keep = {self.relation(name).name for name in relation_names}
        relations = [r for r in self.relations if r.name in keep]
        fks = [
            fk
            for fk in self._foreign_keys
            if fk.source_relation in keep and fk.target_relation in keep
        ]
        return Schema(
            name=f"{self.name}_subset",
            relations=relations,
            foreign_keys=fks,
            description=self.description,
        )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_relation(name)

    def __iter__(self) -> Iterable[Relation]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Schema({self.name}: {len(self._order)} relations,"
            f" {len(self._foreign_keys)} foreign keys)"
        )
