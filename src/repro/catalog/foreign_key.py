"""Foreign-key (join) relationships between catalog relations.

In the paper's schema-graph model (Section 2.2) a *join edge* emanates
from a relation node and ends at another relation node, representing a
potential join through a primary key / foreign key relationship.  The
catalog records those relationships as :class:`ForeignKey` objects; the
graph layer turns each of them into a join edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from ``source`` columns to ``target`` columns.

    ``verb_phrase`` is optional NLG metadata: the phrase that describes the
    relationship when it is verbalised, e.g. for ``DIRECTED.did ->
    DIRECTOR.id`` the phrase could be ``"directed by"``.  When absent the
    translators fall back to generic template labels.
    """

    source_relation: str
    source_attributes: Tuple[str, ...]
    target_relation: str
    target_attributes: Tuple[str, ...]
    name: Optional[str] = None
    verb_phrase: Optional[str] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if len(self.source_attributes) != len(self.target_attributes):
            raise ValueError(
                "foreign key must have matching source/target attribute counts"
            )
        if not self.source_attributes:
            raise ValueError("foreign key must reference at least one attribute")

    @property
    def display_name(self) -> str:
        """A stable identifier for the constraint."""
        if self.name:
            return self.name
        cols = "_".join(self.source_attributes)
        return f"fk_{self.source_relation}_{cols}_{self.target_relation}".lower()

    def column_pairs(self) -> Sequence[Tuple[str, str]]:
        """Pairs of (source attribute, target attribute) joined by this FK."""
        return tuple(zip(self.source_attributes, self.target_attributes))

    def reversed(self) -> "ForeignKey":
        """The same relationship seen from the target relation's side."""
        return ForeignKey(
            source_relation=self.target_relation,
            source_attributes=self.target_attributes,
            target_relation=self.source_relation,
            target_attributes=self.source_attributes,
            name=(self.name + "_rev") if self.name else None,
            verb_phrase=self.verb_phrase,
            weight=self.weight,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        src = ", ".join(self.source_attributes)
        dst = ", ".join(self.target_attributes)
        return f"{self.source_relation}({src}) -> {self.target_relation}({dst})"
