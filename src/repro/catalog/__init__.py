"""Relational catalog: schemas, relations, attributes, foreign keys.

This package is the structural substrate of the reproduction: the
schema-graph model of the paper (Section 2.2) is derived from a
:class:`Schema`, and both the storage engine and the SQL validator consult
it.
"""

from repro.catalog.attribute import Attribute
from repro.catalog.builder import RelationBuilder, SchemaBuilder
from repro.catalog.foreign_key import ForeignKey
from repro.catalog.relation import Relation
from repro.catalog.schema import Schema
from repro.catalog.types import (
    DataType,
    check_value,
    coerce_value,
    infer_type,
    is_valid_value,
    render_value,
)

__all__ = [
    "Attribute",
    "DataType",
    "ForeignKey",
    "Relation",
    "RelationBuilder",
    "Schema",
    "SchemaBuilder",
    "check_value",
    "coerce_value",
    "infer_type",
    "is_valid_value",
    "render_value",
]
