"""Fluent builder for constructing schemas programmatically.

Example
-------
::

    schema = (
        SchemaBuilder("movies")
        .relation("MOVIES", concept="movie")
            .column("id", "integer", primary_key=True)
            .column("title", "text", heading=True)
            .column("year", "integer")
            .done()
        .relation("DIRECTOR", concept="director")
            .column("id", "integer", primary_key=True)
            .column("name", "text", heading=True)
            .done()
        .foreign_key("DIRECTED", ["did"], "DIRECTOR", ["id"], verb="directed by")
        .build()
    )
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.catalog.attribute import Attribute
from repro.catalog.foreign_key import ForeignKey
from repro.catalog.relation import Relation
from repro.catalog.schema import Schema
from repro.catalog.types import DataType
from repro.errors import UnknownRelationError

TypeSpec = Union[str, DataType]


def _as_type(spec: TypeSpec) -> DataType:
    if isinstance(spec, DataType):
        return spec
    try:
        return DataType(spec.lower())
    except ValueError as exc:
        names = ", ".join(t.value for t in DataType)
        raise ValueError(f"unknown data type {spec!r} (expected one of {names})") from exc


class RelationBuilder:
    """Builder for a single relation; returned by :meth:`SchemaBuilder.relation`."""

    def __init__(
        self,
        parent: "SchemaBuilder",
        name: str,
        concept: Optional[str] = None,
        weight: float = 1.0,
        description: str = "",
        bridge: bool = False,
    ) -> None:
        self._parent = parent
        self._name = name
        self._concept = concept
        self._weight = weight
        self._description = description
        self._bridge = bridge
        self._heading: Optional[str] = None
        self._attributes: List[Attribute] = []

    def column(
        self,
        name: str,
        dtype: TypeSpec = DataType.TEXT,
        primary_key: bool = False,
        nullable: bool = True,
        heading: bool = False,
        caption: Optional[str] = None,
        weight: float = 1.0,
        description: str = "",
    ) -> "RelationBuilder":
        """Add a column to the relation under construction."""
        self._attributes.append(
            Attribute(
                name=name,
                dtype=_as_type(dtype),
                nullable=nullable and not primary_key,
                primary_key=primary_key,
                caption=caption,
                heading=heading,
                weight=weight,
                description=description,
            )
        )
        if heading:
            self._heading = name
        return self

    def heading(self, attribute_name: str) -> "RelationBuilder":
        """Declare the heading attribute explicitly."""
        self._heading = attribute_name
        return self

    def done(self) -> "SchemaBuilder":
        """Finish this relation and return to the schema builder."""
        relation = Relation(
            name=self._name,
            attributes=self._attributes,
            concept=self._concept,
            heading_attribute=self._heading,
            weight=self._weight,
            description=self._description,
            bridge=self._bridge,
        )
        self._parent._add_relation(relation)
        return self._parent


class SchemaBuilder:
    """Fluent builder producing an immutable :class:`Schema`."""

    def __init__(self, name: str, description: str = "") -> None:
        self._name = name
        self._description = description
        self._relations: List[Relation] = []
        self._relation_names: Dict[str, Relation] = {}
        self._foreign_keys: List[ForeignKey] = []

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    def relation(
        self,
        name: str,
        concept: Optional[str] = None,
        weight: float = 1.0,
        description: str = "",
        bridge: bool = False,
    ) -> RelationBuilder:
        """Start defining a relation; finish with :meth:`RelationBuilder.done`."""
        return RelationBuilder(
            self,
            name,
            concept=concept,
            weight=weight,
            description=description,
            bridge=bridge,
        )

    def add_relation(self, relation: Relation) -> "SchemaBuilder":
        """Add a pre-built :class:`Relation`."""
        self._add_relation(relation)
        return self

    def _add_relation(self, relation: Relation) -> None:
        self._relations.append(relation)
        self._relation_names[relation.name] = relation

    # ------------------------------------------------------------------
    # Foreign keys
    # ------------------------------------------------------------------

    def foreign_key(
        self,
        source: str,
        source_columns: Sequence[str],
        target: str,
        target_columns: Sequence[str],
        verb: Optional[str] = None,
        name: Optional[str] = None,
        weight: float = 1.0,
    ) -> "SchemaBuilder":
        """Register a foreign key from ``source`` columns to ``target`` columns."""
        for rel in (source, target):
            if rel not in self._relation_names:
                raise UnknownRelationError(
                    f"foreign key references relation {rel!r} which has not been"
                    " defined yet; define relations before foreign keys"
                )
        self._foreign_keys.append(
            ForeignKey(
                source_relation=source,
                source_attributes=tuple(source_columns),
                target_relation=target,
                target_attributes=tuple(target_columns),
                name=name,
                verb_phrase=verb,
                weight=weight,
            )
        )
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self, require_primary_keys: bool = False) -> Schema:
        """Produce the immutable schema, validating foreign keys."""
        schema = Schema(
            name=self._name,
            relations=self._relations,
            foreign_keys=self._foreign_keys,
            description=self._description,
        )
        schema.validate(require_primary_keys=require_primary_keys)
        return schema
