"""Scalar data types supported by the catalog and the storage engine.

The paper's examples only require integers, strings and dates, but the
type system is kept general enough for realistic schemas: each type knows
how to validate a Python value, coerce text (e.g. values read from CSV
files), and render a value for use inside a generated narrative.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Optional

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Enumeration of scalar types understood by the engine."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_PY_TYPES = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (int, float),
    DataType.TEXT: (str,),
    DataType.BOOLEAN: (bool,),
    DataType.DATE: (datetime.date,),
}

_TRUE_WORDS = {"true", "t", "yes", "y", "1"}
_FALSE_WORDS = {"false", "f", "no", "n", "0"}


def is_valid_value(dtype: DataType, value: Any) -> bool:
    """Return ``True`` when ``value`` is acceptable for ``dtype`` (``None`` is)."""
    if value is None:
        return True
    if dtype is DataType.INTEGER and isinstance(value, bool):
        return False
    if dtype is DataType.FLOAT and isinstance(value, bool):
        return False
    return isinstance(value, _PY_TYPES[dtype])


def check_value(dtype: DataType, value: Any, context: str = "") -> Any:
    """Validate ``value`` against ``dtype`` and return it unchanged.

    Raises :class:`TypeMismatchError` when the value does not conform.
    """
    if is_valid_value(dtype, value):
        return value
    where = f" for {context}" if context else ""
    raise TypeMismatchError(
        f"value {value!r} of type {type(value).__name__} is not valid"
        f" for declared type {dtype}{where}"
    )


def coerce_value(dtype: DataType, raw: Any) -> Any:
    """Coerce ``raw`` (typically text from a loader) into a ``dtype`` value.

    ``None`` and the empty string map to ``None``.  Raises
    :class:`TypeMismatchError` when coercion is impossible.
    """
    if raw is None:
        return None
    if isinstance(raw, str) and raw == "":
        return None
    if (
        is_valid_value(dtype, raw)
        and not isinstance(raw, str)
        and not (dtype is DataType.DATE and isinstance(raw, datetime.datetime))
    ):
        return raw
    try:
        if dtype is DataType.INTEGER:
            return int(raw)
        if dtype is DataType.FLOAT:
            return float(raw)
        if dtype is DataType.TEXT:
            return str(raw)
        if dtype is DataType.BOOLEAN:
            return _coerce_bool(raw)
        if dtype is DataType.DATE:
            return _coerce_date(raw)
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(f"cannot coerce {raw!r} to {dtype}") from exc
    raise TypeMismatchError(f"cannot coerce {raw!r} to {dtype}")  # pragma: no cover


def _coerce_bool(raw: Any) -> bool:
    if isinstance(raw, bool):
        return raw
    text = str(raw).strip().lower()
    if text in _TRUE_WORDS:
        return True
    if text in _FALSE_WORDS:
        return False
    raise ValueError(f"not a boolean: {raw!r}")


def _coerce_date(raw: Any) -> datetime.date:
    if isinstance(raw, datetime.datetime):
        return raw.date()
    if isinstance(raw, datetime.date):
        return raw
    return datetime.date.fromisoformat(str(raw).strip())


def render_value(value: Any, dtype: Optional[DataType] = None) -> str:
    """Render ``value`` the way it should appear inside a generated narrative.

    Dates are spelled out ("December 1, 1935" as in the paper's Woody Allen
    example); strings are emitted verbatim; ``None`` becomes the word
    "unknown" so narratives never contain the token ``None``.
    """
    if value is None:
        return "unknown"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, datetime.date):
        return f"{value.strftime('%B')} {value.day}, {value.year}"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:g}"
    return str(value)


def infer_type(value: Any) -> DataType:
    """Infer the narrowest :class:`DataType` for a Python value."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, datetime.date):
        return DataType.DATE
    return DataType.TEXT
