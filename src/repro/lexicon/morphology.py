"""Small English morphology helpers used by surface realisation.

Nothing here aims at linguistic completeness; the rules cover the
vocabulary that database schemas produce (concept nouns, attribute
captions) well enough for the paper's narratives.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterable, List, Sequence

_IRREGULAR_PLURALS = {
    "person": "people",
    "child": "children",
    "man": "men",
    "woman": "women",
    "foot": "feet",
    "tooth": "teeth",
    "mouse": "mice",
    "goose": "geese",
    "datum": "data",
    "medium": "media",
    "index": "indexes",  # database usage
    "schema": "schemas",
    "criterion": "criteria",
    "analysis": "analyses",
    # Compound -man nouns pluralise the embedded "man"; the generic rules
    # below cannot know that ("chairman" + s reads as a typo).
    "chairman": "chairmen",
    "spokesman": "spokesmen",
    "salesman": "salesmen",
    "businessman": "businessmen",
    "craftsman": "craftsmen",
    "statesman": "statesmen",
    "fisherman": "fishermen",
    "nobleman": "noblemen",
    "bannerman": "bannermen",
    "swordsman": "swordsmen",
}

_UNCOUNTABLE = {"information", "cast", "staff", "metadata", "data", "news", "series"}

# The f -> ves mutation is lexical, not productive: "wolf" takes it but
# "chief", "belief" and "tariff" do not.  Suffix matching keeps compounds
# working ("direwolf" -> "direwolves", "bookshelf" -> "bookshelves").
_F_TO_VES_SUFFIXES = (
    "wolf", "shelf", "leaf", "thief", "half", "calf", "elf", "loaf",
    "scarf", "sheaf", "hoof", "dwarf",
)
_FE_TO_VES_SUFFIXES = ("wife", "knife", "life")

# Likewise o -> oes: "hero"/"potato" take -es, but loanwords and clipped
# forms ("video", "photo", "piano", "logo") take plain -s.
_O_TO_OES_SUFFIXES = (
    "hero", "echo", "potato", "tomato", "veto", "torpedo", "embargo",
    "domino", "mosquito",
)

_VOWELS = "aeiou"


def _match_case(original: str, plural: str) -> str:
    """Carry the original's initial capitalisation over to the plural form."""
    if original[:1].isupper():
        return plural[:1].upper() + plural[1:]
    return plural


def pluralize(noun: str, count: int = 2) -> str:
    """The plural of ``noun`` (returns it unchanged when ``count == 1``)."""
    if count == 1 or not noun:
        return noun
    return _pluralize_many(noun)


@lru_cache(maxsize=2048)
def _pluralize_many(noun: str) -> str:
    """The ``count != 1`` branch of :func:`pluralize`, memoized.

    Narration pluralises the same small set of concept nouns and captions
    over and over; the rule cascade below (regexes included) runs once per
    distinct noun per process.
    """
    lowered = noun.lower()
    if lowered in _UNCOUNTABLE:
        return noun
    if lowered in _IRREGULAR_PLURALS:
        return _match_case(noun, _IRREGULAR_PLURALS[lowered])
    if " " in noun:
        head, _, tail = noun.rpartition(" ")
        return f"{head} {_pluralize_many(tail)}"
    if re.search(r"(s|x|z|ch|sh)$", lowered):
        return noun + "es"
    if lowered.endswith("y") and len(lowered) > 1 and lowered[-2] not in _VOWELS:
        return noun[:-1] + "ies"
    if lowered.endswith(_F_TO_VES_SUFFIXES):
        return noun[:-1] + "ves"
    if lowered.endswith(_FE_TO_VES_SUFFIXES):
        return noun[:-2] + "ves"
    if lowered.endswith(_O_TO_OES_SUFFIXES):
        return noun + "es"
    return noun + "s"


@lru_cache(maxsize=2048)
def indefinite_article(noun: str) -> str:
    """Return "a" or "an" for ``noun`` (simple initial-sound heuristic)."""
    if not noun:
        return "a"
    first = noun.strip().lower()[0]
    word = noun.strip().lower()
    if word.startswith(("uni", "use", "eur", "one")):
        return "a"
    if word.startswith(("hour", "honest", "honor", "heir")):
        return "an"
    return "an" if first in _VOWELS else "a"


def with_article(noun: str, definite: bool = False) -> str:
    """Prefix ``noun`` with the appropriate article."""
    if definite:
        return f"the {noun}"
    return f"{indefinite_article(noun)} {noun}"


def capitalize_first(text: str) -> str:
    """Capitalise the first alphabetic character, leaving the rest intact.

    Sentences that start with a number ("12 more rows are not shown") are
    left alone: capitalising a word in the middle reads worse than starting
    with the digit.
    """
    for index, ch in enumerate(text):
        if ch.isdigit():
            return text
        if ch.isalpha():
            return text[:index] + ch.upper() + text[index + 1 :]
    return text


def join_list(items: Sequence[str], conjunction: str = "and", oxford: bool = True) -> str:
    """Join items as English prose: "a", "a and b", "a, b, and c"."""
    items = [item for item in items if item]
    if not items:
        return ""
    if len(items) == 1:
        return items[0]
    if len(items) == 2:
        return f"{items[0]} {conjunction} {items[1]}"
    comma = "," if oxford else ""
    return ", ".join(items[:-1]) + f"{comma} {conjunction} {items[-1]}"


def possessive(noun: str) -> str:
    """The possessive form of a noun/name ("Woody Allen's", "actors'")."""
    if not noun:
        return noun
    if noun.endswith("s"):
        return noun + "'"
    return noun + "'s"


@lru_cache(maxsize=1024)
def number_word(value: int) -> str:
    """Spell out small integers ("more than one genre"), else use digits."""
    words = {
        0: "zero", 1: "one", 2: "two", 3: "three", 4: "four", 5: "five",
        6: "six", 7: "seven", 8: "eight", 9: "nine", 10: "ten",
        11: "eleven", 12: "twelve",
    }
    return words.get(value, str(value))


@lru_cache(maxsize=1024)
def ordinal_word(value: int) -> str:
    """Spell out small ordinals ("first", "second"), else "3rd"-style."""
    words = {
        1: "first", 2: "second", 3: "third", 4: "fourth", 5: "fifth",
        6: "sixth", 7: "seventh", 8: "eighth", 9: "ninth", 10: "tenth",
    }
    if value in words:
        return words[value]
    suffix = "th"
    if value % 100 not in (11, 12, 13):
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(value % 10, "th")
    return f"{value}{suffix}"


def strip_extra_spaces(text: str) -> str:
    """Collapse repeated spaces and trim space before punctuation."""
    collapsed = re.sub(r"\s+", " ", text).strip()
    collapsed = re.sub(r"\s+([,.;:!?])", r"\1", collapsed)
    return collapsed


def sentence_case(sentences: Iterable[str]) -> List[str]:
    """Capitalise and terminate each sentence with a period when needed."""
    out: List[str] = []
    for sentence in sentences:
        cleaned = strip_extra_spaces(sentence)
        if not cleaned:
            continue
        cleaned = capitalize_first(cleaned)
        if cleaned[-1] not in ".!?":
            cleaned += "."
        out.append(cleaned)
    return out
