"""The lexicon: how schema elements are referred to in natural language.

The translators need three kinds of lexical knowledge, all of which the
paper assumes are available ("Without loss of generality we may assume
that the names of relations and attributes are meaningful"):

* the *concept noun* of a relation (MOVIES → "movie"),
* the *caption* of an attribute (bdate → "birth date"),
* the *verb phrase* of a relationship (CAST joining ACTOR → "plays in").

Defaults are derived from catalog metadata; entries can be overridden so
different installations (or personalised profiles) phrase things their own
way.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.catalog.schema import Schema
from repro.lexicon.morphology import pluralize


@dataclass(eq=False)
class Lexicon:
    """Lexical choices for one schema.

    Identity-based equality/hash: a lexicon is a mutable per-schema
    registry (and a weak-dict key for the translator's plan stores), not a
    value object.
    """

    schema: Schema
    concept_overrides: Dict[str, str] = field(default_factory=dict)
    plural_overrides: Dict[str, str] = field(default_factory=dict)
    caption_overrides: Dict[Tuple[str, str], str] = field(default_factory=dict)
    verb_overrides: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: Resolved-lookup memo (cleared by the setters).  Lexicon lookups sit
    #: inside the per-constraint narration loops, so the schema/override
    #: resolution runs once per distinct key instead of once per phrase.
    _memo: Dict[Tuple, str] = field(default_factory=dict, compare=False, repr=False)
    #: Monotonic counter bumped by every setter.  Caches keyed on lexical
    #: output (the translator's shape-keyed phrase plans) compare versions
    #: instead of fingerprinting the override dicts.
    version: int = field(default=0, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    def concept(self, relation: str) -> str:
        """The singular concept noun for ``relation`` ("movie", "actor")."""
        key = ("concept", relation)
        cached = self._memo.get(key)
        if cached is None:
            rel = self.schema.relation(relation)
            cached = self.concept_overrides.get(rel.name, rel.concept)
            self._memo[key] = cached
        return cached

    def concept_plural(self, relation: str) -> str:
        """The plural concept noun ("movies", "actors")."""
        key = ("concept_plural", relation)
        cached = self._memo.get(key)
        if cached is None:
            rel = self.schema.relation(relation)
            if rel.name in self.plural_overrides:
                cached = self.plural_overrides[rel.name]
            else:
                cached = pluralize(self.concept(relation))
            self._memo[key] = cached
        return cached

    def set_concept(self, relation: str, singular: str, plural: Optional[str] = None) -> None:
        rel = self.schema.relation(relation)
        self.concept_overrides[rel.name] = singular
        if plural is not None:
            self.plural_overrides[rel.name] = plural
        self._memo.clear()
        self.version += 1

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------

    def caption(self, relation: str, attribute: str) -> str:
        """The phrase used for an attribute ("release year", "birth date")."""
        key = ("caption", relation, attribute)
        cached = self._memo.get(key)
        if cached is None:
            rel = self.schema.relation(relation)
            attr = rel.attribute(attribute)
            cached = self.caption_overrides.get((rel.name, attr.name), attr.display_caption)
            self._memo[key] = cached
        return cached

    def caption_plural(self, relation: str, attribute: str) -> str:
        return pluralize(self.caption(relation, attribute))

    def set_caption(self, relation: str, attribute: str, caption: str) -> None:
        rel = self.schema.relation(relation)
        attr = rel.attribute(attribute)
        self.caption_overrides[(rel.name, attr.name)] = caption
        self._memo.clear()
        self.version += 1

    def heading_caption(self, relation: str) -> str:
        """The caption of the relation's heading attribute."""
        rel = self.schema.relation(relation)
        return self.caption(relation, rel.heading_attribute.name)

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------

    def relationship_verb(self, source: str, target: str) -> Optional[str]:
        """The verb phrase describing the FK relationship source → target.

        Looks at FKs in both directions; an override keyed by the pair
        wins.  Returns ``None`` when the relations are unrelated.
        """
        key = ("verb", source, target)
        if key in self._memo:
            return self._memo[key]
        src = self.schema.relation(source).name
        dst = self.schema.relation(target).name
        verb: Optional[str] = None
        if (src, dst) in self.verb_overrides:
            verb = self.verb_overrides[(src, dst)]
        elif (dst, src) in self.verb_overrides:
            verb = self.verb_overrides[(dst, src)]
        else:
            for fk in self.schema.foreign_keys_between(src, dst):
                if fk.verb_phrase:
                    verb = fk.verb_phrase
                    break
        self._memo[key] = verb
        return verb

    def set_relationship_verb(self, source: str, target: str, verb: str) -> None:
        src = self.schema.relation(source).name
        dst = self.schema.relation(target).name
        self.verb_overrides[(src, dst)] = verb
        self._memo.clear()
        self.version += 1

    # ------------------------------------------------------------------

    def describe_value(self, relation: str, attribute: str, value) -> str:
        """Phrase a constant the way the narratives do: "the actor Brad Pitt".

        When the attribute is the relation's heading attribute the value is
        apposed to the concept noun; otherwise the attribute caption is
        used ("the release year 2005").
        """
        from repro.catalog.types import render_value

        rel = self.schema.relation(relation)
        attr = rel.attribute(attribute)
        rendered = render_value(value)
        if attr.name == rel.heading_attribute.name:
            return f"the {self.concept(relation)} {rendered}"
        return f"the {self.caption(relation, attribute)} {rendered}"


def default_lexicon(schema: Schema) -> Lexicon:
    """A lexicon containing only metadata-derived defaults."""
    return Lexicon(schema=schema)


#: One shared default lexicon per schema, like ``graph_for``/``builder_for``.
#: The query translator uses this when no explicit lexicon/spec is given,
#: so its per-schema compiled state (shape-keyed phrase plans, memoized
#: lookups) is shared across translator instances.  Overrides applied to a
#: shared default are therefore visible to every translator of the schema;
#: callers needing a private lexicon should pass ``default_lexicon(schema)``
#: explicitly.
_SHARED_DEFAULTS: "weakref.WeakKeyDictionary[Schema, Lexicon]" = (
    weakref.WeakKeyDictionary()
)
_SHARED_DEFAULTS_LOCK = threading.Lock()


def default_lexicon_for(schema: Schema) -> Lexicon:
    """The shared metadata-derived lexicon for ``schema``."""
    with _SHARED_DEFAULTS_LOCK:
        lexicon = _SHARED_DEFAULTS.get(schema)
        if lexicon is None:
            lexicon = Lexicon(schema=schema)
            _SHARED_DEFAULTS[schema] = lexicon
        return lexicon
