"""Lexicon and morphology helpers for natural-language generation."""

from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.lexicon.morphology import (
    capitalize_first,
    indefinite_article,
    join_list,
    number_word,
    ordinal_word,
    pluralize,
    possessive,
    sentence_case,
    strip_extra_spaces,
    with_article,
)

__all__ = [
    "Lexicon",
    "capitalize_first",
    "default_lexicon",
    "indefinite_article",
    "join_list",
    "number_word",
    "ordinal_word",
    "pluralize",
    "possessive",
    "sentence_case",
    "strip_extra_spaces",
    "with_article",
]
