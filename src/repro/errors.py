"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the translator can catch a single base class.  The
hierarchy mirrors the package layout: catalog/schema errors, storage
errors, SQL front-end errors, execution errors, and translation (NLG)
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


# ---------------------------------------------------------------------------
# Catalog / schema errors
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """Base class for schema-definition problems."""


class DuplicateRelationError(CatalogError):
    """A relation with the same name is already defined in the schema."""


class DuplicateAttributeError(CatalogError):
    """An attribute with the same name already exists on the relation."""


class UnknownRelationError(CatalogError):
    """A relation name could not be resolved against the schema."""


class UnknownAttributeError(CatalogError):
    """An attribute name could not be resolved against a relation."""


class InvalidForeignKeyError(CatalogError):
    """A foreign key references a missing relation/attribute or has mismatched arity."""


class InvalidSchemaError(CatalogError):
    """The schema as a whole is inconsistent (e.g. missing primary key)."""


# ---------------------------------------------------------------------------
# Storage errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-engine problems."""


class ConstraintViolationError(StorageError):
    """A constraint (NOT NULL, primary key, foreign key, type) was violated."""


class PrimaryKeyViolationError(ConstraintViolationError):
    """A duplicate primary key value was inserted."""


class ForeignKeyViolationError(ConstraintViolationError):
    """A foreign key value does not reference an existing parent row."""


class NotNullViolationError(ConstraintViolationError):
    """A NULL value was supplied for a NOT NULL attribute."""


class TypeMismatchError(ConstraintViolationError):
    """A value does not match the declared attribute type."""


class UnknownTableError(StorageError):
    """The named table does not exist in the database."""


class DurabilityError(StorageError):
    """Base class for write-ahead-log and snapshot problems."""


class WalCorruptionError(DurabilityError):
    """A WAL record *before* the tail failed its checksum or framing.

    A torn final record is expected after a crash and is silently
    truncated; corruption in the middle of the log means the file was
    damaged after it was written, and recovery must not guess past it.
    """


class SnapshotError(DurabilityError):
    """A snapshot file is missing, unreadable or fails its checksum."""


class RecoveryError(DurabilityError):
    """Snapshot and log disagree (e.g. a sequence gap between them)."""


# ---------------------------------------------------------------------------
# SQL front-end errors
# ---------------------------------------------------------------------------


class SqlError(ReproError):
    """Base class for SQL lexing/parsing/validation problems."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.line:
            return f"{self.message} (line {self.line}, column {self.column})"
        return self.message


class SqlLexError(SqlError):
    """An unrecognised character or malformed literal was encountered."""


class SqlParseError(SqlError):
    """The token stream does not form a valid SQL statement."""


class SqlValidationError(SqlError):
    """The statement is syntactically valid but inconsistent with the schema."""


# ---------------------------------------------------------------------------
# Execution errors
# ---------------------------------------------------------------------------


class ExecutionError(ReproError):
    """Base class for runtime query-evaluation problems."""


class PlanningError(ExecutionError):
    """The logical plan could not be constructed for a statement."""


class EvaluationError(ExecutionError):
    """An expression could not be evaluated (type error, missing column...)."""


class UnsupportedQueryError(ExecutionError):
    """The engine does not support the requested SQL feature."""


# ---------------------------------------------------------------------------
# Graph / template / translation errors
# ---------------------------------------------------------------------------


class GraphError(ReproError):
    """Base class for schema-graph and query-graph problems."""


class UnknownNodeError(GraphError):
    """A node name could not be resolved in the graph."""


class UnknownEdgeError(GraphError):
    """An edge could not be resolved in the graph."""


class TemplateError(ReproError):
    """Base class for template definition/instantiation problems."""


class TemplateSyntaxError(TemplateError):
    """A template string could not be parsed."""


class MissingTemplateError(TemplateError):
    """No template label is registered for a graph element."""


class TemplateInstantiationError(TemplateError):
    """A template could not be instantiated (missing placeholder value)."""


class TranslationError(ReproError):
    """Base class for natural-language translation problems."""


class UntranslatableQueryError(TranslationError):
    """The query falls outside every supported translation category."""


class LexiconError(TranslationError):
    """A lexicon entry is missing or malformed."""
