"""Synthetic datasets and workloads used by examples, tests and benchmarks."""

from repro.datasets.domains import (
    CorpusQuery,
    Domain,
    all_domains,
    get_domain,
)
from repro.datasets.employees import (
    MANAGER_NARRATIVE,
    MANAGER_QUERY,
    employee_database,
    employee_schema,
)
from repro.datasets.generator import (
    GeneratorConfig,
    generate_movie_database,
    generate_movie_records,
)
from repro.datasets.library import library_database, library_schema
from repro.datasets.movies import (
    ALL_GENRES,
    PAPER_NARRATIVES,
    PAPER_QUERIES,
    movie_database,
    movie_schema,
    seed_rows,
)
from repro.datasets.workload import (
    WorkloadQuery,
    generate_workload,
    paper_workload,
    workload_by_category,
)

__all__ = [
    "ALL_GENRES",
    "CorpusQuery",
    "Domain",
    "GeneratorConfig",
    "MANAGER_NARRATIVE",
    "MANAGER_QUERY",
    "PAPER_NARRATIVES",
    "PAPER_QUERIES",
    "WorkloadQuery",
    "all_domains",
    "employee_database",
    "employee_schema",
    "generate_movie_database",
    "generate_movie_records",
    "generate_workload",
    "get_domain",
    "library_database",
    "library_schema",
    "movie_database",
    "movie_schema",
    "paper_workload",
    "seed_rows",
    "workload_by_category",
]
