"""The movie database of the paper's Figure 1, with seed data.

The schema matches Figure 1 exactly:

* ``MOVIES(id, title, year)``
* ``DIRECTOR(id, name, bdate, blocation)``
* ``DIRECTED(mid, did)``     — bridge between MOVIES and DIRECTOR
* ``ACTOR(id, name)``
* ``CAST(mid, aid, role)``   — bridge between MOVIES and ACTOR
* ``GENRE(mid, genre)``

The seed contents include precisely the tuples the paper's narratives
mention (Woody Allen born in Brooklyn on December 1, 1935 with Match
Point/Melinda and Melinda/Anything Else; Brad Pitt; G. Loucas with action
movies) so that the reproduced narratives can be compared verbatim, plus a
handful of additional rows so that queries have non-trivial answers.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional

from repro.catalog.builder import SchemaBuilder
from repro.catalog.schema import Schema
from repro.storage.database import Database


def movie_schema() -> Schema:
    """The schema of the paper's Figure 1, annotated for translation."""
    return (
        SchemaBuilder("movies", description="Movie database of Figure 1")
        .relation("MOVIES", concept="movie", weight=3.0)
        .column("id", "integer", primary_key=True)
        .column("title", "text", heading=True, weight=3.0)
        .column("year", "integer", caption="release year", weight=2.0)
        .done()
        .relation("DIRECTOR", concept="director", weight=2.5)
        .column("id", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=3.0)
        .column("bdate", "date", caption="birth date", weight=1.5)
        .column("blocation", "text", caption="birth location", weight=1.5)
        .done()
        .relation("DIRECTED", concept="directed", bridge=True, weight=1.0)
        .column("mid", "integer", primary_key=True)
        .column("did", "integer", primary_key=True)
        .done()
        .relation("ACTOR", concept="actor", weight=2.5)
        .column("id", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=3.0)
        .done()
        .relation("CAST", concept="cast", bridge=True, weight=1.0)
        .column("mid", "integer", primary_key=True)
        .column("aid", "integer", primary_key=True)
        .column("role", "text", weight=1.0)
        .done()
        .relation("GENRE", concept="genre", weight=1.5)
        .column("mid", "integer", primary_key=True)
        .column("genre", "text", heading=True, primary_key=True)
        .done()
        .foreign_key("DIRECTED", ["mid"], "MOVIES", ["id"], verb="directed")
        .foreign_key("DIRECTED", ["did"], "DIRECTOR", ["id"], verb="directed by")
        .foreign_key("CAST", ["mid"], "MOVIES", ["id"], verb="features")
        .foreign_key("CAST", ["aid"], "ACTOR", ["id"], verb="plays in")
        .foreign_key("GENRE", ["mid"], "MOVIES", ["id"], verb="belongs to")
        .build(require_primary_keys=True)
    )


#: Seed rows.  Ids below 100 are the tuples the paper's examples rely on.
_SEED: Dict[str, List[dict]] = {
    "MOVIES": [
        {"id": 1, "title": "Match Point", "year": 2005},
        {"id": 2, "title": "Melinda and Melinda", "year": 2004},
        {"id": 3, "title": "Anything Else", "year": 2003},
        {"id": 4, "title": "Troy", "year": 2004},
        {"id": 5, "title": "Seven", "year": 1995},
        {"id": 6, "title": "Star Battles", "year": 1977},
        {"id": 7, "title": "Star Battles", "year": 1997},
        {"id": 8, "title": "The Galactic Menace", "year": 1999},
        {"id": 10, "title": "Ocean Heist", "year": 2001},
    ],
    "DIRECTOR": [
        {
            "id": 1,
            "name": "Woody Allen",
            "bdate": datetime.date(1935, 12, 1),
            "blocation": "Brooklyn, New York, USA",
        },
        {
            "id": 2,
            "name": "G. Loucas",
            "bdate": datetime.date(1944, 5, 14),
            "blocation": "Modesto, California, USA",
        },
        {
            "id": 3,
            "name": "D. Fincher",
            "bdate": datetime.date(1962, 8, 28),
            "blocation": "Denver, Colorado, USA",
        },
        {
            "id": 4,
            "name": "Sofia Ferrara",
            "bdate": datetime.date(1971, 5, 14),
            "blocation": "Rome, Italy",
        },
    ],
    "DIRECTED": [
        {"mid": 1, "did": 1},
        {"mid": 2, "did": 1},
        {"mid": 3, "did": 1},
        {"mid": 6, "did": 2},
        {"mid": 7, "did": 2},
        {"mid": 8, "did": 2},
        {"mid": 5, "did": 3},
        {"mid": 4, "did": 4},
        {"mid": 10, "did": 4},
    ],
    "ACTOR": [
        {"id": 1, "name": "Brad Pitt"},
        {"id": 2, "name": "Scarlett Johansson"},
        {"id": 3, "name": "Jonathan Rhys Meyers"},
        {"id": 4, "name": "Eric Bana"},
        {"id": 5, "name": "Morgan Freeman"},
        {"id": 6, "name": "Mark Hamill"},
        {"id": 7, "name": "Christina Ricci"},
        {"id": 8, "name": "Nikos Papadopoulos"},
    ],
    "CAST": [
        {"mid": 4, "aid": 1, "role": "Achilles"},
        {"mid": 5, "aid": 1, "role": "Detective Mills"},
        {"mid": 10, "aid": 1, "role": "Rusty"},
        {"mid": 1, "aid": 2, "role": "Nola Rice"},
        {"mid": 1, "aid": 3, "role": "Chris Wilton"},
        {"mid": 4, "aid": 4, "role": "Hector"},
        {"mid": 5, "aid": 5, "role": "Detective Somerset"},
        {"mid": 6, "aid": 6, "role": "Luke"},
        {"mid": 7, "aid": 6, "role": "Luke"},
        {"mid": 3, "aid": 7, "role": "Amanda"},
        {"mid": 10, "aid": 8, "role": "Nikos"},
        # A movie whose title equals one of its roles (exercises query Q4).
        {"mid": 2, "aid": 7, "role": "Melinda and Melinda"},
    ],
    "GENRE": [
        {"mid": 1, "genre": "drama"},
        {"mid": 1, "genre": "romance"},
        {"mid": 2, "genre": "comedy"},
        {"mid": 2, "genre": "drama"},
        {"mid": 3, "genre": "comedy"},
        {"mid": 4, "genre": "action"},
        {"mid": 5, "genre": "thriller"},
        {"mid": 6, "genre": "action"},
        {"mid": 7, "genre": "action"},
        {"mid": 8, "genre": "action"},
        {"mid": 10, "genre": "action"},
        {"mid": 10, "genre": "comedy"},
        {"mid": 10, "genre": "drama"},
        {"mid": 10, "genre": "romance"},
        {"mid": 10, "genre": "thriller"},
    ],
}

ALL_GENRES = sorted({row["genre"] for row in _SEED["GENRE"]})


def movie_database(seed_data: bool = True) -> Database:
    """A :class:`Database` over the Figure 1 schema.

    With ``seed_data`` (default) the paper's example tuples are loaded;
    otherwise the database is empty (useful for empty-answer explanation
    examples and for the scalable generator).
    """
    database = Database(movie_schema())
    if seed_data:
        database.load(_SEED)
    return database


def seed_rows(table: Optional[str] = None) -> Dict[str, List[dict]]:
    """A deep-ish copy of the seed rows (all tables or a single table)."""
    if table is not None:
        return {table: [dict(row) for row in _SEED[table]]}
    return {name: [dict(row) for row in rows] for name, rows in _SEED.items()}


# ---------------------------------------------------------------------------
# The paper's queries Q1-Q9 (Section 3.3), verbatim modulo whitespace.
# ---------------------------------------------------------------------------

PAPER_QUERIES: Dict[str, str] = {
    # Q1 — path query (Figure 3)
    "Q1": """
        select m.title
        from MOVIES m, CAST c, ACTOR a
        where m.id = c.mid and c.aid = a.id
          and a.name = 'Brad Pitt'
    """,
    # Q2 — subgraph query (Figure 4)
    "Q2": """
        select a.name, m.title
        from MOVIES m, CAST c, ACTOR a, DIRECTED r, DIRECTOR d, GENRE g
        where m.id = c.mid and c.aid = a.id
          and m.id = r.mid and r.did = d.id
          and m.id = g.mid and d.name = 'G. Loucas'
          and g.genre = 'action'
    """,
    # Q3 — multi-instance graph query (Figure 5)
    "Q3": """
        select a1.name, a2.name
        from MOVIES m, CAST c1, ACTOR a1, CAST c2, ACTOR a2
        where m.id = c1.mid and c1.aid = a1.id
          and m.id = c2.mid and c2.aid = a2.id
          and a1.id > a2.id
    """,
    # Q4 — cyclic graph query (Figure 6)
    "Q4": """
        select m.title from MOVIES m, CAST c
        where m.id = c.mid and c.role = m.title
    """,
    # Q5 — nested query with a flat equivalent
    "Q5": """
        select m.title from MOVIES m
        where id in (
            select c.mid from CAST c
            where c.aid in (
                select a.id from ACTOR a
                where a.name = 'Brad Pitt'))
    """,
    # Q6 — nested query without a flat equivalent (relational division).
    # The paper's listing has two typos (``a.title``/``a2.mid`` and an
    # unused alias ``G1``); the intent — movies that have all genres — is
    # what we encode here.
    "Q6": """
        select m.title from MOVIES m
        where not exists (
            select * from GENRE g1
            where not exists (
                select * from GENRE g2
                where g2.mid = m.id and g2.genre = g1.genre))
    """,
    # Q7 — aggregate query (Figure 7)
    "Q7": """
        select m.id, m.title, count(*) from MOVIES m, CAST c
        where m.id = c.mid
        group by m.id, m.title
        having 1 < (select count(*)
                    from GENRE g
                    where g.mid = m.id)
    """,
    # Q8 — "impossible": count(distinct year) = 1 means "all in the same year"
    "Q8": """
        select a.id, a.name
        from MOVIES m, CAST c, ACTOR a
        where m.id = c.mid and c.aid = a.id
        group by a.id, a.name
        having count(distinct m.year) = 1
    """,
    # Q9 — "impossible": <= all means "earliest"
    "Q9": """
        select a.name
        from MOVIES m, CAST c, ACTOR a
        where m.id = c.mid and c.aid = a.id
          and m.year <= all (
              select m1.year
              from MOVIES m1, MOVIES m2
              where m1.title = m.title and m2.title = m.title
                and m1.id <> m2.id)
    """,
}

#: The paper's target narratives for each query (Section 3.3).
PAPER_NARRATIVES: Dict[str, str] = {
    "Q1": "Find the titles of movies where the actor Brad Pitt plays",
    "Q1_concise": "Find movies where Brad Pitt plays",
    "Q2": "Find the actors and titles of action movies directed by G. Loucas",
    "Q3": "Find pairs of actors who have played in the same movie",
    "Q4": "Find movies whose title is one of their roles",
    "Q5": "Find movies where Brad Pitt plays",
    "Q6": "Find movies that have all genres",
    "Q7": "Find the number of actors in movies of more than one genre",
    "Q8": "Find actors whose movies are all in the same year",
    "Q9": "Find the actors who have played in the earliest versions of movies that have been repeated",
}
