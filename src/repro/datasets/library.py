"""A digital-library schema, one of the application scenarios of Section 2.1.

The paper motivates content translation with "the highlights of a
collection in a digital library, with a few sentences on the main authors
in the collection".  This dataset provides that scenario: collections,
items, authors and an authorship bridge, with NLG annotations so the
content narrator can produce collection summaries out of the box.
"""

from __future__ import annotations

from typing import Dict, List

from repro.catalog.builder import SchemaBuilder
from repro.catalog.schema import Schema
from repro.storage.database import Database


def library_schema() -> Schema:
    """Digital library: COLLECTION, ITEM, AUTHOR, WROTE."""
    return (
        SchemaBuilder("library", description="Digital library collections")
        .relation("COLLECTION", concept="collection", weight=3.0)
        .column("cid", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=3.0)
        .column("subject", "text", weight=2.0)
        .done()
        .relation("ITEM", concept="item", weight=2.5)
        .column("iid", "integer", primary_key=True)
        .column("title", "text", heading=True, weight=3.0)
        .column("year", "integer", caption="publication year", weight=1.5)
        .column("cid", "integer", caption="collection", weight=1.0)
        .done()
        .relation("AUTHOR", concept="author", weight=2.5)
        .column("aid", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=3.0)
        .column("country", "text", weight=1.0)
        .done()
        .relation("WROTE", concept="authorship", bridge=True, weight=1.0)
        .column("iid", "integer", primary_key=True)
        .column("aid", "integer", primary_key=True)
        .done()
        .foreign_key("ITEM", ["cid"], "COLLECTION", ["cid"], verb="belongs to")
        .foreign_key("WROTE", ["iid"], "ITEM", ["iid"], verb="written")
        .foreign_key("WROTE", ["aid"], "AUTHOR", ["aid"], verb="written by")
        .build(require_primary_keys=True)
    )


_SEED: Dict[str, List[dict]] = {
    "COLLECTION": [
        {"cid": 1, "name": "Hellenic Manuscripts", "subject": "history"},
        {"cid": 2, "name": "Modern Data Systems", "subject": "computer science"},
    ],
    "ITEM": [
        {"iid": 1, "title": "Chronicle of Athens", "year": 1821, "cid": 1},
        {"iid": 2, "title": "Voyages in the Aegean", "year": 1850, "cid": 1},
        {"iid": 3, "title": "Letters from Crete", "year": 1866, "cid": 1},
        {"iid": 4, "title": "Relational Foundations", "year": 1970, "cid": 2},
        {"iid": 5, "title": "Query Processing at Scale", "year": 1994, "cid": 2},
        {"iid": 6, "title": "Talking Databases", "year": 2009, "cid": 2},
    ],
    "AUTHOR": [
        {"aid": 1, "name": "Eleni Vasileiou", "country": "Greece"},
        {"aid": 2, "name": "Nikos Economou", "country": "Greece"},
        {"aid": 3, "name": "Edgar Frank", "country": "United Kingdom"},
        {"aid": 4, "name": "Grace Murray", "country": "USA"},
    ],
    "WROTE": [
        {"iid": 1, "aid": 1},
        {"iid": 2, "aid": 1},
        {"iid": 3, "aid": 2},
        {"iid": 4, "aid": 3},
        {"iid": 5, "aid": 4},
        {"iid": 6, "aid": 4},
    ],
}


def library_database(seed_data: bool = True) -> Database:
    """A populated digital-library database."""
    database = Database(library_schema())
    if seed_data:
        database.load(_SEED)
    return database
