"""Query workload generator for the taxonomy and performance benchmarks.

Section 3.3 of the paper categorises queries by how hard they are to
translate (path, subgraph, graph, non-graph, impossible).  The taxonomy
benchmark needs many queries per category; this module synthesises them
deterministically over the movie schema.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.datasets.movies import PAPER_QUERIES


@dataclass(frozen=True)
class WorkloadQuery:
    """A generated query together with its expected difficulty category."""

    name: str
    sql: str
    expected_category: str


_ACTOR_NAMES = ["Brad Pitt", "Scarlett Johansson", "Mark Hamill", "Morgan Freeman"]
_DIRECTOR_NAMES = ["Woody Allen", "G. Loucas", "D. Fincher", "Sofia Ferrara"]
_GENRES = ["action", "comedy", "drama", "romance", "thriller"]
_YEARS = [1977, 1995, 2003, 2004, 2005]


def paper_workload() -> List[WorkloadQuery]:
    """The paper's own Q1-Q9 with their section 3.3 categories."""
    categories = {
        "Q1": "path",
        "Q2": "subgraph",
        "Q3": "graph",
        "Q4": "graph",
        "Q5": "nested",
        "Q6": "nested",
        "Q7": "aggregate",
        "Q8": "impossible",
        "Q9": "impossible",
    }
    return [
        WorkloadQuery(name=name, sql=sql, expected_category=categories[name])
        for name, sql in PAPER_QUERIES.items()
    ]


def generate_workload(queries_per_category: int = 10, seed: int = 42) -> List[WorkloadQuery]:
    """Generate a mixed workload over the movie schema.

    Each category from Section 3.3 gets ``queries_per_category`` members;
    generation is deterministic for a given ``seed``.
    """
    rng = random.Random(seed)
    workload: List[WorkloadQuery] = []
    generators = {
        "path": _path_query,
        "subgraph": _subgraph_query,
        "graph": _graph_query,
        "nested": _nested_query,
        "aggregate": _aggregate_query,
    }
    for category, generator in generators.items():
        for index in range(queries_per_category):
            workload.append(
                WorkloadQuery(
                    name=f"{category}_{index}",
                    sql=generator(rng, index),
                    expected_category=category,
                )
            )
    return workload


def workload_by_category(workload: Sequence[WorkloadQuery]) -> Dict[str, List[WorkloadQuery]]:
    """Group a workload by expected category."""
    grouped: Dict[str, List[WorkloadQuery]] = {}
    for query in workload:
        grouped.setdefault(query.expected_category, []).append(query)
    return grouped


# ---------------------------------------------------------------------------
# Per-category generators
# ---------------------------------------------------------------------------


def _path_query(rng: random.Random, index: int) -> str:
    actor = rng.choice(_ACTOR_NAMES)
    if index % 2 == 0:
        return (
            "select m.title from MOVIES m, CAST c, ACTOR a "
            "where m.id = c.mid and c.aid = a.id "
            f"and a.name = '{actor}'"
        )
    director = rng.choice(_DIRECTOR_NAMES)
    return (
        "select m.title from MOVIES m, DIRECTED r, DIRECTOR d "
        "where m.id = r.mid and r.did = d.id "
        f"and d.name = '{director}'"
    )


def _subgraph_query(rng: random.Random, index: int) -> str:
    director = rng.choice(_DIRECTOR_NAMES)
    genre = rng.choice(_GENRES)
    return (
        "select a.name, m.title "
        "from MOVIES m, CAST c, ACTOR a, DIRECTED r, DIRECTOR d, GENRE g "
        "where m.id = c.mid and c.aid = a.id "
        "and m.id = r.mid and r.did = d.id "
        "and m.id = g.mid "
        f"and d.name = '{director}' and g.genre = '{genre}'"
    )


def _graph_query(rng: random.Random, index: int) -> str:
    if index % 2 == 0:
        # Multi-instance: pairs of actors in the same movie.
        return (
            "select a1.name, a2.name "
            "from MOVIES m, CAST c1, ACTOR a1, CAST c2, ACTOR a2 "
            "where m.id = c1.mid and c1.aid = a1.id "
            "and m.id = c2.mid and c2.aid = a2.id "
            "and a1.id > a2.id"
        )
    # Cyclic: non-FK join between attributes of joined relations.
    return (
        "select m.title from MOVIES m, CAST c "
        "where m.id = c.mid and c.role = m.title"
    )


def _nested_query(rng: random.Random, index: int) -> str:
    actor = rng.choice(_ACTOR_NAMES)
    if index % 2 == 0:
        return (
            "select m.title from MOVIES m "
            "where m.id in (select c.mid from CAST c "
            "where c.aid in (select a.id from ACTOR a "
            f"where a.name = '{actor}'))"
        )
    genre = rng.choice(_GENRES)
    return (
        "select m.title from MOVIES m "
        "where not exists (select * from GENRE g "
        f"where g.mid = m.id and g.genre = '{genre}')"
    )


def _aggregate_query(rng: random.Random, index: int) -> str:
    year = rng.choice(_YEARS)
    if index % 2 == 0:
        return (
            "select m.id, m.title, count(*) from MOVIES m, CAST c "
            "where m.id = c.mid group by m.id, m.title "
            "having count(*) > 1"
        )
    return (
        "select d.name, count(*) from DIRECTOR d, DIRECTED r, MOVIES m "
        "where d.id = r.did and r.mid = m.id "
        f"and m.year >= {year} "
        "group by d.name"
    )
