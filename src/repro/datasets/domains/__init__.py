"""Multi-domain workloads: schemas, generators, lexicons and query corpora.

The paper's pipeline was originally exercised over one real schema (the
Figure 1 movie database) plus two toy ones.  This package ports several
genuinely different domains — a social network, a streaming platform, a
corporate org chart and a fantasy-saga universe — in the spirit of the
text2typeql multi-domain corpora, so the lexicon, guard vectors, phrase
plans and unplannable-shape fallback are stressed by vocabulary and graph
shapes the movie schema never produces (self-referential bridges,
``-o``/``-f`` plurals, compound irregular nouns, deeper FK chains).

Each domain packages four things behind one :class:`Domain` record:

* a schema (:class:`~repro.catalog.schema.Schema`) built with the same
  annotations the shipped datasets use (concepts, captions, FK verbs),
* a *seeded, deterministic* data generator — ``database(seed, scale)`` is
  a pure function of its arguments, so every validation mode rebuilds an
  identical database,
* a lexicon factory applying the domain's vocabulary overrides, and
* a corpus of 40+ SQL queries spanning the paper's difficulty taxonomy
  (path, subgraph, graph, nested, aggregate, impossible), each tagged
  with its expected category.

The corpora are consumed by the batch differential-validation harness
(:mod:`repro.validation`), the cross-domain storage differentials and the
taxonomy tests; ``repro.datasets.domains.get_domain("twitter")`` is the
single lookup point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.catalog.schema import Schema
from repro.lexicon.lexicon import Lexicon
from repro.storage.config import StorageConfig
from repro.storage.database import Database

__all__ = [
    "CorpusQuery",
    "Domain",
    "DOMAIN_NAMES",
    "all_domains",
    "get_domain",
    "register_domain",
]

#: The taxonomy categories a corpus is expected to span (Section 3.3).
TAXONOMY = ("path", "subgraph", "graph", "nested", "aggregate", "impossible")


@dataclass(frozen=True)
class CorpusQuery:
    """One corpus entry: a SQL text plus its expected difficulty category."""

    name: str
    sql: str
    category: str

    def __post_init__(self) -> None:
        if self.category not in TAXONOMY:
            raise ValueError(
                f"category must be one of {TAXONOMY}, got {self.category!r}"
            )


@dataclass(frozen=True)
class Domain:
    """One validated workload domain (schema + generator + lexicon + corpus)."""

    name: str
    description: str
    schema_factory: Callable[[], Schema]
    database_factory: Callable[[int, int], Database]
    corpus_factory: Callable[[], Tuple[CorpusQuery, ...]]
    #: Optional vocabulary overrides; ``None`` keeps the shared
    #: metadata-derived default lexicon for the schema.
    lexicon_factory: Optional[Callable[[Schema], Lexicon]] = None
    _cache: dict = field(default_factory=dict, hash=False, compare=False, repr=False)

    def schema(self) -> Schema:
        """The domain schema (one shared instance per Domain record)."""
        schema = self._cache.get("schema")
        if schema is None:
            schema = self.schema_factory()
            self._cache["schema"] = schema
        return schema

    def database(
        self,
        seed: int = 0,
        scale: int = 1,
        storage: Optional[StorageConfig] = None,
    ) -> Database:
        """A freshly generated database; identical for identical arguments."""
        database = self.database_factory(seed, scale)
        if storage is not None:
            database = database.with_storage(storage)
        return database

    def lexicon(self) -> Optional[Lexicon]:
        """A fresh domain lexicon (overrides applied), or ``None`` for defaults."""
        if self.lexicon_factory is None:
            return None
        return self.lexicon_factory(self.schema())

    def corpus(self) -> Tuple[CorpusQuery, ...]:
        corpus = self._cache.get("corpus")
        if corpus is None:
            corpus = tuple(self.corpus_factory())
            names = [query.name for query in corpus]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate corpus query names in domain {self.name}")
            self._cache["corpus"] = corpus
        return corpus


_REGISTRY: Dict[str, Domain] = {}


def register_domain(domain: Domain) -> Domain:
    """Add a domain to the registry (used by the per-domain modules)."""
    if domain.name in _REGISTRY:
        raise ValueError(f"domain {domain.name!r} already registered")
    _REGISTRY[domain.name] = domain
    return domain


def get_domain(name: str) -> Domain:
    """Look a domain up by name; raises ``KeyError`` with the catalogue."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown domain {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def all_domains() -> List[Domain]:
    """Every registered domain, in registration (catalogue) order."""
    return list(_REGISTRY.values())


# Importing the per-domain modules registers them; the order here is the
# catalogue order used by the validation harness and the docs.
from repro.datasets.domains import movies as _movies  # noqa: E402,F401
from repro.datasets.domains import twitter as _twitter  # noqa: E402,F401
from repro.datasets.domains import twitch as _twitch  # noqa: E402,F401
from repro.datasets.domains import companies as _companies  # noqa: E402,F401
from repro.datasets.domains import gameofthrones as _gameofthrones  # noqa: E402,F401

DOMAIN_NAMES: Tuple[str, ...] = tuple(_REGISTRY)
