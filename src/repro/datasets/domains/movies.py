"""The movie domain, adapted to the multi-domain registry.

The schema, seed data and Q1–Q9 come from :mod:`repro.datasets.movies`;
the corpus adds the deterministic generated workload so the movie domain
clears the same 40+-query bar as the ported domains and the validation
harness exercises the original vocabulary alongside the new ones.
"""

from __future__ import annotations

from typing import List

from repro.datasets.domains import CorpusQuery, Domain, register_domain
from repro.datasets.generator import GeneratorConfig, generate_movie_database
from repro.datasets.movies import PAPER_QUERIES, movie_schema
from repro.datasets.workload import generate_workload, paper_workload
from repro.storage.database import Database


def _database(seed: int, scale: int) -> Database:
    return generate_movie_database(
        GeneratorConfig(
            movies=40 * scale,
            directors=8 * scale,
            actors=20 * scale,
            seed=seed,
        )
    )


def _corpus() -> List[CorpusQuery]:
    corpus = [
        CorpusQuery(
            name=query.name,
            sql=PAPER_QUERIES[query.name],
            category=_category(query.expected_category),
        )
        for query in paper_workload()
    ]
    corpus.extend(
        CorpusQuery(
            name=f"gen_{query.name}",
            sql=query.sql,
            category=_category(query.expected_category),
        )
        for query in generate_workload(queries_per_category=8, seed=7)
    )
    return corpus


def _category(expected: str) -> str:
    # The generated workload's nested queries are pure nesting and its
    # aggregates carry GROUP BY, so the workload labels map one-to-one
    # onto the taxonomy.
    return expected


register_domain(
    Domain(
        name="movies",
        description="The paper's Figure 1 movie database (Q1-Q9 + generated workload)",
        schema_factory=movie_schema,
        database_factory=_database,
        corpus_factory=_corpus,
    )
)
