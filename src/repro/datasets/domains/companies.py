"""Corporate org-chart domain: companies, departments, employees, boards.

Graph-shape stress: the ``PARTNERSHIP`` bridge points twice at COMPANY
(like a social "follows" edge between corporations) and the schema has
two parallel paths from COMPANY down to people (via DEPARTMENT/EMPLOYEE
and via BOARD).  The vocabulary is the morphology torture chamber: the
concept nouns "company" (``-y`` → "companies"), "chairman" (compound
irregular → "chairmen") and "chief" (``-f`` that must NOT become
"chieves") all sit directly in translation output.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.catalog.builder import SchemaBuilder
from repro.catalog.schema import Schema
from repro.datasets.domains import CorpusQuery, Domain, register_domain
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.storage.database import Database

_COMPANIES = [
    "Acme Analytics", "Borealis Freight", "Cobalt Foods", "Dynamo Motors",
    "Evergreen Paper", "Flux Energy", "Granite Bank", "Helios Optics",
]
_SECTORS = ["technology", "logistics", "food", "automotive", "energy", "finance"]
_CITIES = ["Zurich", "Osaka", "Austin", "Porto", "Nairobi", "Oslo"]
_DEPARTMENTS = ["research", "sales", "operations", "legal", "marketing"]
_TITLES = ["engineer", "analyst", "clerk", "designer", "auditor"]
_PEOPLE = [
    "Ada Byron", "Bram Stoker", "Clara Oswald", "Dev Patel", "Edith Clarke",
    "Farid Azmi", "Greta Ionescu", "Hugo Reyes", "Ines Castro", "Jonas Falk",
    "Kira Sato", "Liam Doyle", "Mona Haddad", "Noor Khan", "Otto Lang",
    "Priya Nair", "Quinn Harper", "Rosa Vela", "Sven Berg", "Tara Singh",
]


def companies_schema() -> Schema:
    return (
        SchemaBuilder("companies", description="Corporate org charts")
        .relation("COMPANY", concept="company", weight=3.0)
        .column("id", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=3.0)
        .column("founded", "integer", caption="founding year", weight=1.5)
        .column("sector", "text", weight=2.0)
        .column("hq", "text", caption="headquarters", weight=1.0)
        .done()
        .relation("DEPARTMENT", concept="department", weight=2.0)
        .column("id", "integer", primary_key=True)
        .column("cid", "integer", caption="company", weight=1.0)
        .column("name", "text", heading=True, weight=2.5)
        .column("budget", "integer", weight=1.5)
        .done()
        .relation("EMPLOYEE", concept="employee", weight=2.5)
        .column("id", "integer", primary_key=True)
        .column("did", "integer", caption="department", weight=1.0)
        .column("name", "text", heading=True, weight=3.0)
        .column("title", "text", weight=1.5)
        .column("salary", "integer", weight=1.5)
        .column("hired", "integer", caption="hiring year", weight=1.0)
        .done()
        .relation("BOARD", concept="chairman", weight=2.0)
        .column("id", "integer", primary_key=True)
        .column("cid", "integer", caption="company", weight=1.0)
        .column("name", "text", heading=True, weight=3.0)
        .column("since", "integer", caption="appointment year", weight=1.0)
        .done()
        .relation("EXECUTIVE", concept="chief", weight=2.0)
        .column("id", "integer", primary_key=True)
        .column("cid", "integer", caption="company", weight=1.0)
        .column("name", "text", heading=True, weight=3.0)
        .column("division", "text", weight=1.0)
        .done()
        .relation("PARTNERSHIP", concept="partnership", bridge=True, weight=1.0)
        .column("a_cid", "integer", primary_key=True)
        .column("b_cid", "integer", primary_key=True)
        .column("sealed", "integer", caption="signing year", weight=1.0)
        .done()
        .foreign_key("DEPARTMENT", ["cid"], "COMPANY", ["id"], verb="belongs to")
        .foreign_key("EMPLOYEE", ["did"], "DEPARTMENT", ["id"], verb="works in")
        .foreign_key("BOARD", ["cid"], "COMPANY", ["id"], verb="chairs")
        .foreign_key("EXECUTIVE", ["cid"], "COMPANY", ["id"], verb="leads")
        .foreign_key("PARTNERSHIP", ["a_cid"], "COMPANY", ["id"], verb="partners with")
        .foreign_key("PARTNERSHIP", ["b_cid"], "COMPANY", ["id"], verb="partnered by")
        .build(require_primary_keys=True)
    )


def companies_lexicon(schema: Schema) -> Lexicon:
    lexicon = default_lexicon(schema)
    # The concept plurals are deliberately NOT overridden: "companies",
    # "chairmen" and "chiefs" must come out of the morphology rules (the
    # validation corpus caught "chairmans" and "chieves" — see
    # tests/test_lexicon.py).
    lexicon.set_caption("COMPANY", "hq", "headquarters")
    lexicon.set_relationship_verb("COMPANY", "DEPARTMENT", "organises")
    return lexicon


def companies_database(seed: int = 0, scale: int = 1) -> Database:
    """A deterministic org chart (pure function of seed and scale)."""
    rng = random.Random(f"companies-{seed}")
    companies = [
        {
            "id": index + 1,
            "name": name if scale == 1 else f"{name} {index + 1}",
            "founded": 1900 + (index * 17) % 100,
            "sector": _SECTORS[index % len(_SECTORS)],
            "hq": _CITIES[index % len(_CITIES)],
        }
        for index, name in enumerate(_COMPANIES * scale)
    ]
    departments: List[dict] = []
    for cid in range(1, len(companies) + 1):
        for name in rng.sample(_DEPARTMENTS, rng.randint(2, 4)):
            departments.append(
                {
                    "id": len(departments) + 1,
                    "cid": cid,
                    "name": name,
                    "budget": rng.randrange(100_000, 5_000_000, 1000),
                }
            )
    employees = [
        {
            "id": index + 1,
            "did": rng.randint(1, len(departments)),
            "name": name if scale == 1 else f"{name} {index + 1}",
            "title": rng.choice(_TITLES),
            "salary": rng.randrange(30_000, 160_000, 500),
            "hired": rng.randint(1990, 2009),
        }
        for index, name in enumerate(_PEOPLE * (2 * scale))
    ]
    boards = [
        {
            "id": index + 1,
            "cid": rng.randint(1, len(companies)),
            "name": f"Chair {name.split()[1]}",
            "since": rng.randint(1995, 2009),
        }
        for index, name in enumerate(_PEOPLE[: len(companies)])
    ]
    executives = [
        {
            "id": index + 1,
            "cid": index % len(companies) + 1,
            "name": f"Chief {name.split()[0]}",
            "division": rng.choice(_DEPARTMENTS),
        }
        for index, name in enumerate(_PEOPLE[: 2 * len(companies) : 2])
    ]
    seen = set()
    partnerships = []
    for _ in range(3 * len(companies)):
        pair = (rng.randint(1, len(companies)), rng.randint(1, len(companies)))
        if pair[0] != pair[1] and pair not in seen:
            seen.add(pair)
            partnerships.append(
                {"a_cid": pair[0], "b_cid": pair[1], "sealed": rng.randint(1990, 2009)}
            )
    data: Dict[str, List[dict]] = {
        "COMPANY": companies,
        "DEPARTMENT": departments,
        "EMPLOYEE": employees,
        "BOARD": boards,
        "EXECUTIVE": executives,
        "PARTNERSHIP": partnerships,
    }
    database = Database(companies_schema())
    database.load(data)
    return database


def companies_corpus() -> List[CorpusQuery]:
    corpus: List[CorpusQuery] = []

    def add(name: str, category: str, sql: str) -> None:
        corpus.append(CorpusQuery(name=name, sql=sql, category=category))

    # --- path -----------------------------------------------------------
    for index, company in enumerate(["Acme Analytics", "Flux Energy", "Granite Bank"]):
        add(
            f"path_staff_of_{index}",
            "path",
            "select e.name from EMPLOYEE e, DEPARTMENT d, COMPANY c "
            f"where e.did = d.id and d.cid = c.id and c.name = '{company}'",
        )
    for index, sector in enumerate(["finance", "energy"]):
        add(
            f"path_chairmen_of_sector_{index}",
            "path",
            "select b.name from BOARD b, COMPANY c "
            f"where b.cid = c.id and c.sector = '{sector}'",
        )
    add(
        "path_chiefs_of_city",
        "path",
        "select x.name from EXECUTIVE x, COMPANY c "
        "where x.cid = c.id and c.hq = 'Osaka'",
    )
    add("path_old_companies", "path", "select c.name from COMPANY c where c.founded < 1930")
    add(
        "path_rich_departments",
        "path",
        "select d.name, c.name from DEPARTMENT d, COMPANY c "
        "where d.cid = c.id and d.budget > 4000000",
    )

    # --- subgraph -------------------------------------------------------
    for index, (sector, year) in enumerate(
        [("technology", 2000), ("food", 1995), ("automotive", 2005)]
    ):
        add(
            f"subgraph_company_hub_{index}",
            "subgraph",
            "select c.name, b.name "
            "from COMPANY c, DEPARTMENT d, BOARD b, EXECUTIVE x "
            "where d.cid = c.id and b.cid = c.id and x.cid = c.id "
            f"and c.sector = '{sector}' and b.since > {year}",
        )
    for index, title in enumerate(["engineer", "auditor"]):
        add(
            f"subgraph_title_chain_{index}",
            "subgraph",
            "select e.name, c.name "
            "from EMPLOYEE e, DEPARTMENT d, COMPANY c, BOARD b, EXECUTIVE x "
            "where e.did = d.id and d.cid = c.id and b.cid = c.id "
            f"and x.cid = c.id and e.title = '{title}'",
        )
    add(
        "subgraph_partnered_hub",
        "subgraph",
        "select c.name, b.name from COMPANY c, DEPARTMENT d, BOARD b, PARTNERSHIP p "
        "where d.cid = c.id and b.cid = c.id and p.a_cid = c.id "
        "and p.sealed > 2003",
    )
    add(
        "subgraph_led_and_chaired",
        "subgraph",
        "select x.name, b.name from COMPANY c, EXECUTIVE x, BOARD b, DEPARTMENT d "
        "where x.cid = c.id and b.cid = c.id and d.cid = c.id "
        "and d.name = 'legal'",
    )

    # --- graph ----------------------------------------------------------
    add(
        "graph_partner_pairs",
        "graph",
        "select c1.name, c2.name "
        "from COMPANY c1, PARTNERSHIP p, COMPANY c2 "
        "where p.a_cid = c1.id and p.b_cid = c2.id and c1.sector = c2.sector",
    )
    add(
        "graph_same_city_rivals",
        "graph",
        "select c1.name, c2.name from COMPANY c1, COMPANY c2 "
        "where c1.hq = c2.hq and c1.id > c2.id",
    )
    add(
        "graph_chair_is_chief",
        "graph",
        "select c.name from COMPANY c, BOARD b, EXECUTIVE x "
        "where b.cid = c.id and x.cid = c.id and b.name = x.name",
    )
    for index, year in enumerate([2000, 2005]):
        add(
            f"graph_partners_after_{index}",
            "graph",
            "select c1.name, c2.name "
            "from COMPANY c1, PARTNERSHIP p, COMPANY c2 "
            f"where p.a_cid = c1.id and p.b_cid = c2.id and p.sealed > {year}",
        )
    add(
        "graph_cross_product",
        "graph",
        "select c.name, e.name from COMPANY c, EMPLOYEE e "
        "where c.sector = 'logistics' and e.title = 'clerk'",
    )
    add(
        "graph_department_name_clash",
        "graph",
        "select d1.name from DEPARTMENT d1, DEPARTMENT d2 "
        "where d1.name = d2.name and d1.id <> d2.id and d1.budget > d2.budget",
    )

    # --- nested ---------------------------------------------------------
    for index, sector in enumerate(["finance", "technology"]):
        add(
            f"nested_staff_by_sector_{index}",
            "nested",
            "select e.name from EMPLOYEE e "
            "where e.did in (select d.id from DEPARTMENT d "
            "where d.cid in (select c.id from COMPANY c "
            f"where c.sector = '{sector}'))",
        )
    add(
        "nested_no_partners",
        "nested",
        "select c.name from COMPANY c "
        "where not exists (select * from PARTNERSHIP p where p.a_cid = c.id)",
    )
    add(
        "nested_boardless",
        "nested",
        "select c.name from COMPANY c "
        "where not exists (select * from BOARD b where b.cid = c.id)",
    )
    add(
        "nested_has_legal",
        "nested",
        "select c.name from COMPANY c "
        "where exists (select * from DEPARTMENT d "
        "where d.cid = c.id and d.name = 'legal')",
    )
    add(
        "nested_all_departments",
        "nested",
        "select c.name from COMPANY c "
        "where not exists (select * from DEPARTMENT d1 "
        "where not exists (select * from DEPARTMENT d2 "
        "where d2.cid = c.id and d2.name = d1.name))",
    )
    add(
        "nested_paid_above_any_clerk",
        "nested",
        "select e.name from EMPLOYEE e "
        "where e.salary > any (select e1.salary from EMPLOYEE e1 "
        "where e1.title = 'clerk')",
    )

    # --- aggregate ------------------------------------------------------
    add(
        "agg_headcount",
        "aggregate",
        "select c.name, count(*) from COMPANY c, DEPARTMENT d, EMPLOYEE e "
        "where d.cid = c.id and e.did = d.id group by c.name",
    )
    for index, threshold in enumerate([3, 6]):
        add(
            f"agg_big_departments_{index}",
            "aggregate",
            "select d.name, count(*) from DEPARTMENT d, EMPLOYEE e "
            f"where e.did = d.id group by d.name having count(*) > {threshold}",
        )
    add(
        "agg_avg_salary_by_title",
        "aggregate",
        "select e.title, avg(e.salary) from EMPLOYEE e group by e.title",
    )
    add(
        "agg_budget_by_sector",
        "aggregate",
        "select c.sector, sum(d.budget) from COMPANY c, DEPARTMENT d "
        "where d.cid = c.id group by c.sector",
    )
    add(
        "agg_extremes",
        "aggregate",
        "select max(e.salary), min(e.hired) from EMPLOYEE e",
    )
    add(
        "agg_multi_board_companies",
        "aggregate",
        "select c.id, c.name, count(*) from COMPANY c, DEPARTMENT d "
        "where d.cid = c.id group by c.id, c.name "
        "having 1 < (select count(*) from BOARD b where b.cid = c.id)",
    )

    # --- impossible -----------------------------------------------------
    add(
        "imp_single_title_departments",
        "impossible",
        "select d.id, d.name from DEPARTMENT d, EMPLOYEE e "
        "where e.did = d.id group by d.id, d.name "
        "having count(distinct e.title) = 1",
    )
    add(
        "imp_one_city_sectors",
        "impossible",
        "select c.sector from COMPANY c group by c.sector "
        "having count(distinct c.hq) = 1",
    )
    add(
        "imp_earliest_hire_of_shared_title",
        "impossible",
        "select e.name from EMPLOYEE e "
        "where e.hired <= all (select e1.hired from EMPLOYEE e1, EMPLOYEE e2 "
        "where e1.title = e.title and e2.title = e.title and e1.id <> e2.id)",
    )
    add(
        "imp_top_salary",
        "impossible",
        "select e.name from EMPLOYEE e "
        "where e.salary >= all (select e1.salary from EMPLOYEE e1)",
    )
    return corpus


register_domain(
    Domain(
        name="companies",
        description="Org charts: companies, departments, employees, boards, chiefs",
        schema_factory=companies_schema,
        database_factory=companies_database,
        corpus_factory=companies_corpus,
        lexicon_factory=companies_lexicon,
    )
)
