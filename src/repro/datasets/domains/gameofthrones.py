"""Fantasy-saga domain: noble houses, characters, direwolves, battles.

Modelled on the text2typeql Game-of-Thrones corpus.  The graph shape is
the interesting part: ``ALLIANCE`` is a self-referential bridge over
HOUSE (like PARTNERSHIP over COMPANY), ``FOUGHT`` is a classic m:n
bridge, and DIREWOLF hangs off CHARACTER so "direwolf" keeps the
``-f → -ves`` morphology rule honest in the opposite direction from
"chief" (it MUST stay "direwolves").
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.catalog.builder import SchemaBuilder
from repro.catalog.schema import Schema
from repro.datasets.domains import CorpusQuery, Domain, register_domain
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.storage.database import Database

_HOUSES = [
    ("Stark", "Winterfell", "the North"),
    ("Lannister", "Casterly Rock", "the Westerlands"),
    ("Targaryen", "Dragonstone", "the Crownlands"),
    ("Baratheon", "Storm's End", "the Stormlands"),
    ("Tyrell", "Highgarden", "the Reach"),
    ("Martell", "Sunspear", "Dorne"),
    ("Greyjoy", "Pyke", "the Iron Islands"),
    ("Arryn", "the Eyrie", "the Vale"),
]
_GIVEN = [
    "Aeron", "Brienne", "Cersei", "Davos", "Elia", "Florian", "Gendry",
    "Hodor", "Irri", "Jaqen", "Kevan", "Lyanna", "Meera", "Nymeria",
    "Oberyn", "Podrick", "Qhono", "Rickon", "Sansa", "Tormund",
]
_ROLES = ["knight", "maester", "lord", "lady", "squire", "septon"]
_WOLVES = ["Ghost", "Grey Wind", "Lady", "Nymeria", "Shaggydog", "Summer"]
_BATTLEFIELDS = [
    "the Green Fork", "the Whispering Wood", "the Blackwater", "Castle Black",
    "Hardhome", "the Bastards' Field", "King's Landing", "Winterfell",
]


def gameofthrones_schema() -> Schema:
    return (
        SchemaBuilder("gameofthrones", description="Noble houses and their wars")
        .relation("HOUSE", concept="house", weight=3.0)
        .column("id", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=3.0)
        .column("seat", "text", weight=1.5)
        .column("region", "text", weight=2.0)
        .done()
        .relation("CHARACTER", concept="character", weight=3.0)
        .column("id", "integer", primary_key=True)
        .column("hid", "integer", caption="house", weight=1.0)
        .column("name", "text", heading=True, weight=3.0)
        .column("role", "text", weight=1.5)
        .column("born", "integer", caption="birth year", weight=1.0)
        .done()
        .relation("DIREWOLF", concept="direwolf", weight=1.5)
        .column("id", "integer", primary_key=True)
        .column("owner", "integer", caption="owner", weight=1.0)
        .column("name", "text", heading=True, weight=2.5)
        .done()
        .relation("BATTLE", concept="battle", weight=2.0)
        .column("id", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=2.5)
        .column("site", "text", weight=1.5)
        .column("year", "integer", weight=1.5)
        .done()
        .relation("FOUGHT", concept="engagement", bridge=True, weight=1.0)
        .column("bid", "integer", primary_key=True)
        .column("cid", "integer", primary_key=True)
        .column("outcome", "text", weight=1.0)
        .done()
        .relation("ALLIANCE", concept="alliance", bridge=True, weight=1.0)
        .column("a_hid", "integer", primary_key=True)
        .column("b_hid", "integer", primary_key=True)
        .column("forged", "integer", caption="forging year", weight=1.0)
        .done()
        .foreign_key("CHARACTER", ["hid"], "HOUSE", ["id"], verb="serves")
        .foreign_key("DIREWOLF", ["owner"], "CHARACTER", ["id"], verb="belongs to")
        .foreign_key("FOUGHT", ["bid"], "BATTLE", ["id"], verb="fought in")
        .foreign_key("FOUGHT", ["cid"], "CHARACTER", ["id"], verb="fought by")
        .foreign_key("ALLIANCE", ["a_hid"], "HOUSE", ["id"], verb="allied with")
        .foreign_key("ALLIANCE", ["b_hid"], "HOUSE", ["id"], verb="allied by")
        .build(require_primary_keys=True)
    )


def gameofthrones_lexicon(schema: Schema) -> Lexicon:
    lexicon = default_lexicon(schema)
    # "direwolf" → "direwolves" must come from the morphology rules, not
    # an override; keeping the default here is the regression guard.
    lexicon.set_caption("BATTLE", "site", "battlefield")
    lexicon.set_relationship_verb("HOUSE", "CHARACTER", "commands")
    return lexicon


def gameofthrones_database(seed: int = 0, scale: int = 1) -> Database:
    """A deterministic saga (pure function of seed and scale)."""
    rng = random.Random(f"gameofthrones-{seed}")
    houses = [
        {"id": index + 1, "name": name, "seat": seat, "region": region}
        for index, (name, seat, region) in enumerate(_HOUSES)
    ]
    characters = [
        {
            "id": index + 1,
            "hid": rng.randint(1, len(houses)),
            "name": f"{given} {houses[(index * 3) % len(houses)]['name']}"
            if scale == 1
            else f"{given} {index + 1}",
            "role": rng.choice(_ROLES),
            "born": rng.randint(240, 290),
        }
        for index, given in enumerate(_GIVEN * (2 * scale))
    ]
    direwolves = [
        {
            "id": index + 1,
            "owner": rng.randint(1, len(characters)),
            "name": name if scale == 1 else f"{name} {index + 1}",
        }
        for index, name in enumerate(_WOLVES * scale)
    ]
    battles = [
        {
            "id": index + 1,
            "name": f"Battle of {site}" if scale == 1 else f"Battle {index + 1}",
            "site": site,
            "year": 295 + (index * 3) % 10,
        }
        for index, site in enumerate(_BATTLEFIELDS * scale)
    ]
    fought = []
    seen = set()
    for bid in range(1, len(battles) + 1):
        for cid in rng.sample(range(1, len(characters) + 1), rng.randint(3, 6)):
            if (bid, cid) not in seen:
                seen.add((bid, cid))
                fought.append(
                    {"bid": bid, "cid": cid, "outcome": rng.choice(["won", "lost"])}
                )
    alliances = []
    pairs = set()
    for _ in range(3 * len(houses)):
        pair = (rng.randint(1, len(houses)), rng.randint(1, len(houses)))
        if pair[0] != pair[1] and pair not in pairs:
            pairs.add(pair)
            alliances.append(
                {"a_hid": pair[0], "b_hid": pair[1], "forged": rng.randint(280, 299)}
            )
    data: Dict[str, List[dict]] = {
        "HOUSE": houses,
        "CHARACTER": characters,
        "DIREWOLF": direwolves,
        "BATTLE": battles,
        "FOUGHT": fought,
        "ALLIANCE": alliances,
    }
    database = Database(gameofthrones_schema())
    database.load(data)
    return database


def gameofthrones_corpus() -> List[CorpusQuery]:
    corpus: List[CorpusQuery] = []

    def add(name: str, category: str, sql: str) -> None:
        corpus.append(CorpusQuery(name=name, sql=sql, category=category))

    # --- path -----------------------------------------------------------
    for index, house in enumerate(["Stark", "Lannister", "Martell"]):
        add(
            f"path_members_of_{index}",
            "path",
            "select c.name from CHARACTER c, HOUSE h "
            f"where c.hid = h.id and h.name = '{house}'",
        )
    for index, region in enumerate(["the North", "Dorne"]):
        add(
            f"path_wolves_of_region_{index}",
            "path",
            "select w.name from DIREWOLF w, CHARACTER c, HOUSE h "
            f"where w.owner = c.id and c.hid = h.id and h.region = '{region}'",
        )
    add(
        "path_late_battles",
        "path",
        "select b.name from BATTLE b where b.year > 300",
    )
    add(
        "path_knights",
        "path",
        "select c.name from CHARACTER c where c.role = 'knight'",
    )
    add(
        "path_old_guard",
        "path",
        "select c.name, h.name from CHARACTER c, HOUSE h "
        "where c.hid = h.id and c.born < 250",
    )

    # --- subgraph -------------------------------------------------------
    for index, outcome in enumerate(["won", "lost"]):
        add(
            f"subgraph_veterans_{index}",
            "subgraph",
            "select c.name, b.name "
            "from CHARACTER c, FOUGHT f, BATTLE b, HOUSE h, DIREWOLF w "
            "where f.cid = c.id and f.bid = b.id and c.hid = h.id "
            f"and w.owner = c.id and f.outcome = '{outcome}'",
        )
    for index, site in enumerate(["Winterfell", "the Blackwater"]):
        add(
            f"subgraph_site_fighters_{index}",
            "subgraph",
            "select c.name, h.region "
            "from CHARACTER c, FOUGHT f, BATTLE b, HOUSE h, DIREWOLF w "
            "where f.cid = c.id and f.bid = b.id and c.hid = h.id "
            f"and w.owner = c.id and b.site = '{site}'",
        )
    add(
        "subgraph_wolf_owners_at_war",
        "subgraph",
        "select w.name, b.name "
        "from DIREWOLF w, CHARACTER c, FOUGHT f, BATTLE b, HOUSE h "
        "where w.owner = c.id and f.cid = c.id and f.bid = b.id "
        "and c.hid = h.id",
    )

    add(
        "subgraph_victorious_wolf_owners",
        "subgraph",
        "select h.name, w.name "
        "from HOUSE h, CHARACTER c, DIREWOLF w, FOUGHT f "
        "where c.hid = h.id and w.owner = c.id and f.cid = c.id "
        "and f.outcome = 'won'",
    )
    add(
        "path_squires_of_vale",
        "path",
        "select c.name from CHARACTER c, HOUSE h "
        "where c.hid = h.id and c.role = 'squire' and h.region = 'the Vale'",
    )

    # --- graph ----------------------------------------------------------
    add(
        "graph_allied_pairs",
        "graph",
        "select h1.name, h2.name from HOUSE h1, ALLIANCE a, HOUSE h2 "
        "where a.a_hid = h1.id and a.b_hid = h2.id",
    )
    add(
        "graph_comrades",
        "graph",
        "select c1.name, c2.name "
        "from CHARACTER c1, FOUGHT f1, FOUGHT f2, CHARACTER c2 "
        "where f1.cid = c1.id and f2.cid = c2.id and f1.bid = f2.bid "
        "and c1.id < c2.id and f1.outcome = f2.outcome",
    )
    add(
        "graph_wolf_named_after_character",
        "graph",
        "select w.name from DIREWOLF w, CHARACTER c "
        "where w.name = c.name",
    )
    for index, year in enumerate([290, 295]):
        add(
            f"graph_recent_allies_{index}",
            "graph",
            "select h1.name, h2.name from HOUSE h1, ALLIANCE a, HOUSE h2 "
            f"where a.a_hid = h1.id and a.b_hid = h2.id and a.forged > {year}",
        )
    add(
        "graph_cross_product",
        "graph",
        "select h.name, b.name from HOUSE h, BATTLE b "
        "where h.region = 'the North' and b.year > 300",
    )
    add(
        "graph_battle_at_seat",
        "graph",
        "select b.name, h.name from BATTLE b, HOUSE h "
        "where b.site = h.seat",
    )

    # --- nested ---------------------------------------------------------
    for index, site in enumerate(["Castle Black", "Hardhome"]):
        add(
            f"nested_fought_at_{index}",
            "nested",
            "select c.name from CHARACTER c "
            "where c.id in (select f.cid from FOUGHT f "
            "where f.bid in (select b.id from BATTLE b "
            f"where b.site = '{site}'))",
        )
    add(
        "nested_never_fought",
        "nested",
        "select c.name from CHARACTER c "
        "where not exists (select * from FOUGHT f where f.cid = c.id)",
    )
    add(
        "nested_wolfless",
        "nested",
        "select c.name from CHARACTER c "
        "where not exists (select * from DIREWOLF w where w.owner = c.id)",
    )
    add(
        "nested_has_maester",
        "nested",
        "select h.name from HOUSE h "
        "where exists (select * from CHARACTER c "
        "where c.hid = h.id and c.role = 'maester')",
    )
    add(
        "nested_fought_every_battle",
        "nested",
        "select c.name from CHARACTER c "
        "where not exists (select * from BATTLE b "
        "where not exists (select * from FOUGHT f "
        "where f.cid = c.id and f.bid = b.id))",
    )
    add(
        "nested_older_than_any_squire",
        "nested",
        "select c.name from CHARACTER c "
        "where c.born < any (select c1.born from CHARACTER c1 "
        "where c1.role = 'squire')",
    )

    # --- aggregate ------------------------------------------------------
    add(
        "agg_house_sizes",
        "aggregate",
        "select h.name, count(*) from HOUSE h, CHARACTER c "
        "where c.hid = h.id group by h.name",
    )
    for index, threshold in enumerate([4, 5]):
        add(
            f"agg_big_battles_{index}",
            "aggregate",
            "select b.name, count(*) from BATTLE b, FOUGHT f "
            f"where f.bid = b.id group by b.name having count(*) >= {threshold}",
        )
    add(
        "agg_avg_birth_by_role",
        "aggregate",
        "select c.role, avg(c.born) from CHARACTER c group by c.role",
    )
    add(
        "agg_battles_by_year",
        "aggregate",
        "select b.year, count(*) from BATTLE b group by b.year",
    )
    add(
        "agg_extremes",
        "aggregate",
        "select min(c.born), max(b.year) from CHARACTER c, BATTLE b",
    )
    add(
        "agg_multi_wolf_houses",
        "aggregate",
        "select h.id, h.name, count(*) from HOUSE h, CHARACTER c "
        "where c.hid = h.id group by h.id, h.name "
        "having 1 < (select count(*) from DIREWOLF w, CHARACTER c1 "
        "where w.owner = c1.id and c1.hid = h.id)",
    )

    # --- impossible -----------------------------------------------------
    add(
        "imp_single_role_houses",
        "impossible",
        "select h.id, h.name from HOUSE h, CHARACTER c "
        "where c.hid = h.id group by h.id, h.name "
        "having count(distinct c.role) = 1",
    )
    add(
        "imp_one_site_years",
        "impossible",
        "select b.year from BATTLE b group by b.year "
        "having count(distinct b.site) = 1",
    )
    add(
        "imp_firstborn_of_shared_role",
        "impossible",
        "select c.name from CHARACTER c "
        "where c.born <= all (select c1.born from CHARACTER c1, CHARACTER c2 "
        "where c1.role = c.role and c2.role = c.role and c1.id <> c2.id)",
    )
    add(
        "imp_latest_battle",
        "impossible",
        "select b.name from BATTLE b "
        "where b.year >= all (select b1.year from BATTLE b1)",
    )
    return corpus


register_domain(
    Domain(
        name="gameofthrones",
        description="Noble houses, characters, direwolves, battles, alliances",
        schema_factory=gameofthrones_schema,
        database_factory=gameofthrones_database,
        corpus_factory=gameofthrones_corpus,
        lexicon_factory=gameofthrones_lexicon,
    )
)
