"""Social-network domain: users, tweets, follows, hashtags and mentions.

The graph shape is deliberately different from the movie schema: the
``FOLLOWS`` bridge points *twice at the same relation* (follower and
followee are both USERS), so join paths through it always create
multi-instance graph queries, and ``MENTION`` closes cycles back to the
tweet's author.  The vocabulary exercises regular ``-y``/``-s`` plurals
and short jargon nouns ("retweet", "hashtag").
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.catalog.builder import SchemaBuilder
from repro.catalog.schema import Schema
from repro.datasets.domains import CorpusQuery, Domain, register_domain
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.storage.database import Database

_COUNTRIES = ["Greece", "USA", "Japan", "Brazil", "Germany", "Kenya"]
_TAGS = ["news", "sports", "music", "food", "travel", "science", "art", "coding"]
_HANDLES = [
    "ada", "bela", "cosmo", "dido", "echo_fan", "fermi", "gala", "hypatia",
    "iris", "juno", "kilo", "lyra", "mira", "nova", "orion", "pavo",
    "quark", "rhea", "sol", "tycho", "uma", "vega", "wren", "xeno",
]
_WORDS = [
    "sunrise over the harbor", "shipping a new release", "coffee first",
    "rainy day reading", "marathon training log", "concert last night",
    "garden update", "deep sea documentary", "street food tour",
    "library haul", "midnight debugging", "weekend hike",
]


def twitter_schema() -> Schema:
    return (
        SchemaBuilder("twitter", description="Social network of users and tweets")
        .relation("USERS", concept="user", weight=3.0)
        .column("id", "integer", primary_key=True)
        .column("handle", "text", heading=True, weight=3.0)
        .column("name", "text", caption="display name", weight=2.0)
        .column("country", "text", weight=1.5)
        .done()
        .relation("TWEET", concept="tweet", weight=2.5)
        .column("id", "integer", primary_key=True)
        .column("uid", "integer", caption="author", weight=1.0)
        .column("body", "text", heading=True, weight=3.0)
        .column("posted", "integer", caption="posting year", weight=1.5)
        .column("likes", "integer", caption="like count", weight=1.5)
        .done()
        .relation("FOLLOWS", concept="follow", bridge=True, weight=1.0)
        .column("follower", "integer", primary_key=True)
        .column("followee", "integer", primary_key=True)
        .done()
        .relation("HASHTAG", concept="hashtag", weight=1.5)
        .column("tid", "integer", primary_key=True)
        .column("tag", "text", heading=True, primary_key=True)
        .done()
        .relation("MENTION", concept="mention", bridge=True, weight=1.0)
        .column("tid", "integer", primary_key=True)
        .column("uid", "integer", primary_key=True)
        .done()
        .foreign_key("TWEET", ["uid"], "USERS", ["id"], verb="posted by")
        .foreign_key("FOLLOWS", ["follower"], "USERS", ["id"], verb="follows")
        .foreign_key("FOLLOWS", ["followee"], "USERS", ["id"], verb="followed by")
        .foreign_key("HASHTAG", ["tid"], "TWEET", ["id"], verb="tags")
        .foreign_key("MENTION", ["tid"], "TWEET", ["id"], verb="appears in")
        .foreign_key("MENTION", ["uid"], "USERS", ["id"], verb="mentions")
        .build(require_primary_keys=True)
    )


def twitter_lexicon(schema: Schema) -> Lexicon:
    lexicon = default_lexicon(schema)
    lexicon.set_concept("USERS", "user", "users")
    lexicon.set_caption("TWEET", "posted", "posting year")
    lexicon.set_relationship_verb("USERS", "TWEET", "posted")
    return lexicon


def twitter_database(seed: int = 0, scale: int = 1) -> Database:
    """A deterministic social network (pure function of seed and scale)."""
    # String seeds hash through sha512 inside ``random.Random`` — stable
    # across processes, unlike tuple seeds (salted ``hash()``).
    rng = random.Random(f"twitter-{seed}")
    users = [
        {
            "id": index + 1,
            "handle": handle if scale == 1 else f"{handle}_{index + 1}",
            "name": handle.replace("_", " ").title(),
            "country": _COUNTRIES[index % len(_COUNTRIES)],
        }
        for index, handle in enumerate(_HANDLES * scale)
    ]
    tweets: List[dict] = []
    hashtags: List[dict] = []
    mentions: List[dict] = []
    for tid in range(1, 1 + 60 * scale):
        author = rng.randint(1, len(users))
        tweets.append(
            {
                "id": tid,
                "uid": author,
                "body": f"{rng.choice(_WORDS)} #{tid}",
                "posted": rng.randint(2004, 2009),
                "likes": rng.randint(0, 500),
            }
        )
        for tag in rng.sample(_TAGS, rng.randint(0, 3)):
            hashtags.append({"tid": tid, "tag": tag})
        mentioned = rng.sample(range(1, len(users) + 1), rng.randint(0, 2))
        # Every fifth tweet mentions its own author, closing the cycle the
        # graph-category queries look for.
        if tid % 5 == 0 and author not in mentioned:
            mentioned.append(author)
        mentions.extend({"tid": tid, "uid": uid} for uid in sorted(mentioned))
    seen = set()
    follows = []
    for _ in range(90 * scale):
        pair = (rng.randint(1, len(users)), rng.randint(1, len(users)))
        if pair[0] != pair[1] and pair not in seen:
            seen.add(pair)
            follows.append({"follower": pair[0], "followee": pair[1]})
    data: Dict[str, List[dict]] = {
        "USERS": users,
        "TWEET": tweets,
        "FOLLOWS": follows,
        "HASHTAG": hashtags,
        "MENTION": mentions,
    }
    database = Database(twitter_schema())
    database.load(data)
    return database


def twitter_corpus() -> List[CorpusQuery]:
    corpus: List[CorpusQuery] = []

    def add(name: str, category: str, sql: str) -> None:
        corpus.append(CorpusQuery(name=name, sql=sql, category=category))

    # --- path -----------------------------------------------------------
    for index, handle in enumerate(["ada", "juno", "vega", "quark"]):
        add(
            f"path_by_author_{index}",
            "path",
            "select t.body from TWEET t, USERS u "
            f"where t.uid = u.id and u.handle = '{handle}'",
        )
    for index, tag in enumerate(["news", "music"]):
        add(
            f"path_tag_authors_{index}",
            "path",
            "select u.handle from HASHTAG h, TWEET t, USERS u "
            f"where h.tid = t.id and t.uid = u.id and h.tag = '{tag}'",
        )
    add("path_likes", "path", "select t.body from TWEET t where t.likes > 400")
    add(
        "path_country_tweets",
        "path",
        "select t.body, t.posted from TWEET t, USERS u "
        "where t.uid = u.id and u.country = 'Japan' and t.posted > 2006",
    )

    # --- subgraph -------------------------------------------------------
    for index, (tag, country) in enumerate(
        [("sports", "Greece"), ("travel", "USA"), ("coding", "Brazil")]
    ):
        add(
            f"subgraph_tag_country_{index}",
            "subgraph",
            "select u.handle, t.body "
            "from TWEET t, USERS u, HASHTAG h, MENTION m "
            "where t.uid = u.id and h.tid = t.id and m.tid = t.id "
            f"and h.tag = '{tag}' and u.country = '{country}'",
        )
    for index, likes in enumerate([100, 250, 400]):
        add(
            f"subgraph_popular_tagged_{index}",
            "subgraph",
            "select u.handle, h.tag "
            "from TWEET t, USERS u, HASHTAG h, MENTION m "
            f"where t.uid = u.id and h.tid = t.id and m.tid = t.id and t.likes > {likes}",
        )
    add(
        "subgraph_mentioned_user",
        "subgraph",
        "select u.handle, t.body from TWEET t, HASHTAG h, MENTION m, USERS u "
        "where h.tid = t.id and m.tid = t.id and t.uid = u.id "
        "and h.tag = 'science'",
    )

    # --- graph ----------------------------------------------------------
    add(
        "graph_follow_pairs",
        "graph",
        "select u1.handle, u2.handle "
        "from USERS u1, FOLLOWS f, USERS u2 "
        "where f.follower = u1.id and f.followee = u2.id and u1.country = u2.country",
    )
    add(
        "graph_mutual_mentions",
        "graph",
        "select u1.handle, u2.handle "
        "from TWEET t, MENTION m1, USERS u1, MENTION m2, USERS u2 "
        "where t.id = m1.tid and m1.uid = u1.id "
        "and t.id = m2.tid and m2.uid = u2.id and u1.id > u2.id",
    )
    add(
        "graph_self_mention",
        "graph",
        "select t.body from TWEET t, MENTION m "
        "where m.tid = t.id and m.uid = t.uid",
    )
    for index, country in enumerate(["Greece", "Kenya"]):
        add(
            f"graph_follows_compatriot_{index}",
            "graph",
            "select u1.handle, u2.handle "
            "from USERS u1, FOLLOWS f, USERS u2 "
            "where f.follower = u1.id and f.followee = u2.id "
            f"and u1.country = '{country}' and u2.country = '{country}'",
        )
    add(
        "graph_cross_product",
        "graph",
        "select u.handle, h.tag from USERS u, HASHTAG h "
        "where u.country = 'Germany' and h.tag = 'art'",
    )
    add(
        "graph_body_equals_tag",
        "graph",
        "select t.body from TWEET t, HASHTAG h "
        "where h.tid = t.id and h.tag = t.body",
    )

    # --- nested ---------------------------------------------------------
    for index, handle in enumerate(["ada", "mira"]):
        add(
            f"nested_mentioners_{index}",
            "nested",
            "select t.body from TWEET t "
            "where t.id in (select m.tid from MENTION m "
            "where m.uid in (select u.id from USERS u "
            f"where u.handle = '{handle}'))",
        )
    for index, tag in enumerate(["food", "news"]):
        add(
            f"nested_no_tag_{index}",
            "nested",
            "select t.body from TWEET t "
            "where not exists (select * from HASHTAG h "
            f"where h.tid = t.id and h.tag = '{tag}')",
        )
    add(
        "nested_silent_users",
        "nested",
        "select u.handle from USERS u "
        "where not exists (select * from TWEET t where t.uid = u.id)",
    )
    add(
        "nested_mentioned_somewhere",
        "nested",
        "select u.handle from USERS u "
        "where exists (select * from MENTION m where m.uid = u.id)",
    )
    add(
        "nested_all_tags",
        "nested",
        "select u.handle from USERS u "
        "where not exists (select * from HASHTAG h1 "
        "where not exists (select * from TWEET t, HASHTAG h2 "
        "where t.uid = u.id and h2.tid = t.id and h2.tag = h1.tag))",
    )
    add(
        "nested_likes_above_some",
        "nested",
        "select t.body from TWEET t "
        "where t.likes > any (select t1.likes from TWEET t1 where t1.posted = 2004)",
    )

    # --- aggregate ------------------------------------------------------
    add(
        "agg_tweets_per_user",
        "aggregate",
        "select u.handle, count(*) from USERS u, TWEET t "
        "where t.uid = u.id group by u.handle",
    )
    for index, threshold in enumerate([2, 4]):
        add(
            f"agg_prolific_{index}",
            "aggregate",
            "select u.handle, count(*) from USERS u, TWEET t "
            f"where t.uid = u.id group by u.handle having count(*) > {threshold}",
        )
    add(
        "agg_avg_likes_by_country",
        "aggregate",
        "select u.country, avg(t.likes) from USERS u, TWEET t "
        "where t.uid = u.id group by u.country",
    )
    add(
        "agg_tag_spread",
        "aggregate",
        "select h.tag, count(distinct t.uid) from HASHTAG h, TWEET t "
        "where h.tid = t.id group by h.tag",
    )
    add(
        "agg_max_likes",
        "aggregate",
        "select max(t.likes), min(t.posted) from TWEET t",
    )
    add(
        "agg_busy_multi_tag",
        "aggregate",
        "select t.id, t.body, count(*) from TWEET t, MENTION m "
        "where t.id = m.tid group by t.id, t.body "
        "having 1 < (select count(*) from HASHTAG h where h.tid = t.id)",
    )
    add(
        "agg_followers_per_user",
        "aggregate",
        "select u.handle, count(*) from USERS u, FOLLOWS f "
        "where f.followee = u.id group by u.handle having count(*) >= 3",
    )

    # --- impossible -----------------------------------------------------
    add(
        "imp_same_year_posters",
        "impossible",
        "select u.id, u.handle from USERS u, TWEET t "
        "where t.uid = u.id group by u.id, u.handle "
        "having count(distinct t.posted) = 1",
    )
    add(
        "imp_single_country_tag",
        "impossible",
        "select h.tag from HASHTAG h, TWEET t, USERS u "
        "where h.tid = t.id and t.uid = u.id group by h.tag "
        "having count(distinct u.country) = 1",
    )
    add(
        "imp_earliest_repeated_body",
        "impossible",
        "select u.handle from USERS u, TWEET t "
        "where t.uid = u.id "
        "and t.posted <= all (select t1.posted from TWEET t1, TWEET t2 "
        "where t1.body = t.body and t2.body = t.body and t1.id <> t2.id)",
    )
    add(
        "imp_most_liked",
        "impossible",
        "select t.body from TWEET t "
        "where t.likes >= all (select t1.likes from TWEET t1)",
    )
    return corpus


register_domain(
    Domain(
        name="twitter",
        description="Social network: users, tweets, follows, hashtags, mentions",
        schema_factory=twitter_schema,
        database_factory=twitter_database,
        corpus_factory=twitter_corpus,
        lexicon_factory=twitter_lexicon,
    )
)
