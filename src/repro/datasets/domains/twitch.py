"""Streaming-platform domain: games, heroes, streamers, channels, streams.

The FK chains here are one hop deeper than the movie schema's
(HERO → GAME ← STREAM → CHANNEL → STREAMER), which stresses the schema
graph's path search, and the vocabulary exercises the ``-o`` plural rules
in both directions: "hero" must become "heroes" while "video" must stay
"videos".
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.catalog.builder import SchemaBuilder
from repro.catalog.schema import Schema
from repro.datasets.domains import CorpusQuery, Domain, register_domain
from repro.lexicon.lexicon import Lexicon, default_lexicon
from repro.storage.database import Database

_GENRES = ["moba", "fps", "rpg", "strategy", "platformer", "racing"]
_GAMES = [
    "Ancient Arena", "Nebula Strike", "Dragon Keep", "Iron Banners",
    "Pixel Dash", "Turbo Rally", "Starfall Tactics", "Mystic Vale",
]
_HERO_ROLES = ["tank", "support", "carry", "assassin", "marksman"]
_HERO_NAMES = [
    "Aurora", "Brick", "Cinder", "Drift", "Ember", "Frost", "Gale", "Haze",
    "Ion", "Jolt", "Karma", "Lumen", "Mist", "Nimbus", "Onyx", "Pyre",
]
_STREAMERS = [
    "pixelqueen", "nightowl", "turbo_ted", "sage", "lowping", "warpcore",
    "glitchy", "moss", "rocketpace", "quietstorm", "daybreak", "fjord",
]
_COUNTRIES = ["Sweden", "Korea", "Canada", "Spain", "Poland", "Chile"]


def twitch_schema() -> Schema:
    return (
        SchemaBuilder("twitch", description="Game-streaming platform")
        .relation("GAME", concept="game", weight=3.0)
        .column("id", "integer", primary_key=True)
        .column("title", "text", heading=True, weight=3.0)
        .column("genre", "text", weight=2.0)
        .column("released", "integer", caption="release year", weight=1.5)
        .done()
        .relation("HERO", concept="hero", weight=2.0)
        .column("id", "integer", primary_key=True)
        .column("gid", "integer", caption="game", weight=1.0)
        .column("name", "text", heading=True, weight=3.0)
        .column("role", "text", weight=1.5)
        .done()
        .relation("STREAMER", concept="streamer", weight=2.5)
        .column("id", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=3.0)
        .column("country", "text", weight=1.5)
        .done()
        .relation("CHANNEL", concept="channel", weight=2.0)
        .column("id", "integer", primary_key=True)
        .column("sid", "integer", caption="owner", weight=1.0)
        .column("name", "text", heading=True, weight=3.0)
        .column("followers", "integer", caption="follower count", weight=1.5)
        .done()
        .relation("STREAM", concept="stream", weight=2.0)
        .column("id", "integer", primary_key=True)
        .column("cid", "integer", caption="channel", weight=1.0)
        .column("gid", "integer", caption="game", weight=1.0)
        .column("title", "text", heading=True, weight=2.5)
        .column("viewers", "integer", caption="viewer count", weight=1.5)
        .column("aired", "integer", caption="broadcast year", weight=1.0)
        .done()
        .relation("FEATURED", concept="appearance", bridge=True, weight=1.0)
        .column("stream_id", "integer", primary_key=True)
        .column("hero_id", "integer", primary_key=True)
        .done()
        .relation("VIDEO", concept="video", weight=1.5)
        .column("id", "integer", primary_key=True)
        .column("cid", "integer", caption="channel", weight=1.0)
        .column("title", "text", heading=True, weight=2.5)
        .column("views", "integer", caption="view count", weight=1.5)
        .done()
        .foreign_key("HERO", ["gid"], "GAME", ["id"], verb="belongs to")
        .foreign_key("CHANNEL", ["sid"], "STREAMER", ["id"], verb="run by")
        .foreign_key("STREAM", ["cid"], "CHANNEL", ["id"], verb="broadcast on")
        .foreign_key("STREAM", ["gid"], "GAME", ["id"], verb="shows")
        .foreign_key("FEATURED", ["stream_id"], "STREAM", ["id"], verb="features")
        .foreign_key("FEATURED", ["hero_id"], "HERO", ["id"], verb="featured in")
        .foreign_key("VIDEO", ["cid"], "CHANNEL", ["id"], verb="archived on")
        .build(require_primary_keys=True)
    )


def twitch_lexicon(schema: Schema) -> Lexicon:
    lexicon = default_lexicon(schema)
    # "hero" and "video" rely on the morphology defaults on purpose: the
    # validation corpus is what caught "heros" (see tests/test_lexicon.py).
    lexicon.set_caption("STREAM", "aired", "broadcast year")
    lexicon.set_relationship_verb("STREAMER", "CHANNEL", "runs")
    return lexicon


def twitch_database(seed: int = 0, scale: int = 1) -> Database:
    """A deterministic streaming platform (pure function of seed and scale)."""
    rng = random.Random(f"twitch-{seed}")
    games = [
        {
            "id": index + 1,
            "title": title if scale == 1 else f"{title} {index + 1}",
            "genre": _GENRES[index % len(_GENRES)],
            "released": 2000 + (index * 7) % 10,
        }
        for index, title in enumerate(_GAMES * scale)
    ]
    heroes = [
        {
            "id": index + 1,
            "gid": rng.randint(1, len(games)),
            "name": name if scale == 1 else f"{name} {index + 1}",
            "role": rng.choice(_HERO_ROLES),
        }
        for index, name in enumerate(_HERO_NAMES * scale)
    ]
    streamers = [
        {
            "id": index + 1,
            "name": name if scale == 1 else f"{name}_{index + 1}",
            "country": _COUNTRIES[index % len(_COUNTRIES)],
        }
        for index, name in enumerate(_STREAMERS * scale)
    ]
    channels = []
    for index in range(len(streamers)):
        channels.append(
            {
                "id": index + 1,
                "sid": index + 1,
                "name": f"{streamers[index]['name']}_tv",
                "followers": rng.randint(50, 90000),
            }
        )
    streams: List[dict] = []
    featured: List[dict] = []
    for stream_id in range(1, 1 + 70 * scale):
        game = rng.randint(1, len(games))
        streams.append(
            {
                "id": stream_id,
                "cid": rng.randint(1, len(channels)),
                "gid": game,
                "title": f"Session {stream_id}",
                "viewers": rng.randint(10, 40000),
                "aired": rng.randint(2005, 2009),
            }
        )
        pool = [hero["id"] for hero in heroes if hero["gid"] == game]
        for hero_id in sorted(rng.sample(pool, min(len(pool), rng.randint(0, 3)))):
            featured.append({"stream_id": stream_id, "hero_id": hero_id})
    videos = [
        {
            "id": vid,
            "cid": rng.randint(1, len(channels)),
            "title": f"Highlights {vid}",
            "views": rng.randint(100, 500000),
        }
        for vid in range(1, 1 + 30 * scale)
    ]
    data: Dict[str, List[dict]] = {
        "GAME": games,
        "HERO": heroes,
        "STREAMER": streamers,
        "CHANNEL": channels,
        "STREAM": streams,
        "FEATURED": featured,
        "VIDEO": videos,
    }
    database = Database(twitch_schema())
    database.load(data)
    return database


def twitch_corpus() -> List[CorpusQuery]:
    corpus: List[CorpusQuery] = []

    def add(name: str, category: str, sql: str) -> None:
        corpus.append(CorpusQuery(name=name, sql=sql, category=category))

    # --- path -----------------------------------------------------------
    for index, streamer in enumerate(["pixelqueen", "sage", "fjord"]):
        add(
            f"path_streams_of_{index}",
            "path",
            "select t.title from STREAM t, CHANNEL c, STREAMER s "
            f"where t.cid = c.id and c.sid = s.id and s.name = '{streamer}'",
        )
    for index, game in enumerate(["Ancient Arena", "Pixel Dash"]):
        add(
            f"path_heroes_of_{index}",
            "path",
            "select h.name from HERO h, GAME g "
            f"where h.gid = g.id and g.title = '{game}'",
        )
    add(
        "path_deep_chain",
        "path",
        "select s.name from STREAMER s, CHANNEL c, STREAM t, GAME g "
        "where c.sid = s.id and t.cid = c.id and t.gid = g.id "
        "and g.genre = 'moba'",
    )
    add("path_big_channels", "path", "select c.name from CHANNEL c where c.followers > 60000")
    add(
        "path_videos_of_channel",
        "path",
        "select v.title from VIDEO v, CHANNEL c "
        "where v.cid = c.id and c.name = 'sage_tv'",
    )

    # --- subgraph -------------------------------------------------------
    for index, (genre, viewers) in enumerate(
        [("moba", 1000), ("fps", 5000), ("rpg", 200)]
    ):
        add(
            f"subgraph_stream_center_{index}",
            "subgraph",
            "select c.name, g.title "
            "from STREAM t, CHANNEL c, GAME g, FEATURED f "
            "where t.cid = c.id and t.gid = g.id and f.stream_id = t.id "
            f"and g.genre = '{genre}' and t.viewers > {viewers}",
        )
    for index, role in enumerate(["tank", "carry"]):
        add(
            f"subgraph_hero_on_air_{index}",
            "subgraph",
            "select h.name, t.title "
            "from STREAM t, FEATURED f, HERO h, CHANNEL c, GAME g "
            "where f.stream_id = t.id and f.hero_id = h.id and t.cid = c.id "
            f"and t.gid = g.id and h.role = '{role}' and c.followers > 1000",
        )
    add(
        "subgraph_channel_hub",
        "subgraph",
        "select s.name, g.title "
        "from STREAMER s, CHANNEL c, STREAM t, VIDEO v, GAME g "
        "where c.sid = s.id and t.cid = c.id and v.cid = c.id "
        "and t.gid = g.id and v.views > 500",
    )
    add(
        "subgraph_streamer_reach",
        "subgraph",
        "select s.name, v.title "
        "from STREAMER s, CHANNEL c, STREAM t, VIDEO v "
        "where c.sid = s.id and t.cid = c.id and v.cid = c.id "
        "and c.followers > 2000",
    )

    # --- graph ----------------------------------------------------------
    add(
        "graph_hero_pairs",
        "graph",
        "select h1.name, h2.name "
        "from STREAM t, FEATURED f1, HERO h1, FEATURED f2, HERO h2 "
        "where f1.stream_id = t.id and f1.hero_id = h1.id "
        "and f2.stream_id = t.id and f2.hero_id = h2.id and h1.id > h2.id",
    )
    add(
        "graph_native_hero_stream",
        "graph",
        "select t.title from STREAM t, FEATURED f, HERO h "
        "where f.stream_id = t.id and f.hero_id = h.id and h.gid = t.gid",
    )
    add(
        "graph_same_genre_games",
        "graph",
        "select g1.title, g2.title from GAME g1, GAME g2 "
        "where g1.genre = g2.genre and g1.id > g2.id",
    )
    add(
        "graph_cross_product",
        "graph",
        "select s.name, g.title from STREAMER s, GAME g "
        "where s.country = 'Korea' and g.genre = 'racing'",
    )
    for index, year in enumerate([2006, 2009]):
        add(
            f"graph_stream_title_clash_{index}",
            "graph",
            "select t1.title from STREAM t1, STREAM t2 "
            f"where t1.title = t2.title and t1.id <> t2.id and t1.aired = {year}",
        )
    add(
        "graph_video_named_like_stream",
        "graph",
        "select v.title from VIDEO v, STREAM t "
        "where v.cid = t.cid and v.title = t.title",
    )

    # --- nested ---------------------------------------------------------
    for index, game in enumerate(["Dragon Keep", "Nebula Strike"]):
        add(
            f"nested_streamed_game_{index}",
            "nested",
            "select c.name from CHANNEL c "
            "where c.id in (select t.cid from STREAM t "
            "where t.gid in (select g.id from GAME g "
            f"where g.title = '{game}'))",
        )
    add(
        "nested_never_streamed",
        "nested",
        "select g.title from GAME g "
        "where not exists (select * from STREAM t where t.gid = g.id)",
    )
    add(
        "nested_channel_without_videos",
        "nested",
        "select c.name from CHANNEL c "
        "where not exists (select * from VIDEO v where v.cid = c.id)",
    )
    add(
        "nested_hero_on_air",
        "nested",
        "select h.name from HERO h "
        "where exists (select * from FEATURED f where f.hero_id = h.id)",
    )
    add(
        "nested_all_genres_channel",
        "nested",
        "select c.name from CHANNEL c "
        "where not exists (select * from GAME g1 "
        "where not exists (select * from STREAM t, GAME g2 "
        "where t.cid = c.id and t.gid = g2.id and g2.genre = g1.genre))",
    )
    add(
        "nested_viewers_above_any",
        "nested",
        "select t.title from STREAM t "
        "where t.viewers > any (select t1.viewers from STREAM t1 where t1.aired = 2005)",
    )

    # --- aggregate ------------------------------------------------------
    add(
        "agg_streams_per_channel",
        "aggregate",
        "select c.name, count(*) from CHANNEL c, STREAM t "
        "where t.cid = c.id group by c.name",
    )
    for index, threshold in enumerate([3, 6]):
        add(
            f"agg_busy_channels_{index}",
            "aggregate",
            "select c.name, count(*) from CHANNEL c, STREAM t "
            f"where t.cid = c.id group by c.name having count(*) > {threshold}",
        )
    add(
        "agg_avg_viewers_per_genre",
        "aggregate",
        "select g.genre, avg(t.viewers) from GAME g, STREAM t "
        "where t.gid = g.id group by g.genre",
    )
    add(
        "agg_hero_appearances",
        "aggregate",
        "select h.name, count(*) from HERO h, FEATURED f "
        "where f.hero_id = h.id group by h.name having count(*) >= 2",
    )
    add(
        "agg_extremes",
        "aggregate",
        "select max(c.followers), min(v.views) from CHANNEL c, VIDEO v "
        "where v.cid = c.id",
    )
    add(
        "agg_multi_hero_streams",
        "aggregate",
        "select t.id, t.title, count(*) from STREAM t, FEATURED f "
        "where t.id = f.stream_id group by t.id, t.title "
        "having 1 < (select count(*) from FEATURED f2 where f2.stream_id = t.id)",
    )

    # --- impossible -----------------------------------------------------
    add(
        "imp_one_genre_streamers",
        "impossible",
        "select s.id, s.name from STREAMER s, CHANNEL c, STREAM t, GAME g "
        "where c.sid = s.id and t.cid = c.id and t.gid = g.id "
        "group by s.id, s.name having count(distinct g.genre) = 1",
    )
    add(
        "imp_single_year_channels",
        "impossible",
        "select c.id, c.name from CHANNEL c, STREAM t "
        "where t.cid = c.id group by c.id, c.name "
        "having count(distinct t.aired) = 1",
    )
    add(
        "imp_earliest_repeated_title",
        "impossible",
        "select c.name from CHANNEL c, STREAM t "
        "where t.cid = c.id "
        "and t.aired <= all (select t1.aired from STREAM t1, STREAM t2 "
        "where t1.title = t.title and t2.title = t.title and t1.id <> t2.id)",
    )
    add(
        "imp_biggest_stream",
        "impossible",
        "select t.title from STREAM t "
        "where t.viewers >= all (select t1.viewers from STREAM t1)",
    )
    return corpus


register_domain(
    Domain(
        name="twitch",
        description="Game streaming: games, heroes, streamers, channels, streams, videos",
        schema_factory=twitch_schema,
        database_factory=twitch_database,
        corpus_factory=twitch_corpus,
        lexicon_factory=twitch_lexicon,
    )
)
