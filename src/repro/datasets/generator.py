"""Deterministic scalable data generator for the movie schema.

The paper observes that "translation of a database with a very large
number of relations, attributes or tuples, will most likely lead to less
meaningful or concise answers" and motivates ranking-bounded narration.
The scaling benchmarks therefore need movie databases of controllable
size; this generator produces them deterministically (a seeded ``random``
instance — no wall-clock, no global state) so benchmark runs are
reproducible.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.datasets.movies import movie_database
from repro.storage.database import Database

_FIRST_NAMES = [
    "Alex", "Maria", "John", "Sofia", "Nikos", "Elena", "Peter", "Anna",
    "George", "Irene", "Paul", "Dora", "Chris", "Katerina", "Mark", "Lydia",
]
_LAST_NAMES = [
    "Anderson", "Baker", "Carter", "Dimitriou", "Evans", "Fischer", "Garcia",
    "Hansen", "Ioannou", "Jensen", "Kim", "Lambert", "Miller", "Nolan",
    "Pappas", "Quinn", "Rossi", "Sato", "Turner", "Vasquez",
]
_TITLE_HEADS = [
    "Midnight", "Silent", "Golden", "Broken", "Electric", "Hidden", "Crimson",
    "Distant", "Forgotten", "Burning", "Frozen", "Endless", "Shattered",
]
_TITLE_TAILS = [
    "Harbor", "Letters", "Promise", "Empire", "Waltz", "Horizon", "Garden",
    "Signal", "Mirror", "Voyage", "Orchard", "Paradox", "Covenant",
]
_CITIES = [
    "Athens, Greece", "Palo Alto, California, USA", "Rome, Italy",
    "Paris, France", "Tokyo, Japan", "Berlin, Germany", "London, UK",
    "Brooklyn, New York, USA", "Madrid, Spain", "Toronto, Canada",
]
_GENRES = ["action", "comedy", "drama", "romance", "thriller", "documentary"]
_ROLES = [
    "the detective", "the captain", "the scientist", "the stranger",
    "the journalist", "the pilot", "the teacher", "the thief",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Size knobs for the synthetic movie database."""

    movies: int = 100
    directors: int = 20
    actors: int = 60
    cast_per_movie: int = 3
    genres_per_movie: int = 2
    seed: int = 2009  # the paper's publication year, for determinism

    def scaled(self, factor: int) -> "GeneratorConfig":
        """A configuration ``factor`` times larger (same seed)."""
        return GeneratorConfig(
            movies=self.movies * factor,
            directors=max(1, self.directors * factor),
            actors=max(1, self.actors * factor),
            cast_per_movie=self.cast_per_movie,
            genres_per_movie=self.genres_per_movie,
            seed=self.seed,
        )


def generate_movie_records(config: GeneratorConfig) -> Dict[str, List[dict]]:
    """Generate record dictionaries for every table of the movie schema."""
    rng = random.Random(config.seed)

    directors = []
    for did in range(1, config.directors + 1):
        directors.append(
            {
                "id": 1000 + did,
                "name": _person_name(rng),
                "bdate": _birth_date(rng),
                "blocation": rng.choice(_CITIES),
            }
        )

    actors = []
    for aid in range(1, config.actors + 1):
        actors.append({"id": 1000 + aid, "name": _person_name(rng)})

    movies = []
    directed = []
    cast = []
    genres = []
    for mid in range(1, config.movies + 1):
        movie_id = 1000 + mid
        movies.append(
            {
                "id": movie_id,
                "title": _movie_title(rng, mid),
                "year": rng.randint(1950, 2008),
            }
        )
        directed.append({"mid": movie_id, "did": rng.choice(directors)["id"]})
        chosen_actors = rng.sample(actors, min(config.cast_per_movie, len(actors)))
        for actor in chosen_actors:
            cast.append(
                {"mid": movie_id, "aid": actor["id"], "role": rng.choice(_ROLES)}
            )
        chosen_genres = rng.sample(_GENRES, min(config.genres_per_movie, len(_GENRES)))
        for genre in chosen_genres:
            genres.append({"mid": movie_id, "genre": genre})

    return {
        "MOVIES": movies,
        "DIRECTOR": directors,
        "DIRECTED": directed,
        "ACTOR": actors,
        "CAST": cast,
        "GENRE": genres,
    }


def generate_movie_database(
    config: GeneratorConfig = GeneratorConfig(), include_paper_seed: bool = True
) -> Database:
    """A movie database of configurable size.

    With ``include_paper_seed`` the paper's example tuples (Woody Allen,
    Brad Pitt, ...) are present alongside the synthetic rows so that the
    paper's narratives remain reproducible at every scale.
    """
    database = movie_database(seed_data=include_paper_seed)
    database.load(generate_movie_records(config))
    return database


def bench_movie_database() -> Database:
    """The 200-movie generated database the performance suite shares.

    A module-level zero-argument factory so multi-process consumers (the
    shard tier's workers build their replicas by importing a factory
    path) and the benchmarks construct the identical database.
    """
    return generate_movie_database(
        GeneratorConfig(movies=200, directors=20, actors=50)
    )


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def _movie_title(rng: random.Random, mid: int) -> str:
    return f"{rng.choice(_TITLE_HEADS)} {rng.choice(_TITLE_TAILS)} {mid}"


def _birth_date(rng: random.Random) -> datetime.date:
    year = rng.randint(1920, 1985)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return datetime.date(year, month, day)
