"""The EMP/DEPT schema of the paper's Section 3.1 motivation example.

The paper writes the schema as ``EMP(eid, sal, age, did)`` and
``DEPT(did, dname, mgr)`` and then projects ``e1.name`` in the example
query; we include ``name`` on EMP so the query is well-formed.  The
motivating query — "Find the names of employees who make more than their
managers" — is exported as :data:`MANAGER_QUERY`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.catalog.builder import SchemaBuilder
from repro.catalog.schema import Schema
from repro.storage.database import Database


def employee_schema() -> Schema:
    """The EMP/DEPT schema used by the Section 3.1 example."""
    return (
        SchemaBuilder("company", description="EMP/DEPT schema of Section 3.1")
        .relation("EMP", concept="employee", weight=3.0)
        .column("eid", "integer", primary_key=True)
        .column("name", "text", heading=True, weight=3.0)
        .column("sal", "integer", caption="salary", weight=2.0)
        .column("age", "integer", weight=1.0)
        .column("did", "integer", caption="department", weight=1.0)
        .done()
        .relation("DEPT", concept="department", weight=2.0)
        .column("did", "integer", primary_key=True)
        .column("dname", "text", heading=True, caption="department name", weight=3.0)
        .column("mgr", "integer", caption="manager", weight=2.0)
        .done()
        .foreign_key("EMP", ["did"], "DEPT", ["did"], verb="works in")
        .foreign_key("DEPT", ["mgr"], "EMP", ["eid"], verb="managed by")
        .build()
    )


_SEED: Dict[str, List[dict]] = {
    "EMP": [
        {"eid": 1, "name": "Alice Papas", "sal": 120000, "age": 48, "did": None},
        {"eid": 2, "name": "Bob Santos", "sal": 95000, "age": 41, "did": None},
        {"eid": 3, "name": "Carol Chen", "sal": 130000, "age": 35, "did": None},
        {"eid": 4, "name": "Dan Wright", "sal": 70000, "age": 29, "did": None},
        {"eid": 5, "name": "Eva Stone", "sal": 88000, "age": 33, "did": None},
        {"eid": 6, "name": "Frank Mills", "sal": 64000, "age": 52, "did": None},
    ],
    "DEPT": [
        {"did": 10, "dname": "Engineering", "mgr": 1},
        {"did": 20, "dname": "Marketing", "mgr": 2},
        {"did": 30, "dname": "Research", "mgr": 6},
    ],
    # Department assignments are applied as updates so EMP can be loaded
    # before DEPT exists (EMP.did -> DEPT.did and DEPT.mgr -> EMP.eid form
    # a referential cycle, the classic reason for deferred constraints).
}

_ASSIGNMENTS = {1: 10, 2: 20, 3: 10, 4: 20, 5: 10, 6: 30}


def employee_database(seed_data: bool = True) -> Database:
    """A populated EMP/DEPT database (employees, departments, managers)."""
    database = Database(employee_schema())
    if not seed_data:
        return database
    database.load({"EMP": _SEED["EMP"]})
    database.load({"DEPT": _SEED["DEPT"]})
    for eid, did in _ASSIGNMENTS.items():
        database.update_where("EMP", lambda row, eid=eid: row["eid"] == eid, {"did": did})
    return database


#: The Section 3.1 query: employees who make more than their managers.
MANAGER_QUERY = """
    select e1.name
    from EMP e1, EMP e2, DEPT d
    where e1.did = d.did and d.mgr = e2.eid
      and e1.sal > e2.sal
"""

#: The paper's target narrative for MANAGER_QUERY.
MANAGER_NARRATIVE = "Find the names of employees who make more than their managers"
