"""Small shared utilities (caching, etc.)."""

from repro.utils.cache import LRUCache

__all__ = ["LRUCache"]
