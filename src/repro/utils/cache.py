"""A tiny LRU cache used by the execution and translation layers.

``functools.lru_cache`` memoizes functions; the engine needs *instance*
caches (per executor, per translator) that can be cleared on demand when
data changes, so this is a thin OrderedDict wrapper instead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator, Optional


class LRUCache:
    """A bounded mapping that evicts the least-recently-used entry.

    ``get`` refreshes recency; ``put`` inserts/overwrites and evicts the
    oldest entry once ``maxsize`` is exceeded.  ``maxsize=None`` disables
    eviction (unbounded).  Hit/miss/eviction counters are kept for
    observability and for tests asserting that a cache is actually being
    used (and sized sensibly: a high eviction rate means the LRU is
    thrashing and should be grown).
    """

    def __init__(self, maxsize: Optional[int] = 256) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive or None")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    _MISSING = object()

    def get(self, key: Hashable, default: Any = None, record_miss: bool = True) -> Any:
        """Lookup refreshing recency.

        ``record_miss=False`` keeps a miss out of the counters — for
        *probe* lookups (the service's fast path) whose miss is followed
        by a counted lookup on the slow path, so the stats reflect one
        logical request once.
        """
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            if record_miss:
                self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def items(self) -> list:
        """A snapshot of ``(key, value)`` pairs, oldest first.

        Unlike :meth:`get` this does not refresh recency — it exists for
        observers (workload capture, stats) that must not perturb the
        eviction order they are reporting on.
        """
        return list(self._data.items())

    @property
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LRUCache(size={len(self._data)}, hits={self.hits}, misses={self.misses})"
