"""Natural-language generation core: clauses, aggregation, realisation, planning."""

from repro.nlg.aggregation import (
    common_prefix_length,
    merge_clauses,
    merge_same_subject,
    merge_templates,
    split_prefix,
)
from repro.nlg.clause import Clause, ClauseGroup, EntityPhrase, clause_from_text
from repro.nlg.document import (
    DocumentPlan,
    LengthBudget,
    PlannedSentence,
    collect_streaming,
)
from repro.nlg.realize import (
    attach_relative,
    coordinate,
    realize_paragraph,
    realize_sentence,
    realize_sentences,
    relative_clause,
    render,
    sentence_count,
    word_count,
)

__all__ = [
    "Clause",
    "ClauseGroup",
    "DocumentPlan",
    "EntityPhrase",
    "LengthBudget",
    "PlannedSentence",
    "attach_relative",
    "clause_from_text",
    "collect_streaming",
    "common_prefix_length",
    "coordinate",
    "merge_clauses",
    "merge_same_subject",
    "merge_templates",
    "realize_paragraph",
    "realize_sentence",
    "realize_sentences",
    "relative_clause",
    "render",
    "sentence_count",
    "split_prefix",
    "word_count",
]
