"""Clause-level representation used before surface realisation.

A :class:`Clause` is a subject, a verb phrase and a list of complements
("Woody Allen" / "was born" / ["in Brooklyn, New York, USA",
"on December 1, 1935"]).  Keeping clauses structured until the last moment
is what lets the aggregation step merge clauses that share a subject and a
verb — the paper's "common expression" resolution — and what lets the
split-pattern composer attach relative clauses to entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.lexicon.morphology import strip_extra_spaces


@dataclass(frozen=True)
class Clause:
    """A simple clause: subject + verb + complements [+ conjunction for lists]."""

    subject: str
    verb: str = ""
    complements: Tuple[str, ...] = ()
    #: Optional label identifying which relation/tuple produced the clause;
    #: used by document planning and by tests, never rendered.
    about: Optional[str] = None
    #: Relative importance, used when a length budget forces dropping clauses.
    weight: float = 1.0

    def render(self) -> str:
        """The clause as plain text (no capitalisation, no final period)."""
        pieces = [self.subject, self.verb, *self.complements]
        return strip_extra_spaces(" ".join(piece for piece in pieces if piece))

    def with_subject(self, subject: str) -> "Clause":
        return replace(self, subject=subject)

    def with_extra_complements(self, extra: Sequence[str]) -> "Clause":
        return replace(self, complements=tuple(self.complements) + tuple(extra))

    @property
    def is_empty(self) -> bool:
        return not (self.subject or self.verb or self.complements)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


@dataclass(frozen=True)
class EntityPhrase:
    """A noun phrase with an optional relative clause.

    Used by the split-pattern composer: "the director D1" + "who was born
    in Italy" renders as "the director D1 who was born in Italy".
    """

    head: str
    relative: Optional[str] = None

    def render(self) -> str:
        if self.relative:
            return strip_extra_spaces(f"{self.head} {self.relative}")
        return strip_extra_spaces(self.head)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


@dataclass
class ClauseGroup:
    """An ordered collection of clauses about the same narrative focus."""

    clauses: List[Clause] = field(default_factory=list)

    def add(self, clause: Clause) -> None:
        if not clause.is_empty:
            self.clauses.append(clause)

    def extend(self, clauses: Sequence[Clause]) -> None:
        for clause in clauses:
            self.add(clause)

    def __iter__(self):
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)


def clause_from_text(text: str, about: Optional[str] = None, weight: float = 1.0) -> Clause:
    """Wrap an already-rendered piece of text as a clause (subject only)."""
    return Clause(subject=text, about=about, weight=weight)
