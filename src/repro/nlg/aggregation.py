"""Common-expression aggregation (paper, Section 2.2).

Given the two clauses produced by the DIRECTOR templates::

    DNAME + " was born" + " in " + BLOCATION
    DNAME + " was born" + " on " + BDATE

"the mechanism for resolving common expressions identifies DNAME and
' was born' as such and, instead of creating two different phrases, it
creates one that combines both pieces of data:
DNAME was born in BLOCATION on BDATE".

Two levels are provided:

* :func:`merge_templates` merges template *structures* that share a prefix
  (subject slot plus literal text) — the faithful reading of the paper;
* :func:`merge_clauses` merges already-instantiated :class:`Clause`
  objects that share subject and verb — what the content narrator uses at
  narration time.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.nlg.clause import Clause
from repro.templates.spec import SlotPart, Template, TemplatePart, TextPart


def merge_clauses(clauses: Sequence[Clause]) -> List[Clause]:
    """Merge consecutive-in-spirit clauses sharing (subject, verb).

    The merged clause keeps the first clause's position and concatenates
    the complements of all members in order.  Clauses with an empty verb
    are never merged (there is no common expression to factor out).
    """
    merged: List[Clause] = []
    index_by_key = {}
    for clause in clauses:
        key = (clause.subject.strip().lower(), clause.verb.strip().lower())
        if clause.verb and key in index_by_key:
            position = index_by_key[key]
            existing = merged[position]
            merged[position] = existing.with_extra_complements(clause.complements)
        else:
            if clause.verb:
                index_by_key[key] = len(merged)
            merged.append(clause)
    return merged


def merge_same_subject(clauses: Sequence[Clause], conjunction: str = "and") -> List[Clause]:
    """Merge clauses sharing only the subject into one coordinated clause.

    "Woody Allen was born in Brooklyn" + "Woody Allen directed 4 movies"
    becomes "Woody Allen was born in Brooklyn and directed 4 movies".
    Clauses whose verbs are already equal should be merged with
    :func:`merge_clauses` first.
    """
    merged: List[Clause] = []
    index_by_subject = {}
    for clause in clauses:
        key = clause.subject.strip().lower()
        if clause.verb and key in index_by_subject:
            position = index_by_subject[key]
            existing = merged[position]
            predicate = " ".join([clause.verb, *clause.complements]).strip()
            merged[position] = existing.with_extra_complements((f"{conjunction} {predicate}",))
        else:
            if clause.verb:
                index_by_subject[key] = len(merged)
            merged.append(clause)
    return merged


# ---------------------------------------------------------------------------
# Template-level merging
# ---------------------------------------------------------------------------


def common_prefix_length(first: Template, second: Template) -> int:
    """Number of leading template parts shared by the two templates."""
    count = 0
    for part_a, part_b in zip(first.parts, second.parts):
        if _same_part(part_a, part_b):
            count += 1
        else:
            break
    return count


def _same_part(a: TemplatePart, b: TemplatePart) -> bool:
    if isinstance(a, TextPart) and isinstance(b, TextPart):
        return a.text == b.text
    if isinstance(a, SlotPart) and isinstance(b, SlotPart):
        return a.attribute.lower() == b.attribute.lower()
    return False


def merge_templates(templates: Sequence[Template]) -> List[Template]:
    """Merge templates that share a common prefix containing a slot.

    The result list preserves order; templates that cannot be merged with
    any predecessor are kept as they are.  Only prefixes that include at
    least one slot (the shared subject, e.g. ``DNAME``) and one text part
    (the shared verb, e.g. ``" was born"``) qualify as a common expression.
    """
    merged: List[Template] = []
    for candidate in templates:
        combined = False
        for position, existing in enumerate(merged):
            prefix = common_prefix_length(existing, candidate)
            if prefix == 0:
                continue
            shared = existing.parts[:prefix]
            has_slot = any(isinstance(p, SlotPart) for p in shared)
            has_text = any(isinstance(p, TextPart) and p.text.strip() for p in shared)
            if not (has_slot and has_text):
                continue
            suffix = candidate.parts[prefix:]
            if not suffix:
                combined = True  # identical template: drop the duplicate
                break
            merged[position] = Template(
                parts=tuple(existing.parts) + tuple(suffix),
                subject=existing.subject,
                predicate_verb=existing.predicate_verb,
            )
            combined = True
            break
        if not combined:
            merged.append(candidate)
    return merged


def split_prefix(template: Template) -> Tuple[Tuple[TemplatePart, ...], Tuple[TemplatePart, ...]]:
    """Split a template into (subject+verb prefix, remainder).

    The prefix is the leading slot followed by leading text parts; used by
    tests and by the procedural narrator when it needs the subject phrase
    on its own.
    """
    parts = list(template.parts)
    if not parts or not isinstance(parts[0], SlotPart):
        return (), tuple(parts)
    prefix: List[TemplatePart] = [parts[0]]
    rest = parts[1:]
    while rest and isinstance(rest[0], TextPart):
        prefix.append(rest.pop(0))
    return tuple(prefix), tuple(rest)
