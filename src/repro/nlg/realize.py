"""Surface realisation: clauses and phrases to polished sentences."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.lexicon.morphology import (
    capitalize_first,
    join_list,
    sentence_case,
    strip_extra_spaces,
)
from repro.nlg.clause import Clause, EntityPhrase

Renderable = Union[str, Clause, EntityPhrase]


def render(item: Renderable) -> str:
    """Render a clause, entity phrase or plain string to text."""
    if isinstance(item, (Clause, EntityPhrase)):
        return item.render()
    return strip_extra_spaces(item)


def realize_sentence(item: Renderable) -> str:
    """One finished sentence: capitalised, single spaces, final period."""
    text = render(item)
    if not text:
        return ""
    text = capitalize_first(text)
    if text[-1] not in ".!?":
        text += "."
    return text


def realize_sentences(items: Iterable[Renderable]) -> List[str]:
    """Realise each item as its own sentence, dropping empty ones."""
    return sentence_case(render(item) for item in items)


def realize_paragraph(items: Iterable[Renderable]) -> str:
    """Realise the items as sentences and join them into one paragraph."""
    return " ".join(realize_sentences(items))


def coordinate(items: Sequence[Renderable], conjunction: str = "and") -> str:
    """Coordinate phrases into one list phrase ("A, B, and C")."""
    return join_list([render(item) for item in items], conjunction=conjunction)


def relative_clause(verb_phrase: str, pronoun: str = "who") -> str:
    """A relative clause from a predicate: "was born in Italy" → "who was born in Italy"."""
    cleaned = strip_extra_spaces(verb_phrase)
    if not cleaned:
        return ""
    return f"{pronoun} {cleaned}"


def attach_relative(head: str, predicate: str, pronoun: str = "who") -> EntityPhrase:
    """Attach a predicate to an entity head as a relative clause."""
    return EntityPhrase(head=head, relative=relative_clause(predicate, pronoun=pronoun))


def sentence_count(text: str) -> int:
    """Rough sentence count (used by evaluation metrics and size limits)."""
    return sum(1 for ch in text if ch in ".!?")


def word_count(text: str) -> int:
    return len([w for w in text.split() if any(c.isalnum() for c in w)])
