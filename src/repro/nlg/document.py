"""Document planning: ordering, length budgets and final assembly.

Section 2.2 closes with the observation that "meaningful and interesting
answers are short" and proposes limiting the text "either with structural
constraints affecting the traversal ... or with some notion of ranking of
the relations and tuples involved".  The document planner is where those
limits are enforced: sentences arrive with weights (inherited from
relation/attribute/tuple ranking) and the planner keeps the most important
ones within the requested budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.nlg.clause import Clause
from repro.nlg.realize import realize_sentence, word_count


@dataclass(frozen=True)
class LengthBudget:
    """Limits applied to a generated narrative."""

    max_sentences: Optional[int] = None
    max_words: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return self.max_sentences is None and self.max_words is None


@dataclass
class PlannedSentence:
    """A realised sentence plus the weight used when trimming to a budget."""

    text: str
    weight: float = 1.0
    about: Optional[str] = None

    @property
    def words(self) -> int:
        return word_count(self.text)


@dataclass
class DocumentPlan:
    """An ordered list of planned sentences with budget-aware assembly."""

    sentences: List[PlannedSentence] = field(default_factory=list)

    def add_clause(self, clause: Clause) -> None:
        text = realize_sentence(clause)
        if text:
            self.sentences.append(
                PlannedSentence(text=text, weight=clause.weight, about=clause.about)
            )

    def add_text(self, text: str, weight: float = 1.0, about: Optional[str] = None) -> None:
        realised = realize_sentence(text)
        if realised:
            self.sentences.append(PlannedSentence(text=realised, weight=weight, about=about))

    def extend_clauses(self, clauses: Sequence[Clause]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------

    def trimmed(self, budget: LengthBudget) -> List[PlannedSentence]:
        """The sentences that survive the budget.

        Trimming drops the lightest sentences first but never reorders the
        survivors — narrative order is part of the meaning.
        """
        if budget.unlimited:
            return list(self.sentences)
        keep = list(self.sentences)

        if budget.max_sentences is not None and len(keep) > budget.max_sentences:
            keep = self._drop_lightest(keep, len(keep) - budget.max_sentences)

        if budget.max_words is not None:
            while keep and sum(s.words for s in keep) > budget.max_words and len(keep) > 1:
                keep = self._drop_lightest(keep, 1)
        return keep

    def _drop_lightest(
        self, sentences: List[PlannedSentence], count: int
    ) -> List[PlannedSentence]:
        if count <= 0:
            return sentences
        # Identify the indices of the `count` lightest sentences (stable:
        # later sentences are dropped before earlier ones of equal weight).
        indexed = sorted(
            range(len(sentences)),
            key=lambda i: (sentences[i].weight, -i),
        )
        to_drop = set(indexed[:count])
        return [s for i, s in enumerate(sentences) if i not in to_drop]

    # ------------------------------------------------------------------

    def render(self, budget: LengthBudget = LengthBudget()) -> str:
        """The final narrative text under the given budget."""
        return " ".join(s.text for s in self.trimmed(budget))

    @property
    def total_words(self) -> int:
        return sum(s.words for s in self.sentences)

    def __len__(self) -> int:
        return len(self.sentences)


# ---------------------------------------------------------------------------
# Streaming collection
# ---------------------------------------------------------------------------

#: A streamed candidate: the realised sentence plus an upper bound on the
#: weight of every sentence the producer could still yield after this one.
StreamedSentence = Tuple[PlannedSentence, float]


def collect_streaming(
    candidates: Iterable[StreamedSentence], budget: LengthBudget
) -> DocumentPlan:
    """Consume a sentence stream under a budget, stopping as early as possible.

    Maintains the ``max_sentences`` trim online: a min-heap keyed
    ``(weight, -arrival)`` holds the current survivors, so an overflowing
    insert evicts exactly the sentence :meth:`DocumentPlan._drop_lightest`
    would drop (lightest first, later arrivals before earlier ones on
    ties).  Once the heap is full and the producer's bound says no future
    sentence can outweigh the lightest survivor, the stream is abandoned —
    that is what makes narrating a large database O(budget) clause
    productions instead of O(rows).

    The returned plan's ``render(budget)`` is byte-identical to the eager
    pipeline (produce everything, then trim): the survivor set equals the
    offline sentence trim, and the word trim runs afterwards on exactly
    that set, as it does eagerly.
    """
    plan = DocumentPlan()
    max_sentences = budget.max_sentences
    if max_sentences is None:
        plan.sentences = [sentence for sentence, _bound in candidates]
        return plan
    if max_sentences <= 0:
        return plan

    heap: List[Tuple[float, int, int, PlannedSentence]] = []
    arrival = 0
    for sentence, bound in candidates:
        heapq.heappush(heap, (sentence.weight, -arrival, arrival, sentence))
        arrival += 1
        if len(heap) > max_sentences:
            heapq.heappop(heap)
        if len(heap) == max_sentences and heap[0][0] >= bound:
            break
    plan.sentences = [entry[3] for entry in sorted(heap, key=lambda entry: entry[2])]
    return plan
