"""Durability lifecycle: config, recover-on-attach, auto-checkpointing.

:class:`DurabilityConfig` is the one knob surface callers see — a
directory, an fsync policy, and a checkpoint cadence.  The
:class:`DurabilityManager` built from it owns the moving parts: it
recovers (or baselines) a :class:`~repro.storage.database.Database`
from the directory on :meth:`~DurabilityManager.attach`, interposes as
the database's WAL so every mutation is logged before applied, counts
applied mutations, and checkpoints + compacts automatically every
``checkpoint_every`` of them.

The manager is *not* thread-safe on its own; it inherits whatever
serialisation its caller already has.  That is deliberate: the
narration session applies mutations under its work lock and the shard
router under its mutation lock, so adding a third lock here would only
invite ordering bugs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.storage.snapshot import prune_snapshots, write_snapshot
from repro.storage.wal import FSYNC_BATCH, FSYNC_POLICIES, WAL_NAME, WriteAheadLog

__all__ = ["DurabilityConfig", "DurabilityManager"]


@dataclass(frozen=True)
class DurabilityConfig:
    """How a session (or router) persists its database.

    ``directory``
        Where the WAL and snapshots live.  Created on demand.  One
        directory belongs to exactly one database lineage — point two
        live writers at it and the sequence check will fail fast.
    ``fsync``
        ``"always"`` / ``"batch"`` / ``"never"``; see
        :mod:`repro.storage.wal` for the precise guarantees.
    ``batch_every``
        Group-commit size under ``fsync="batch"``.
    ``checkpoint_every``
        Snapshot + compact after this many applied mutations; ``0``
        disables automatic checkpoints (explicit
        :meth:`DurabilityManager.checkpoint` still works).
    ``keep_snapshots``
        How many snapshot generations to retain after a checkpoint.
    """

    directory: Union[str, Path]
    fsync: str = FSYNC_BATCH
    batch_every: int = 64
    checkpoint_every: int = 1000
    keep_snapshots: int = 1
    injector: Optional[Any] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.batch_every <= 0:
            raise ValueError("batch_every must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")

    @property
    def wal_path(self) -> Path:
        return Path(self.directory) / WAL_NAME


class DurabilityManager:
    """Owns one database's WAL + snapshot lifecycle.

    Usage::

        manager = DurabilityManager(DurabilityConfig(directory="state/"))
        manager.attach(database)   # recovers from disk, or baselines it
        ...mutate database...      # logged-before-applied automatically
        manager.checkpoint()       # optional; also happens on cadence

    ``attach`` with a non-empty directory *replaces* the database's
    contents with the recovered state — the freshly-built database is
    just a schema-shaped vessel.  With an empty directory it writes a
    baseline snapshot of the database as given, so later recoveries
    never need the original factory.
    """

    def __init__(self, config: DurabilityConfig) -> None:
        self.config = config
        self.directory = Path(config.directory)
        self._wal: Optional[WriteAheadLog] = None
        self._database: Optional[Any] = None
        self._since_checkpoint = 0
        self._checkpoints = 0
        self._checkpoint_seconds = 0.0
        self._recovered = False
        self._recovery_report: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Attach / recovery
    # ------------------------------------------------------------------

    def attach(self, database: Any) -> Any:
        """Wire ``database`` to disk; returns the database to use.

        If the directory already holds state, the returned database is a
        *new* object recovered from it (snapshot + WAL replay) and the
        argument is discarded; otherwise the argument is baselined with
        an initial snapshot and returned as-is.  Either way the result
        has this manager attached as its WAL.
        """
        from repro.storage.database import Database
        from repro.storage.snapshot import latest_snapshot
        from repro.storage.wal import scan_wal

        self.directory.mkdir(parents=True, exist_ok=True)
        has_state = (
            latest_snapshot(self.directory) is not None
            or scan_wal(self.config.wal_path, strict=False).records
        )
        if has_state:
            # Recover into the same storage engines the vessel database
            # was built with: durability composes with StorageConfig.
            database, report = Database.recover(
                self.directory,
                schema=database.schema,
                storage=database.storage_config,
            )
            self._recovered = True
            self._recovery_report = report
        self._wal = WriteAheadLog(
            self.config.wal_path,
            fsync=self.config.fsync,
            batch_every=self.config.batch_every,
            injector=self.config.injector,
        )
        if not self._wal.recovered and self._recovery_report is not None:
            # A compacted (empty) log cannot know where its sequence left
            # off; the snapshot can.
            self._wal.set_base(self._recovery_report["snapshot_seq"])
        self._database = database
        database.attach_wal(self)
        if not has_state:
            # Baseline: snapshot the database as handed to us (factory
            # data and all) so recovery never needs the factory again.
            self.checkpoint()
        return database

    @property
    def recovered(self) -> bool:
        """Whether :meth:`attach` rebuilt state from disk."""
        return self._recovered

    @property
    def recovery_report(self) -> Optional[Dict[str, Any]]:
        return self._recovery_report

    @property
    def wal(self) -> WriteAheadLog:
        if self._wal is None:
            raise RuntimeError("DurabilityManager is not attached")
        return self._wal

    # ------------------------------------------------------------------
    # WAL interface the Database calls
    # ------------------------------------------------------------------

    def append(self, payload: Any) -> int:
        return self.wal.append(payload)

    def note_applied(self) -> None:
        """One mutation applied; checkpoint when the cadence is reached.

        Runs inline on the mutating thread, which already holds the
        caller's serialisation (session work lock / router mutation
        lock), so the snapshot sees a consistent database.
        """
        self._since_checkpoint += 1
        if (
            self.config.checkpoint_every
            and self._since_checkpoint >= self.config.checkpoint_every
        ):
            self.checkpoint()

    def commit(self) -> None:
        """Force a group commit of batched appends."""
        self.wal.commit()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the database now and compact the log; returns the seq.

        The order is load-bearing: fsync the log, write the snapshot
        (atomic rename), only then drop the records the snapshot covers.
        A crash between any two steps leaves a recoverable directory.
        """
        if self._database is None or self._wal is None:
            raise RuntimeError("DurabilityManager is not attached")
        started = time.perf_counter()
        seq = self._wal.last_seq
        self._wal.commit()
        write_snapshot(self.directory, self._database, seq)
        self._wal.compact(seq)
        prune_snapshots(self.directory, keep=self.config.keep_snapshots)
        self._since_checkpoint = 0
        self._checkpoints += 1
        self._checkpoint_seconds += time.perf_counter() - started
        return seq

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._database is not None:
            self._database.detach_wal()
            self._database = None
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        report = self._recovery_report
        out: Dict[str, Any] = {
            "directory": str(self.directory),
            "fsync": self.config.fsync,
            "checkpoint_every": self.config.checkpoint_every,
            "recovered": self._recovered,
            "replayed": report["replayed"] if report else 0,
            "checkpoints": self._checkpoints,
            "checkpoint_seconds": round(self._checkpoint_seconds, 6),
            "since_checkpoint": self._since_checkpoint,
        }
        if self._wal is not None:
            out["wal"] = self._wal.stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DurabilityManager({self.directory})"
