"""Simple hash indexes over table columns.

The engine uses these for primary-key uniqueness checks, foreign-key
lookups and hash joins.  An index maps a tuple of column values to the
set of row identifiers carrying those values.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple


class HashIndex:
    """A non-unique hash index on one or more columns of a table."""

    def __init__(self, name: str, columns: Sequence[str], unique: bool = False) -> None:
        if not columns:
            raise ValueError("an index must cover at least one column")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self.unique = unique
        self._entries: Dict[Tuple[Any, ...], Set[int]] = {}

    # ------------------------------------------------------------------

    def key_for(self, values: Dict[str, Any]) -> Tuple[Any, ...]:
        """Extract the index key from a column/value mapping."""
        return tuple(values.get(column) for column in self.columns)

    def add(self, key: Tuple[Any, ...], rowid: int) -> None:
        self._entries.setdefault(key, set()).add(rowid)

    def remove(self, key: Tuple[Any, ...], rowid: int) -> None:
        bucket = self._entries.get(key)
        if bucket is None:
            return
        bucket.discard(rowid)
        if not bucket:
            del self._entries[key]

    def lookup(self, key: Tuple[Any, ...]) -> Tuple[int, ...]:
        """Row ids whose indexed columns equal ``key`` (empty when none)."""
        return tuple(sorted(self._entries.get(key, ())))

    def contains_key(self, key: Tuple[Any, ...]) -> bool:
        return key in self._entries and bool(self._entries[key])

    def would_violate_unique(self, key: Tuple[Any, ...], ignore_rowid: Optional[int] = None) -> bool:
        """True if inserting ``key`` would violate a unique constraint."""
        if not self.unique:
            return False
        if any(part is None for part in key):
            # SQL semantics: NULLs never collide on uniqueness.
            return False
        existing = self._entries.get(key)
        if not existing:
            return False
        if ignore_rowid is not None and existing == {ignore_rowid}:
            return False
        return True

    def clear(self) -> None:
        """Drop every entry (used by :meth:`Table.truncate`)."""
        self._entries.clear()

    def keys(self) -> Iterable[Tuple[Any, ...]]:
        return self._entries.keys()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        kind = "unique " if self.unique else ""
        return f"HashIndex({self.name}: {kind}on {', '.join(self.columns)}, {len(self)} entries)"


def build_index(
    name: str,
    columns: Sequence[str],
    rows: Iterable[Tuple[int, Dict[str, Any]]],
    unique: bool = False,
) -> HashIndex:
    """Construct an index over existing ``(rowid, values)`` pairs."""
    index = HashIndex(name, columns, unique=unique)
    duplicates: List[Tuple[Any, ...]] = []
    for rowid, values in rows:
        key = index.key_for(values)
        if index.would_violate_unique(key):
            duplicates.append(key)
        index.add(key, rowid)
    if duplicates:
        raise ValueError(
            f"index {name!r} declared unique but duplicate keys exist: {duplicates[:3]}"
        )
    return index
