"""Atomic checkpoints of :class:`Database` state, keyed by WAL sequence.

A snapshot is a full, self-describing copy of a database — the pickled
schema plus every table's rows *with their rowids* — written
write-temp-then-rename so readers only ever see a complete file, and
checksummed so a damaged file fails typed instead of restoring garbage.
Together with the write-ahead log (:mod:`repro.storage.wal`) it forms
the recovery pair: load the newest intact snapshot, then replay the WAL
records whose sequence numbers follow its ``wal_seq``.

Rowids are part of the captured state on purpose: replayed mutations
reference rows by id (a DELETE logs the resolved rowids, not its
predicate), and insertion order — which every query result and
narration observes — is rowid order.  Restoring them exactly is what
makes recovered state *byte-identical* to the state that was lost, not
merely row-equivalent.

After a successful checkpoint the WAL can be compacted
(:meth:`WriteAheadLog.compact <repro.storage.wal.WriteAheadLog.compact>`
drops every record the snapshot already covers) and older snapshot
files pruned — the lifecycle :class:`~repro.storage.durability.DurabilityManager`
drives automatically.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import RecoveryError, SnapshotError

__all__ = [
    "SNAPSHOT_MAGIC",
    "SnapshotInfo",
    "latest_snapshot",
    "list_snapshots",
    "load_snapshot",
    "prune_snapshots",
    "restore_into",
    "snapshot_state",
    "write_snapshot",
]

#: File magic: identifies (and versions) the snapshot format.
SNAPSHOT_MAGIC = b"RPRSNP01"

_SNAPSHOT_HEADER = struct.Struct("!II")  # payload length, crc32

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{20})\.ckpt$")


class SnapshotInfo:
    """One snapshot file on disk: its path and the WAL seq it covers."""

    __slots__ = ("path", "wal_seq")

    def __init__(self, path: Path, wal_seq: int) -> None:
        self.path = path
        self.wal_seq = wal_seq

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SnapshotInfo({self.path.name}, wal_seq={self.wal_seq})"


def snapshot_name(wal_seq: int) -> str:
    return f"snapshot-{wal_seq:020d}.ckpt"


def snapshot_state(database, wal_seq: int) -> Dict[str, Any]:
    """The picklable state dict a snapshot file stores."""
    tables: Dict[str, Dict[str, Any]] = {}
    for table in database.tables:
        tables[table.name] = {
            "next_rowid": table.next_rowid,
            "rows": table.export_rows(),
        }
    return {
        "format": 1,
        "schema": database.schema,
        "enforce_foreign_keys": database.enforce_foreign_keys,
        "wal_seq": wal_seq,
        "data_version": database.data_version,
        "tables": tables,
    }


def write_snapshot(
    directory: Union[str, Path], database, wal_seq: int
) -> SnapshotInfo:
    """Checkpoint ``database`` as of WAL record ``wal_seq``, atomically.

    The state is pickled, checksummed, written to a temp file, fsynced
    and renamed into place (then the directory is fsynced), so a crash
    at any point leaves either no new snapshot or a complete one.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = pickle.dumps(
        snapshot_state(database, wal_seq), protocol=pickle.HIGHEST_PROTOCOL
    )
    final = directory / snapshot_name(wal_seq)
    tmp = directory / (final.name + ".tmp")
    with open(tmp, "wb") as out:
        out.write(SNAPSHOT_MAGIC)
        out.write(_SNAPSHOT_HEADER.pack(len(body), zlib.crc32(body)))
        out.write(body)
        out.flush()
        os.fsync(out.fileno())
    os.replace(tmp, final)
    _fsync_directory(directory)
    return SnapshotInfo(final, wal_seq)


def load_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and verify one snapshot file; typed errors on any damage."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    if not data.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError(f"{path} does not start with the snapshot magic")
    header_end = len(SNAPSHOT_MAGIC) + _SNAPSHOT_HEADER.size
    if len(data) < header_end:
        raise SnapshotError(f"{path} is truncated inside its header")
    length, crc = _SNAPSHOT_HEADER.unpack(data[len(SNAPSHOT_MAGIC) : header_end])
    body = data[header_end : header_end + length]
    if len(body) != length:
        raise SnapshotError(f"{path} is truncated: {len(body)} of {length} bytes")
    if zlib.crc32(body) != crc:
        raise SnapshotError(f"{path} fails its checksum")
    try:
        state = pickle.loads(body)
    except Exception as error:
        raise SnapshotError(f"{path} does not unpickle: {error}") from error
    if not isinstance(state, dict) or state.get("format") != 1:
        raise SnapshotError(f"{path} has an unknown snapshot format")
    return state


def list_snapshots(directory: Union[str, Path]) -> List[SnapshotInfo]:
    """Every snapshot file in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.exists():
        return []
    found: List[SnapshotInfo] = []
    for entry in directory.iterdir():
        match = _SNAPSHOT_NAME.match(entry.name)
        if match:
            found.append(SnapshotInfo(entry, int(match.group(1))))
    found.sort(key=lambda info: info.wal_seq)
    return found


def latest_snapshot(directory: Union[str, Path]) -> Optional[SnapshotInfo]:
    """The newest snapshot in ``directory``, or ``None``."""
    snapshots = list_snapshots(directory)
    return snapshots[-1] if snapshots else None


def prune_snapshots(directory: Union[str, Path], keep: int = 1) -> int:
    """Delete all but the newest ``keep`` snapshots; returns how many."""
    if keep < 1:
        raise ValueError("keep must be >= 1")
    snapshots = list_snapshots(directory)
    removed = 0
    for info in snapshots[:-keep]:
        try:
            info.path.unlink()
            removed += 1
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    return removed


def restore_into(database, state: Dict[str, Any]) -> None:
    """Replace ``database``'s contents wholesale with a snapshot's state.

    The database must have been built over an equivalent schema (same
    relation names); rows, rowids and each table's next-rowid counter
    are restored exactly, indexes are rebuilt, and every table's version
    advances — so any executor cache keyed on ``data_version`` is
    invalidated rather than serving pre-recovery results.
    """
    tables = state["tables"]
    names = {table.name for table in database.tables}
    if set(tables) != names:
        raise RecoveryError(
            "snapshot tables do not match the database schema:"
            f" snapshot has {sorted(tables)}, schema has {sorted(names)}"
        )
    for table in database.tables:
        captured = tables[table.name]
        table.restore(captured["rows"], captured["next_rowid"])


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)
