"""The in-memory database: a schema plus one table per relation."""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.catalog.schema import Schema
from repro.errors import (
    ForeignKeyViolationError,
    RecoveryError,
    ReproError,
    UnknownTableError,
)
from repro.storage.config import StorageConfig
from repro.storage.engine import BaseTableStorage, create_storage
from repro.storage.row import Row
from repro.storage.table import Table  # noqa: F401  (historical re-export)


class Database:
    """A relational database instance: one storage engine per relation.

    The database owns one table (any :class:`~repro.storage.api.TableStorage`
    engine — dict rows, paged heap, or columnar, routed by a
    :class:`~repro.storage.config.StorageConfig`) per relation of its
    :class:`Schema` and enforces foreign-key constraints on insert and
    delete when ``enforce_foreign_keys`` is enabled (the default).  It is
    the substrate both for content translation (Section 2 of the paper:
    narrating what is *in* the database) and for query execution (used to
    verify query translations and to explain empty answers).
    """

    def __init__(
        self,
        schema: Schema,
        enforce_foreign_keys: bool = True,
        storage: Optional[StorageConfig] = None,
    ) -> None:
        self.schema = schema
        self.enforce_foreign_keys = enforce_foreign_keys
        #: The storage routing this database was built with; recovery and
        #: sharding propagate it so rebuilt databases keep their engines.
        self.storage_config: StorageConfig = (
            storage if storage is not None else StorageConfig.from_env()
        )
        self._tables: Dict[str, BaseTableStorage] = {
            relation.name: create_storage(relation, self.storage_config)
            for relation in schema.relations
        }
        #: Optional write-ahead log (anything with ``append(payload)``,
        #: e.g. :class:`~repro.storage.wal.WriteAheadLog` or the
        #: :class:`~repro.storage.durability.DurabilityManager` wrapping
        #: one).  When attached, every mutation is logged before it is
        #: applied; ``None`` keeps the database purely in-memory.
        self._wal: Optional[Any] = None
        self._replaying = False

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------

    def table(self, name: str) -> BaseTableStorage:
        """Look up a table by (case-insensitive) relation name."""
        if name in self._tables:
            return self._tables[name]
        lowered = name.lower()
        for candidate, table in self._tables.items():
            if candidate.lower() == lowered:
                return table
        raise UnknownTableError(
            f"database has no table {name!r}"
            f" (available: {', '.join(sorted(self._tables))})"
        )

    def has_table(self, name: str) -> bool:
        try:
            self.table(name)
            return True
        except UnknownTableError:
            return False

    @property
    def tables(self) -> Tuple[BaseTableStorage, ...]:
        return tuple(self._tables[name] for name in self.schema.relation_names)

    def with_storage(self, storage: StorageConfig) -> "Database":
        """A new database with identical contents under another config.

        Rowids, insertion order, and the next-rowid counters carry over
        (each table is rebuilt via :meth:`~repro.storage.api.TableStorage.restore`
        of its export), so the copy is byte-identical to this database
        under every query — the mechanism the differential storage
        suite leans on.  The WAL, if any, stays attached to *this*
        database only.
        """
        clone = Database(
            self.schema,
            enforce_foreign_keys=self.enforce_foreign_keys,
            storage=storage,
        )
        for table in self.tables:
            clone.table(table.name).restore(table.export_rows(), table.next_rowid)
        return clone

    def storage_stats(self) -> Dict[str, Any]:
        """Per-table engine stats (engine tag, pool counters, ...)."""
        return {table.name: table.stats() for table in self.tables}

    def row_counts(self) -> Dict[str, int]:
        return {table.name: len(table) for table in self.tables}

    @property
    def total_rows(self) -> int:
        return sum(len(table) for table in self.tables)

    @property
    def data_version(self) -> int:
        """Monotonic counter over all tables; changes whenever any data does.

        Executor-side caches (subquery memos, scan caches) compare this
        version so that mutations made directly through the storage layer
        invalidate them too, not only DML routed through the executor.
        """
        return sum(table.version for table in self._tables.values())

    # ------------------------------------------------------------------
    # Durability hooks
    # ------------------------------------------------------------------

    def attach_wal(self, wal: Any) -> None:
        """Attach a write-ahead log; mutations are logged before applied.

        ``wal`` needs an ``append(payload)`` method; an optional
        ``note_applied()`` is called after each successful apply (the
        :class:`~repro.storage.durability.DurabilityManager` uses it to
        count mutations toward its next checkpoint).
        """
        self._wal = wal

    def detach_wal(self) -> None:
        self._wal = None

    @property
    def wal(self) -> Optional[Any]:
        return self._wal

    def _log(self, op: Tuple[Any, ...]) -> None:
        if self._wal is not None and not self._replaying:
            self._wal.append(op)

    def _note_applied(self) -> None:
        if self._wal is not None and not self._replaying:
            note = getattr(self._wal, "note_applied", None)
            if note is not None:
                note()

    # ------------------------------------------------------------------
    # Mutation with FK enforcement
    # ------------------------------------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any], coerce: bool = False) -> int:
        """Insert one row, enforcing foreign keys against parent tables."""
        table = self.table(table_name)
        if self.enforce_foreign_keys:
            self._check_foreign_keys(table.name, values)
        # Log-before-apply: a logged insert may still be rejected by a
        # table constraint below, but replay re-runs the identical check
        # on identical state, so it re-rejects identically.
        self._log(("insert", table.name, dict(values), coerce))
        rowid = table.insert(values, coerce=coerce)
        self._note_applied()
        return rowid

    def insert_many(
        self, table_name: str, rows: Iterable[Mapping[str, Any]], coerce: bool = False
    ) -> List[int]:
        return [self.insert(table_name, row, coerce=coerce) for row in rows]

    def load(self, data: Mapping[str, Sequence[Mapping[str, Any]]], coerce: bool = False) -> None:
        """Bulk-load ``{table name: [row dict, ...]}`` respecting FK order.

        Tables are loaded parents-first so that foreign keys validate; the
        order is derived from the schema's FK graph with a simple
        topological pass (cycles fall back to declaration order).
        """
        for table_name in self._load_order(data.keys()):
            rows = data.get(table_name, ())
            self.insert_many(table_name, rows, coerce=coerce)

    def delete_where(self, table_name: str, predicate) -> int:
        """Delete rows matching ``predicate(row)``; returns the number removed."""
        table = self.table(table_name)
        to_delete = [rowid for rowid, row in table.rows_with_ids() if predicate(row)]
        if self.enforce_foreign_keys:
            for rowid in to_delete:
                self._check_no_referencing_children(table.name, table.row_by_id(rowid))
        if to_delete:
            # The *resolved* rowids are logged, never the predicate: a
            # Python callable is not durably serialisable, and rowids
            # make replay independent of predicate re-evaluation order.
            self._log(("delete", table.name, list(to_delete)))
        removed = table.delete_rows(to_delete)
        if removed:
            self._note_applied()
        return removed

    def update_where(self, table_name: str, predicate, changes: Mapping[str, Any]) -> int:
        """Update rows matching ``predicate(row)`` with ``changes``."""
        table = self.table(table_name)
        to_update = [rowid for rowid, row in table.rows_with_ids() if predicate(row)]
        if self.enforce_foreign_keys:
            merged_probe = dict(changes)
            self._check_foreign_keys(table.name, merged_probe, partial=True)
        if to_update:
            self._log(("update", table.name, list(to_update), dict(changes)))
        updated = table.update_rows(to_update, changes)
        if updated:
            self._note_applied()
        return updated

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _apply_logged(self, op: Tuple[Any, ...]) -> None:
        """Apply one logged operation during replay (no re-logging)."""
        kind = op[0]
        if kind == "insert":
            _, table_name, values, coerce = op
            table = self.table(table_name)
            if self.enforce_foreign_keys:
                self._check_foreign_keys(table.name, values)
            table.insert(values, coerce=coerce)
        elif kind == "delete":
            _, table_name, rowids = op
            table = self.table(table_name)
            if self.enforce_foreign_keys:
                for rowid in rowids:
                    if table.has_row(rowid):
                        self._check_no_referencing_children(
                            table.name, table.row_by_id(rowid)
                        )
            table.delete_rows(rowids)
        elif kind == "update":
            _, table_name, rowids, changes = op
            table = self.table(table_name)
            if self.enforce_foreign_keys:
                self._check_foreign_keys(table.name, dict(changes), partial=True)
            table.update_rows(rowids, changes)
        else:
            raise RecoveryError(f"unknown logged operation kind {kind!r}")

    def replay(self, payloads: Iterable[Tuple[Any, ...]]) -> Tuple[int, int]:
        """Re-apply logged operations in order; returns (applied, rejected).

        Operations that were rejected when first attempted (the log is
        written *before* constraint checks at the table layer) re-reject
        here with the identical typed error — replay runs the same code
        over the same state — so rejection is counted, not fatal.
        """
        applied = 0
        rejected = 0
        self._replaying = True
        try:
            for payload in payloads:
                try:
                    self._apply_logged(payload)
                    applied += 1
                except ReproError:
                    rejected += 1
        finally:
            self._replaying = False
        return applied, rejected

    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        schema: Optional[Schema] = None,
        enforce_foreign_keys: bool = True,
        storage: Optional[StorageConfig] = None,
    ) -> Tuple["Database", Dict[str, Any]]:
        """Rebuild a database from a durability directory: snapshot + replay.

        Loads the newest intact snapshot (if any), restores it, then
        replays every WAL record after the snapshot's sequence number.
        ``schema`` is only needed when the directory holds no snapshot
        (the baseline the :class:`~repro.storage.durability.DurabilityManager`
        writes on first attach makes that case rare).  ``storage``
        chooses the engines the rebuilt database uses — snapshots and
        the WAL are engine-agnostic, so state written under one config
        recovers byte-identically into any other.  A torn final WAL
        record is tolerated (truncated by the next writer); mid-log
        corruption raises :class:`~repro.errors.WalCorruptionError`; a
        sequence gap between snapshot and log raises
        :class:`~repro.errors.RecoveryError`.  Returns the database and
        a recovery report dict.
        """
        from repro.storage.snapshot import latest_snapshot, load_snapshot, restore_into
        from repro.storage.wal import WAL_NAME, scan_wal

        directory = Path(directory)
        info = latest_snapshot(directory)
        snapshot_seq = 0
        if info is not None:
            state = load_snapshot(info.path)
            database = cls(
                state["schema"],
                enforce_foreign_keys=state["enforce_foreign_keys"],
                storage=storage,
            )
            restore_into(database, state)
            snapshot_seq = state["wal_seq"]
        else:
            if schema is None:
                raise RecoveryError(
                    f"{directory} holds no snapshot and no schema was given;"
                    " recovery cannot invent the relations"
                )
            database = cls(
                schema, enforce_foreign_keys=enforce_foreign_keys, storage=storage
            )
        scan = scan_wal(directory / WAL_NAME)  # strict: mid-log damage raises
        tail = [record for record in scan.records if record.seq > snapshot_seq]
        if tail and tail[0].seq > snapshot_seq + 1:
            raise RecoveryError(
                f"WAL gap: snapshot covers seq {snapshot_seq} but the log"
                f" resumes at seq {tail[0].seq}"
            )
        applied, rejected = database.replay(record.payload for record in tail)
        report = {
            "snapshot": str(info.path) if info is not None else None,
            "snapshot_seq": snapshot_seq,
            "wal_last_seq": scan.last_seq,
            "replayed": applied,
            "rejected": rejected,
            "torn_bytes": scan.torn_bytes,
        }
        return database, report

    # ------------------------------------------------------------------
    # Foreign key checks
    # ------------------------------------------------------------------

    def _check_foreign_keys(
        self, table_name: str, values: Mapping[str, Any], partial: bool = False
    ) -> None:
        lowered = {k.lower(): v for k, v in values.items()}
        for fk in self.schema.foreign_keys_from(table_name):
            child_values = [lowered.get(col.lower()) for col in fk.source_attributes]
            if partial and all(
                col.lower() not in lowered for col in fk.source_attributes
            ):
                continue
            if any(v is None for v in child_values):
                # SQL semantics: NULL FK components never fail the constraint.
                continue
            parent = self.table(fk.target_relation)
            if not parent.has_key(fk.target_attributes, child_values):
                raise ForeignKeyViolationError(
                    f"insert into {table_name} violates {fk}: no parent row with"
                    f" {dict(zip(fk.target_attributes, child_values))!r}"
                )

    def _check_no_referencing_children(self, table_name: str, row: Row) -> None:
        for fk in self.schema.foreign_keys_to(table_name):
            parent_key = [row.get(col) for col in fk.target_attributes]
            if any(v is None for v in parent_key):
                continue
            child = self.table(fk.source_relation)
            if child.has_key(fk.source_attributes, parent_key):
                raise ForeignKeyViolationError(
                    f"cannot delete from {table_name}: rows in {fk.source_relation}"
                    f" still reference key {parent_key!r} via {fk}"
                )

    def _load_order(self, table_names: Iterable[str]) -> List[str]:
        requested = [self.table(name).name for name in table_names]
        remaining = list(requested)
        ordered: List[str] = []
        # Kahn-style topological ordering on the FK graph restricted to the
        # requested tables: a table can be loaded once all parents it
        # references are already loaded (or are not part of this batch).
        for _ in range(len(remaining) + 1):
            progressed = False
            for name in list(remaining):
                parents = {
                    fk.target_relation
                    for fk in self.schema.foreign_keys_from(name)
                    if fk.target_relation != name
                }
                if parents & set(remaining) - {name}:
                    continue
                ordered.append(name)
                remaining.remove(name)
                progressed = True
            if not remaining:
                break
            if not progressed:
                # FK cycle among the requested tables: fall back to given order.
                ordered.extend(remaining)
                remaining.clear()
                break
        return ordered

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Database({self.schema.name}: {self.total_rows} rows in {len(self.tables)} tables)"
