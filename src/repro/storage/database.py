"""The in-memory database: a schema plus one table per relation."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.catalog.schema import Schema
from repro.errors import ForeignKeyViolationError, UnknownTableError
from repro.storage.row import Row
from repro.storage.table import Table


class Database:
    """An in-memory relational database instance.

    The database owns one :class:`Table` per relation of its
    :class:`Schema` and enforces foreign-key constraints on insert and
    delete when ``enforce_foreign_keys`` is enabled (the default).  It is
    the substrate both for content translation (Section 2 of the paper:
    narrating what is *in* the database) and for query execution (used to
    verify query translations and to explain empty answers).
    """

    def __init__(self, schema: Schema, enforce_foreign_keys: bool = True) -> None:
        self.schema = schema
        self.enforce_foreign_keys = enforce_foreign_keys
        self._tables: Dict[str, Table] = {
            relation.name: Table(relation) for relation in schema.relations
        }

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) relation name."""
        if name in self._tables:
            return self._tables[name]
        lowered = name.lower()
        for candidate, table in self._tables.items():
            if candidate.lower() == lowered:
                return table
        raise UnknownTableError(
            f"database has no table {name!r}"
            f" (available: {', '.join(sorted(self._tables))})"
        )

    def has_table(self, name: str) -> bool:
        try:
            self.table(name)
            return True
        except UnknownTableError:
            return False

    @property
    def tables(self) -> Tuple[Table, ...]:
        return tuple(self._tables[name] for name in self.schema.relation_names)

    def row_counts(self) -> Dict[str, int]:
        return {table.name: len(table) for table in self.tables}

    @property
    def total_rows(self) -> int:
        return sum(len(table) for table in self.tables)

    @property
    def data_version(self) -> int:
        """Monotonic counter over all tables; changes whenever any data does.

        Executor-side caches (subquery memos, scan caches) compare this
        version so that mutations made directly through the storage layer
        invalidate them too, not only DML routed through the executor.
        """
        return sum(table.version for table in self._tables.values())

    # ------------------------------------------------------------------
    # Mutation with FK enforcement
    # ------------------------------------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any], coerce: bool = False) -> int:
        """Insert one row, enforcing foreign keys against parent tables."""
        table = self.table(table_name)
        if self.enforce_foreign_keys:
            self._check_foreign_keys(table.name, values)
        return table.insert(values, coerce=coerce)

    def insert_many(
        self, table_name: str, rows: Iterable[Mapping[str, Any]], coerce: bool = False
    ) -> List[int]:
        return [self.insert(table_name, row, coerce=coerce) for row in rows]

    def load(self, data: Mapping[str, Sequence[Mapping[str, Any]]], coerce: bool = False) -> None:
        """Bulk-load ``{table name: [row dict, ...]}`` respecting FK order.

        Tables are loaded parents-first so that foreign keys validate; the
        order is derived from the schema's FK graph with a simple
        topological pass (cycles fall back to declaration order).
        """
        for table_name in self._load_order(data.keys()):
            rows = data.get(table_name, ())
            self.insert_many(table_name, rows, coerce=coerce)

    def delete_where(self, table_name: str, predicate) -> int:
        """Delete rows matching ``predicate(row)``; returns the number removed."""
        table = self.table(table_name)
        to_delete = [rowid for rowid, row in table.rows_with_ids() if predicate(row)]
        if self.enforce_foreign_keys:
            for rowid in to_delete:
                self._check_no_referencing_children(table.name, table.row_by_id(rowid))
        return table.delete_rows(to_delete)

    def update_where(self, table_name: str, predicate, changes: Mapping[str, Any]) -> int:
        """Update rows matching ``predicate(row)`` with ``changes``."""
        table = self.table(table_name)
        to_update = [rowid for rowid, row in table.rows_with_ids() if predicate(row)]
        if self.enforce_foreign_keys:
            merged_probe = dict(changes)
            self._check_foreign_keys(table.name, merged_probe, partial=True)
        return table.update_rows(to_update, changes)

    # ------------------------------------------------------------------
    # Foreign key checks
    # ------------------------------------------------------------------

    def _check_foreign_keys(
        self, table_name: str, values: Mapping[str, Any], partial: bool = False
    ) -> None:
        lowered = {k.lower(): v for k, v in values.items()}
        for fk in self.schema.foreign_keys_from(table_name):
            child_values = [lowered.get(col.lower()) for col in fk.source_attributes]
            if partial and all(
                col.lower() not in lowered for col in fk.source_attributes
            ):
                continue
            if any(v is None for v in child_values):
                # SQL semantics: NULL FK components never fail the constraint.
                continue
            parent = self.table(fk.target_relation)
            if not parent.has_key(fk.target_attributes, child_values):
                raise ForeignKeyViolationError(
                    f"insert into {table_name} violates {fk}: no parent row with"
                    f" {dict(zip(fk.target_attributes, child_values))!r}"
                )

    def _check_no_referencing_children(self, table_name: str, row: Row) -> None:
        for fk in self.schema.foreign_keys_to(table_name):
            parent_key = [row.get(col) for col in fk.target_attributes]
            if any(v is None for v in parent_key):
                continue
            child = self.table(fk.source_relation)
            if child.has_key(fk.source_attributes, parent_key):
                raise ForeignKeyViolationError(
                    f"cannot delete from {table_name}: rows in {fk.source_relation}"
                    f" still reference key {parent_key!r} via {fk}"
                )

    def _load_order(self, table_names: Iterable[str]) -> List[str]:
        requested = [self.table(name).name for name in table_names]
        remaining = list(requested)
        ordered: List[str] = []
        # Kahn-style topological ordering on the FK graph restricted to the
        # requested tables: a table can be loaded once all parents it
        # references are already loaded (or are not part of this batch).
        for _ in range(len(remaining) + 1):
            progressed = False
            for name in list(remaining):
                parents = {
                    fk.target_relation
                    for fk in self.schema.foreign_keys_from(name)
                    if fk.target_relation != name
                }
                if parents & set(remaining) - {name}:
                    continue
                ordered.append(name)
                remaining.remove(name)
                progressed = True
            if not remaining:
                break
            if not progressed:
                # FK cycle among the requested tables: fall back to given order.
                ordered.extend(remaining)
                remaining.clear()
                break
        return ordered

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Database({self.schema.name}: {self.total_rows} rows in {len(self.tables)} tables)"
