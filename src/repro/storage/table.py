"""The historical home of the in-memory table.

The implementation now lives in :mod:`repro.storage.engine`:
:class:`~repro.storage.engine.base.BaseTableStorage` carries the
logical layer (constraints, indexes, observers, NULL tallies) and
:class:`~repro.storage.engine.rows.RowStorage` the dict-row physical
layer.  :class:`Table` remains this module's export — the name the
rest of the codebase and its tests grew up with — as the ``rows``
engine, which doubles as the differential oracle every other engine
(paged, columnar) is held byte-identical to.

Nothing was renamed: ``Table`` is ``RowStorage`` with the historical
``repr`` and is what :class:`~repro.storage.database.Database` builds
under the default :class:`~repro.storage.config.StorageConfig`.
"""

from __future__ import annotations

from repro.storage.engine.rows import RowStorage


class Table(RowStorage):
    """The dict-row storage engine under its historical name."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Table({self.name}, {len(self)} rows)"


__all__ = ["Table"]
