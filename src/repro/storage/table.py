"""In-memory table with constraint checking and hash indexes."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.catalog.relation import Relation
from repro.catalog.types import check_value, coerce_value
from repro.errors import (
    NotNullViolationError,
    PrimaryKeyViolationError,
    UnknownAttributeError,
)
from repro.storage.index import HashIndex
from repro.storage.row import Row


class Table:
    """An in-memory table storing rows that conform to a :class:`Relation`.

    Rows are stored in insertion order and identified by a monotonically
    increasing integer row id.  A unique hash index is maintained over the
    primary key (when the relation declares one); additional indexes can be
    created on demand and are kept up to date by inserts/deletes/updates.
    """

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._next_rowid = 1
        self._version = 0
        self._indexes: Dict[str, HashIndex] = {}
        #: Per-column NULL tallies, maintained by every mutation.  The
        #: streaming narrator uses them to prove a heading-only fallback
        #: clause cannot occur (no row has all narrated attributes NULL).
        self._null_counts: Dict[str, int] = {a.name: 0 for a in relation.attributes}
        #: Mutation observers (maintained ranking structures, like the
        #: indexes but cross-table).  Notified after the row store and
        #: indexes reflect the change.
        self._observers: List[Any] = []
        if relation.primary_key_names:
            self.create_index("pk", relation.primary_key_names, unique=True)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutating call.

        Caches keyed on table contents (scan caches, subquery memos)
        compare versions instead of subscribing to change events.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Row]:
        """Iterate over the table's rows in insertion order.

        Rowids are assigned monotonically and never reused, and dicts
        preserve insertion order, so no sort is needed.
        """
        for values in self._rows.values():
            yield Row(values)

    def rows_with_ids(self) -> Iterator[Tuple[int, Row]]:
        for rowid, values in self._rows.items():
            yield rowid, Row(values)

    def row_by_id(self, rowid: int) -> Row:
        return Row(self._rows[rowid])

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, values: Mapping[str, Any], coerce: bool = False) -> int:
        """Insert a row given a column/value mapping; returns the new row id.

        Unknown columns raise :class:`UnknownAttributeError`; missing
        columns default to ``None`` (subject to NOT NULL checks).  With
        ``coerce=True`` textual values are converted to the declared types,
        which is what the CSV/dict loaders use.
        """
        normalised = self._normalise(values, coerce=coerce)
        self._check_not_null(normalised)
        self._check_unique_indexes(normalised)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = normalised
        self._version += 1
        for column, value in normalised.items():
            if value is None:
                self._null_counts[column] += 1
        for index in self._indexes.values():
            index.add(index.key_for(normalised), rowid)
        if self._observers:
            for observer in self._observers:
                observer.row_inserted(self, rowid, normalised)
        return rowid

    def insert_many(self, rows: Iterable[Mapping[str, Any]], coerce: bool = False) -> List[int]:
        return [self.insert(row, coerce=coerce) for row in rows]

    def delete_rows(self, rowids: Iterable[int]) -> int:
        """Delete the rows with the given ids; returns how many were removed."""
        removed = 0
        for rowid in list(rowids):
            values = self._rows.pop(rowid, None)
            if values is None:
                continue
            for column, value in values.items():
                if value is None:
                    self._null_counts[column] -= 1
            for index in self._indexes.values():
                index.remove(index.key_for(values), rowid)
            if self._observers:
                for observer in self._observers:
                    observer.row_deleted(self, rowid, values)
            removed += 1
        if removed:
            self._version += 1
        return removed

    def update_rows(self, rowids: Iterable[int], changes: Mapping[str, Any]) -> int:
        """Apply ``changes`` to each of the given rows; returns how many changed."""
        updated = 0
        for rowid in list(rowids):
            current = self._rows.get(rowid)
            if current is None:
                continue
            merged = dict(current)
            for column, value in changes.items():
                attribute = self.relation.attribute(column)
                merged[attribute.name] = check_value(
                    attribute.dtype, value, context=attribute.qualified_name
                )
            self._check_not_null(merged)
            self._check_unique_indexes(merged, ignore_rowid=rowid)
            for column in merged:
                was_null = current.get(column) is None
                is_null = merged[column] is None
                if was_null != is_null:
                    self._null_counts[column] += 1 if is_null else -1
            for index in self._indexes.values():
                index.remove(index.key_for(current), rowid)
                index.add(index.key_for(merged), rowid)
            self._rows[rowid] = merged
            if self._observers:
                for observer in self._observers:
                    observer.row_updated(self, rowid, current, merged)
            updated += 1
        if updated:
            self._version += 1
        return updated

    def truncate(self) -> None:
        """Remove every row (indexes are cleared)."""
        self._rows.clear()
        self._version += 1
        self._null_counts = {a.name: 0 for a in self.relation.attributes}
        for index in self._indexes.values():
            index.clear()
        if self._observers:
            for observer in self._observers:
                observer.table_truncated(self)

    def restore(self, rows: Iterable[Tuple[int, Mapping[str, Any]]], next_rowid: int) -> None:
        """Replace the table's contents with snapshot state, rowids included.

        Values are taken as already validated (they passed constraint
        checks when originally inserted), so no re-checking happens —
        restoring must succeed even under constraints a partially-built
        state would violate mid-way.  The rowid counter is restored too,
        so rows inserted after recovery get the same ids they would have
        gotten had the process never died.  Bumps the version so caches
        keyed on table contents are invalidated.
        """
        self.truncate()
        for rowid, values in rows:
            stored = dict(values)
            self._rows[rowid] = stored
            for column, value in stored.items():
                if value is None:
                    self._null_counts[column] += 1
            for index in self._indexes.values():
                index.add(index.key_for(stored), rowid)
            if self._observers:
                for observer in self._observers:
                    observer.row_inserted(self, rowid, stored)
        self._next_rowid = next_rowid
        self._version += 1

    def null_count(self, column: str) -> int:
        """How many rows currently store NULL in ``column``."""
        return self._null_counts[self.relation.attribute(column).name]

    def add_observer(self, observer: Any) -> None:
        """Register a mutation observer (idempotent per object)."""
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def create_index(self, name: str, columns: Sequence[str], unique: bool = False) -> HashIndex:
        """Create (or return an existing) index over ``columns``."""
        canonical = tuple(self.relation.attribute(c).name for c in columns)
        key = name.lower()
        if key in self._indexes:
            return self._indexes[key]
        index = HashIndex(name, canonical, unique=unique)
        for rowid, values in self._rows.items():
            index.add(index.key_for(values), rowid)
        self._indexes[key] = index
        return index

    def index(self, name: str) -> Optional[HashIndex]:
        return self._indexes.get(name.lower())

    def indexes(self) -> Tuple[HashIndex, ...]:
        return tuple(self._indexes.values())

    def find_index(self, columns: Sequence[str]) -> Optional[HashIndex]:
        """An existing index exactly covering ``columns``, if any."""
        canonical = tuple(self.relation.attribute(c).name for c in columns)
        for index in self._indexes.values():
            if index.columns == canonical:
                return index
        return None

    def ensure_index(self, columns: Sequence[str]) -> HashIndex:
        """Find an index covering ``columns``, creating one on demand.

        The executor uses this to self-tune: the first index-backed scan
        over a column set pays the build cost, later scans get O(1) probes.
        """
        existing = self.find_index(columns)
        if existing is not None:
            return existing
        canonical = tuple(self.relation.attribute(c).name for c in columns)
        # "," cannot appear in identifiers, so differently-shaped column
        # sets never produce the same name (("a","b") vs ("a_b",)); the
        # loop guards against a user-created index squatting on the name.
        base = "auto_" + ",".join(canonical)
        name = base
        suffix = 0
        while True:
            index = self.create_index(name, canonical)
            if index.columns == canonical:
                return index
            suffix += 1
            name = f"{base}~{suffix}"

    def lookup(self, columns: Sequence[str], values: Sequence[Any]) -> List[Row]:
        """Fetch rows whose ``columns`` equal ``values`` through a hash index.

        Self-tuning like the executor's index scans: the first lookup on a
        column set builds the index (``ensure_index``), later lookups are
        O(1) probes.  Rowids are monotonic, so the sorted probe result
        preserves the insertion order the old linear scan returned.
        """
        index = self.ensure_index(columns)
        return [self.row_by_id(rowid) for rowid in index.lookup(tuple(values))]

    def has_key(self, columns: Sequence[str], values: Sequence[Any]) -> bool:
        return bool(self.lookup(columns, values))

    # ------------------------------------------------------------------
    # Constraint helpers
    # ------------------------------------------------------------------

    def _normalise(self, values: Mapping[str, Any], coerce: bool) -> Dict[str, Any]:
        known = {a.name.lower(): a for a in self.relation.attributes}
        normalised: Dict[str, Any] = {a.name: None for a in self.relation.attributes}
        for column, value in values.items():
            attribute = known.get(column.lower())
            if attribute is None:
                raise UnknownAttributeError(
                    f"table {self.name!r} has no column {column!r}"
                )
            if coerce:
                value = coerce_value(attribute.dtype, value)
            normalised[attribute.name] = check_value(
                attribute.dtype, value, context=attribute.qualified_name
            )
        return normalised

    def _check_not_null(self, values: Mapping[str, Any]) -> None:
        for attribute in self.relation.attributes:
            if not attribute.nullable and values.get(attribute.name) is None:
                raise NotNullViolationError(
                    f"column {attribute.qualified_name} is NOT NULL but received NULL"
                )

    def _check_unique_indexes(
        self, values: Mapping[str, Any], ignore_rowid: Optional[int] = None
    ) -> None:
        for index in self._indexes.values():
            key = index.key_for(dict(values))
            if index.would_violate_unique(key, ignore_rowid=ignore_rowid):
                raise PrimaryKeyViolationError(
                    f"duplicate key {key!r} for unique index {index.name!r}"
                    f" on table {self.name!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Table({self.name}, {len(self)} rows)"
