"""StorageConfig: every storage knob in one validated dataclass.

Before this module the storage layer's tuning was scattered — implicit
index self-tuning inside ``Table.lookup``, page/pool sizes that would
have become constructor kwargs, and ``REPRO_*`` environment variables
read at point of use (the ``REPRO_PLAN_STORE_SIZE`` pattern).  The
config consolidates them behind one frozen dataclass, mirroring
:class:`~repro.storage.durability.DurabilityConfig` and
``ShardRouterConfig``: construct it once, validate eagerly, pass it to
:class:`~repro.storage.database.Database` (or a session / shard router)
and every table the database builds obeys it.

It composes with :class:`~repro.storage.durability.DurabilityConfig`:
durability decides *whether* state survives the process, storage
decides *how* each relation physically holds its rows.  WAL replay and
snapshot restore are engine-agnostic, so any combination is legal and
byte-identical.

Environment variables (read by :meth:`StorageConfig.from_env`, which is
what a bare ``Database(schema)`` uses):

``REPRO_STORAGE_ENGINE``
    Default engine for every relation: ``rows`` (default), ``paged``,
    or ``columnar``.  Flipping this runs the entire test suite through
    another engine — the storage twin of ``REPRO_ORACLE=1``.
``REPRO_STORAGE_PAGE_SIZE``
    Page size in bytes for ``paged`` relations.
``REPRO_STORAGE_POOL_PAGES``
    Buffer pool capacity, in pages, for ``paged`` relations.
``REPRO_STORAGE_AUTO_INDEX``
    ``0`` disables implicit index creation in ``lookup`` (explicit
    ``create_index``/``ensure_index`` still work).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Tuple, Union

from repro.storage.engine.paged import MAX_PAGE_SIZE, MIN_PAGE_SIZE

__all__ = [
    "ENGINE_ROWS",
    "ENGINE_PAGED",
    "ENGINE_COLUMNAR",
    "STORAGE_ENGINES",
    "StorageConfig",
]

ENGINE_ROWS = "rows"
ENGINE_PAGED = "paged"
ENGINE_COLUMNAR = "columnar"
STORAGE_ENGINES: Tuple[str, ...] = (ENGINE_ROWS, ENGINE_PAGED, ENGINE_COLUMNAR)

ENGINE_ENV = "REPRO_STORAGE_ENGINE"
PAGE_SIZE_ENV = "REPRO_STORAGE_PAGE_SIZE"
POOL_PAGES_ENV = "REPRO_STORAGE_POOL_PAGES"
AUTO_INDEX_ENV = "REPRO_STORAGE_AUTO_INDEX"


@dataclass(frozen=True)
class StorageConfig:
    """How a database physically stores each relation.

    ``default_engine``
        Engine for relations without an explicit entry in ``engines``:
        ``"rows"`` (dict rows, the oracle), ``"paged"`` (slotted pages
        behind a buffer pool), or ``"columnar"`` (per-column arrays,
        vectorized scans).
    ``engines``
        Per-relation overrides, ``{relation name: engine}``; names are
        matched case-insensitively.
    ``page_size``
        Page size in bytes for paged relations (``128``–``65536``).
    ``buffer_pool_pages``
        Resident-page budget per paged relation; datasets beyond it
        spill to the heap file and pay eviction/write-back.
    ``directory``
        Where paged relations keep their heap files; ``None`` (the
        default) uses anonymous temp files, which is correct because
        the heap is scratch space — durability is the WAL/snapshot's
        job (see :class:`~repro.storage.durability.DurabilityConfig`).
    ``auto_index``
        Whether ``lookup`` self-tunes by building hash indexes on first
        use.  ``False`` degrades lookups (no covering index) to linear
        scans instead of creating indexes implicitly.

    The dataclass is frozen (shareable across databases and picklable
    into shard worker specs) and validates eagerly, like
    :class:`~repro.storage.durability.DurabilityConfig`.
    """

    default_engine: str = ENGINE_ROWS
    engines: Mapping[str, str] = field(default_factory=dict)
    page_size: int = 4096
    buffer_pool_pages: int = 64
    directory: Optional[Union[str, Path]] = None
    auto_index: bool = True

    def __post_init__(self) -> None:
        if self.default_engine not in STORAGE_ENGINES:
            raise ValueError(
                f"default_engine must be one of {STORAGE_ENGINES}, got {self.default_engine!r}"
            )
        normalised = {}
        for name, engine in dict(self.engines).items():
            if engine not in STORAGE_ENGINES:
                raise ValueError(
                    f"engine for relation {name!r} must be one of {STORAGE_ENGINES},"
                    f" got {engine!r}"
                )
            normalised[name.lower()] = engine
        object.__setattr__(self, "engines", normalised)
        if not MIN_PAGE_SIZE <= self.page_size <= MAX_PAGE_SIZE:
            raise ValueError(
                f"page_size must be in [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}],"
                f" got {self.page_size}"
            )
        if self.buffer_pool_pages < 1:
            raise ValueError("buffer_pool_pages must be >= 1")

    def engine_for(self, relation_name: str) -> str:
        """The engine a relation should use (override or default)."""
        return self.engines.get(relation_name.lower(), self.default_engine)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "StorageConfig":
        """Build a config from ``REPRO_STORAGE_*`` environment variables.

        Unset variables keep the defaults, so with a clean environment
        this is exactly ``StorageConfig()`` — dict rows everywhere.
        """
        env = os.environ if environ is None else environ
        kwargs = {}
        engine = env.get(ENGINE_ENV, "").strip().lower()
        if engine:
            kwargs["default_engine"] = engine
        page_size = env.get(PAGE_SIZE_ENV, "").strip()
        if page_size:
            try:
                kwargs["page_size"] = int(page_size)
            except ValueError:
                raise ValueError(
                    f"{PAGE_SIZE_ENV} must be an integer, got {page_size!r}"
                ) from None
        pool = env.get(POOL_PAGES_ENV, "").strip()
        if pool:
            try:
                kwargs["buffer_pool_pages"] = int(pool)
            except ValueError:
                raise ValueError(
                    f"{POOL_PAGES_ENV} must be an integer, got {pool!r}"
                ) from None
        auto = env.get(AUTO_INDEX_ENV, "").strip()
        if auto:
            kwargs["auto_index"] = auto not in ("0", "false", "no", "off")
        return cls(**kwargs)
