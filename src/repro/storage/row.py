"""Row representation used by the storage engine and the executor."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple


class Row(Mapping[str, Any]):
    """An immutable mapping of qualified/unqualified column names to values.

    Rows flow from the storage engine through the executor to the NLG
    layer.  During joins the executor needs column references such as
    ``m.title`` (alias-qualified) as well as plain ``title``; a row
    therefore resolves keys with the following precedence:

    1. exact key match,
    2. case-insensitive match,
    3. unqualified match on the suffix after the last dot (only when the
       suffix is unambiguous among the row's keys).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, Any]) -> None:
        self._values: Dict[str, Any] = dict(values)

    @classmethod
    def adopt(cls, values: Dict[str, Any]) -> "Row":
        """Wrap ``values`` without copying.

        The caller hands over ownership: the dict must not be mutated
        afterwards.  Hot paths (joins, projections) build millions of rows,
        so skipping the defensive copy of ``__init__`` matters.
        """
        row = cls.__new__(cls)
        row._values = values
        return row

    # -- Mapping protocol ------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        resolved = self.resolve_key(key)
        if resolved is None:
            raise KeyError(key)
        return self._values[resolved]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self.resolve_key(key) is not None

    # -- Lookup helpers ---------------------------------------------------

    def resolve_key(self, key: str) -> Optional[str]:
        """Return the stored key that ``key`` refers to, or ``None``."""
        if key in self._values:
            return key
        lowered = key.lower()
        for k in self._values:
            if k.lower() == lowered:
                return k
        # Unqualified lookup: match against suffix after the last dot.
        found: Optional[str] = None
        for k in self._values:
            if k.lower().rsplit(".", 1)[-1] == lowered:
                if found is not None:
                    return None  # ambiguous
                found = k
        return found

    def get(self, key: str, default: Any = None) -> Any:
        resolved = self.resolve_key(key)
        if resolved is None:
            return default
        return self._values[resolved]

    def is_ambiguous(self, key: str) -> bool:
        """True when an unqualified ``key`` matches more than one column."""
        lowered = key.lower()
        if any(k.lower() == lowered for k in self._values):
            return False
        suffix_matches = [
            k for k in self._values if k.lower().rsplit(".", 1)[-1] == lowered
        ]
        return len(suffix_matches) > 1

    # -- Construction helpers ---------------------------------------------

    def merged(self, other: "Row") -> "Row":
        """A new row containing this row's columns followed by ``other``'s."""
        return Row.adopt({**self._values, **other._values})

    def prefixed(self, prefix: str) -> "Row":
        """A new row whose keys are all qualified with ``prefix.``."""
        return Row.adopt(
            {f"{prefix}.{k.rsplit('.', 1)[-1]}": v for k, v in self._values.items()}
        )

    def project(self, keys: Iterable[str]) -> "Row":
        """A new row restricted to ``keys`` (resolved with the usual rules)."""
        out: Dict[str, Any] = {}
        for key in keys:
            out[key] = self[key]
        return Row(out)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    @property
    def raw(self) -> Dict[str, Any]:
        """The backing dict itself (read-only by convention).

        Compiled expressions (``repro.engine.compile``) go through this to
        skip per-access dict copies; callers must never mutate it.
        """
        return self._values

    def values_tuple(self, keys: Iterable[str]) -> Tuple[Any, ...]:
        return tuple(self[k] for k in keys)

    # -- Equality / representation -----------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, _hashable(v)) for k, v in self._values.items())))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Row({inner})"


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, set)):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value
