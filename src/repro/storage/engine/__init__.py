"""Pluggable table storage engines.

Three engines, one logical contract
(:class:`~repro.storage.engine.base.BaseTableStorage`, publicly the
:class:`~repro.storage.api.TableStorage` protocol):

``rows``
    :class:`~repro.storage.engine.rows.RowStorage` — dict rows, the
    original implementation and the differential oracle.
``paged``
    :class:`~repro.storage.engine.paged.PagedHeapStorage` — slotted
    pages in a heap file behind an LRU buffer pool; relations larger
    than the pool spill to disk.
``columnar``
    :class:`~repro.storage.engine.columnar.ColumnarStorage` —
    per-column arrays with a validity bitmap; the executor runs
    vectorized column-at-a-time scans over it.

:func:`create_storage` is the routing factory the
:class:`~repro.storage.database.Database` constructor calls, driven by
a :class:`~repro.storage.config.StorageConfig`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.catalog.relation import Relation
from repro.storage.engine.base import BaseTableStorage
from repro.storage.engine.columnar import ColumnarStorage
from repro.storage.engine.paged import (
    BufferManager,
    DiskManager,
    PagedHeapStorage,
    SlottedPage,
)
from repro.storage.engine.rows import RowStorage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.config import StorageConfig

__all__ = [
    "BaseTableStorage",
    "BufferManager",
    "ColumnarStorage",
    "DiskManager",
    "PagedHeapStorage",
    "RowStorage",
    "SlottedPage",
    "create_storage",
]


def create_storage(
    relation: Relation, config: Optional["StorageConfig"] = None
) -> BaseTableStorage:
    """Build the configured storage engine for one relation."""
    from repro.storage.config import (
        ENGINE_COLUMNAR,
        ENGINE_PAGED,
        StorageConfig,
    )

    if config is None:
        config = StorageConfig()
    engine = config.engine_for(relation.name)
    if engine == ENGINE_PAGED:
        return PagedHeapStorage(
            relation,
            page_size=config.page_size,
            buffer_pool_pages=config.buffer_pool_pages,
            directory=config.directory,
            auto_index=config.auto_index,
        )
    if engine == ENGINE_COLUMNAR:
        return ColumnarStorage(relation, auto_index=config.auto_index)
    # The rows engine is built as the historical ``Table`` subclass so
    # existing reprs and isinstance expectations keep holding.
    from repro.storage.table import Table

    return Table(relation, auto_index=config.auto_index)
