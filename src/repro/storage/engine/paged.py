"""Paged heap engine: slotted pages on disk behind an LRU buffer pool.

The engine that lets a relation outgrow RAM: row payloads live in
fixed-size pages in a heap file owned by a :class:`DiskManager`, and
only ``buffer_pool_pages`` of them are resident at a time, managed by a
:class:`BufferManager` with pin/unpin semantics, LRU eviction of
unpinned frames, and dirty-page write-back.

Page format (little-endian, ``page_size`` bytes)::

    0      2      4                    free_start          page_size
    +------+------+--------------------+--------...--------+
    | nslt | free | slot directory     |   free space      |
    +------+------+--------------------+-------------------+
    ...payloads grow downward from page_size toward free_start...

* ``nslt`` (u16): number of slot directory entries ever allocated.
* ``free`` (u16): offset where the payload region currently begins
  (payloads are written back-to-front).
* slot ``i`` at byte ``4 + 4*i``: ``(offset u16, length u16)``.  An
  offset of 0 marks a dead slot (payloads can never start at 0).

Records are the row's values pickled as a tuple in attribute
declaration order — decoding zips them back with the attribute names,
so reconstructed dicts have exactly the key order every engine
guarantees.  Updates rewrite in place when the new payload fits the old
slot, otherwise the slot dies and the record is relocated (its rowid —
and therefore its scan position, tracked by the in-memory
``_locations`` map — is unchanged).

The heap file is *scratch space*, not the durability story: recovery
always reconstructs contents from snapshot + WAL (``restore`` truncates
and rewrites the heap), so a stale or missing heap file can never
resurrect deleted data.  Records too large for any page (wider than
``page_size - 12`` bytes once pickled) overflow to an in-memory side
table rather than failing — counted in :meth:`PagedHeapStorage.stats`
so a mis-sized ``page_size`` is visible.
"""

from __future__ import annotations

import pickle
import struct
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.catalog.relation import Relation
from repro.storage.engine.base import BaseTableStorage

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
PAGE_HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size

#: Smallest page that still fits the header, one slot, and a few bytes
#: of payload.  StorageConfig validates against this.
MIN_PAGE_SIZE = 128
#: Largest page whose offsets fit the u16 slot directory.
MAX_PAGE_SIZE = 65536


def max_record_size(page_size: int) -> int:
    """The largest payload a single fresh page can hold."""
    return page_size - PAGE_HEADER_SIZE - SLOT_SIZE


class DiskManager:
    """Fixed-size page I/O over one heap file.

    With ``path=None`` an anonymous temp file backs the heap (deleted by
    the OS when closed) — the right default because the heap is scratch
    space.  A real path keeps the file around for inspection.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None, page_size: int = 4096) -> None:
        self.page_size = page_size
        self.path = Path(path) if path is not None else None
        if self.path is None:
            self._file = tempfile.TemporaryFile(prefix="repro-heap-")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w+b")
        self._page_count = 0
        self.reads = 0
        self.writes = 0

    @property
    def page_count(self) -> int:
        return self._page_count

    def allocate(self) -> int:
        """Reserve a new zeroed page; returns its page id."""
        page_id = self._page_count
        self._page_count += 1
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        return page_id

    def read(self, page_id: int) -> bytes:
        if not 0 <= page_id < self._page_count:
            raise ValueError(f"page {page_id} not allocated (have {self._page_count})")
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        self.reads += 1
        if len(data) < self.page_size:
            # A crash can leave the file short; the tail reads as zeros.
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def write(self, page_id: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise ValueError(
                f"page write must be exactly {self.page_size} bytes, got {len(data)}"
            )
        self._file.seek(page_id * self.page_size)
        self._file.write(data)
        self.writes += 1

    def reset(self) -> None:
        """Drop every page (truncate the heap to empty)."""
        self._file.seek(0)
        self._file.truncate(0)
        self._page_count = 0

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def stats(self) -> Dict[str, Any]:
        return {
            "page_size": self.page_size,
            "pages": self._page_count,
            "reads": self.reads,
            "writes": self.writes,
            "path": str(self.path) if self.path is not None else None,
        }


class SlottedPage:
    """Mutable view over one page buffer implementing the slot directory."""

    __slots__ = ("buffer", "page_size")

    def __init__(self, buffer: bytearray, page_size: int) -> None:
        self.buffer = buffer
        self.page_size = page_size

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.buffer, 0)[0]

    @property
    def free_start(self) -> int:
        start = _HEADER.unpack_from(self.buffer, 0)[1]
        # A zeroed (fresh) page reads free_start == 0: payloads start at
        # the page end.
        return start or self.page_size

    def _set_header(self, slot_count: int, free_start: int) -> None:
        _HEADER.pack_into(self.buffer, 0, slot_count, free_start)

    def free_space(self) -> int:
        return self.free_start - PAGE_HEADER_SIZE - self.slot_count * SLOT_SIZE

    def insert(self, record: bytes) -> Optional[int]:
        """Store ``record``; returns its slot number or None when full."""
        need = len(record) + SLOT_SIZE
        if self.free_space() < need:
            return None
        slot = self.slot_count
        offset = self.free_start - len(record)
        self.buffer[offset : offset + len(record)] = record
        _SLOT.pack_into(self.buffer, PAGE_HEADER_SIZE + slot * SLOT_SIZE, offset, len(record))
        self._set_header(slot + 1, offset)
        return slot

    def read(self, slot: int) -> Optional[bytes]:
        if not 0 <= slot < self.slot_count:
            return None
        offset, length = _SLOT.unpack_from(self.buffer, PAGE_HEADER_SIZE + slot * SLOT_SIZE)
        if offset == 0:
            return None  # dead slot
        return bytes(self.buffer[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Kill a slot (its payload bytes are abandoned, not reclaimed)."""
        _SLOT.pack_into(self.buffer, PAGE_HEADER_SIZE + slot * SLOT_SIZE, 0, 0)

    def update_in_place(self, slot: int, record: bytes) -> bool:
        """Overwrite a slot's payload when it fits; False means relocate."""
        offset, length = _SLOT.unpack_from(self.buffer, PAGE_HEADER_SIZE + slot * SLOT_SIZE)
        if offset == 0 or len(record) > length:
            return False
        self.buffer[offset : offset + len(record)] = record
        _SLOT.pack_into(self.buffer, PAGE_HEADER_SIZE + slot * SLOT_SIZE, offset, len(record))
        return True


class BufferManager:
    """LRU page cache with pin counts and dirty write-back.

    Contract:

    * :meth:`pin` returns the page's mutable buffer and holds it
      resident until the matching :meth:`unpin`; pass ``dirty=True`` at
      unpin if the buffer was modified.
    * Eviction considers only unpinned frames, least-recently-used
      first, and writes dirty victims back before dropping them.
    * If every frame is pinned the pool grows past ``capacity`` rather
      than deadlocking (counted in ``overflows`` — a correctly written
      caller pins at most a couple of pages at a time).
    """

    class _Frame:
        __slots__ = ("buffer", "pins", "dirty")

        def __init__(self, buffer: bytearray) -> None:
            self.buffer = buffer
            self.pins = 0
            self.dirty = False

    def __init__(self, disk: DiskManager, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.disk = disk
        self.capacity = capacity
        self._frames: "OrderedDict[int, BufferManager._Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_backs = 0
        self.overflows = 0

    def pin(self, page_id: int) -> bytearray:
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            frame.pins += 1
            self.hits += 1
            return frame.buffer
        self.misses += 1
        while len(self._frames) >= self.capacity:
            if not self._evict_one():
                self.overflows += 1
                break
        frame = self._Frame(bytearray(self.disk.read(page_id)))
        frame.pins = 1
        self._frames[page_id] = frame
        return frame.buffer

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        frame = self._frames[page_id]
        if frame.pins <= 0:
            raise RuntimeError(f"unpin of page {page_id} which is not pinned")
        frame.pins -= 1
        if dirty:
            frame.dirty = True

    def _evict_one(self) -> bool:
        for page_id, frame in self._frames.items():  # LRU order
            if frame.pins == 0:
                if frame.dirty:
                    self.disk.write(page_id, bytes(frame.buffer))
                    self.write_backs += 1
                del self._frames[page_id]
                self.evictions += 1
                return True
        return False

    def flush(self) -> None:
        """Write every dirty resident page back to disk."""
        for page_id, frame in self._frames.items():
            if frame.dirty:
                self.disk.write(page_id, bytes(frame.buffer))
                frame.dirty = False
                self.write_backs += 1

    def clear(self) -> None:
        """Drop every frame without write-back (heap was reset)."""
        self._frames.clear()

    @property
    def resident(self) -> int:
        return len(self._frames)

    def stats(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "resident": len(self._frames),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "write_backs": self.write_backs,
            "overflows": self.overflows,
        }


class PagedHeapStorage(BaseTableStorage):
    """Slotted-page heap behind a buffer pool; spills past RAM."""

    engine_name = "paged"

    def __init__(
        self,
        relation: Relation,
        page_size: int = 4096,
        buffer_pool_pages: int = 64,
        directory: Optional[Union[str, Path]] = None,
        auto_index: bool = True,
    ) -> None:
        if not MIN_PAGE_SIZE <= page_size <= MAX_PAGE_SIZE:
            raise ValueError(
                f"page_size must be in [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}], got {page_size}"
            )
        self._names: Tuple[str, ...] = tuple(a.name for a in relation.attributes)
        path = None
        if directory is not None:
            path = Path(directory) / f"{relation.name.lower()}.heap"
        self.disk = DiskManager(path, page_size=page_size)
        self.buffers = BufferManager(self.disk, buffer_pool_pages)
        #: rowid -> (page id, slot); dict insertion order is scan order.
        self._locations: Dict[int, Tuple[int, int]] = {}
        #: Records wider than a page; kept in memory, counted in stats().
        self._oversize: Dict[int, bytes] = {}
        self._fill_page: Optional[int] = None
        super().__init__(relation, auto_index=auto_index)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _encode(self, values: Dict[str, Any]) -> bytes:
        return pickle.dumps(
            tuple(values.get(name) for name in self._names),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def _decode(self, record: bytes) -> Dict[str, Any]:
        return dict(zip(self._names, pickle.loads(record)))

    # ------------------------------------------------------------------
    # Physical primitives
    # ------------------------------------------------------------------

    def _store_row(self, rowid: int, values: Dict[str, Any]) -> None:
        record = self._encode(values)
        if rowid in self._oversize:
            if len(record) > max_record_size(self.disk.page_size):
                self._oversize[rowid] = record
                return
            # Shrunk back under the page limit: move onto a page.  The
            # rowid keeps its position in _locations insertion order?
            # It was never in _locations, so it re-enters at the end —
            # but an oversize row was already *stored*, so this is an
            # update and order is defined by _locations plus _oversize
            # interleave, handled in _iter_items via rowid sort-merge.
            del self._oversize[rowid]
            self._locations[rowid] = self._place(record)
            return
        location = self._locations.get(rowid)
        if location is None:
            if len(record) > max_record_size(self.disk.page_size):
                self._oversize[rowid] = record
                return
            self._locations[rowid] = self._place(record)
            return
        page_id, slot = location
        buffer = self.buffers.pin(page_id)
        page = SlottedPage(buffer, self.disk.page_size)
        if page.update_in_place(slot, record):
            self.buffers.unpin(page_id, dirty=True)
            return
        page.delete(slot)
        self.buffers.unpin(page_id, dirty=True)
        if len(record) > max_record_size(self.disk.page_size):
            del self._locations[rowid]
            self._oversize[rowid] = record
            return
        # Relocate without disturbing scan order: replacing the value of
        # an existing dict key keeps its position.
        self._locations[rowid] = self._place(record)

    def _place(self, record: bytes) -> Tuple[int, int]:
        """Append ``record`` to the fill page, allocating when needed."""
        if self._fill_page is not None:
            page_id = self._fill_page
            buffer = self.buffers.pin(page_id)
            slot = SlottedPage(buffer, self.disk.page_size).insert(record)
            self.buffers.unpin(page_id, dirty=slot is not None)
            if slot is not None:
                return page_id, slot
        page_id = self.disk.allocate()
        self._fill_page = page_id
        buffer = self.buffers.pin(page_id)
        slot = SlottedPage(buffer, self.disk.page_size).insert(record)
        self.buffers.unpin(page_id, dirty=True)
        assert slot is not None  # a fresh page always fits a legal record
        return page_id, slot

    def _get_row(self, rowid: int) -> Optional[Dict[str, Any]]:
        record = self._oversize.get(rowid)
        if record is not None:
            return self._decode(record)
        location = self._locations.get(rowid)
        if location is None:
            return None
        page_id, slot = location
        buffer = self.buffers.pin(page_id)
        record = SlottedPage(buffer, self.disk.page_size).read(slot)
        self.buffers.unpin(page_id)
        if record is None:  # pragma: no cover - location map is authoritative
            return None
        return self._decode(record)

    def _pop_row(self, rowid: int) -> Optional[Dict[str, Any]]:
        record = self._oversize.pop(rowid, None)
        if record is not None:
            return self._decode(record)
        location = self._locations.pop(rowid, None)
        if location is None:
            return None
        page_id, slot = location
        buffer = self.buffers.pin(page_id)
        page = SlottedPage(buffer, self.disk.page_size)
        record = page.read(slot)
        page.delete(slot)
        self.buffers.unpin(page_id, dirty=True)
        if record is None:  # pragma: no cover - location map is authoritative
            return None
        return self._decode(record)

    def _iter_items(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        if not self._oversize:
            for rowid, (page_id, slot) in list(self._locations.items()):
                buffer = self.buffers.pin(page_id)
                record = SlottedPage(buffer, self.disk.page_size).read(slot)
                self.buffers.unpin(page_id)
                if record is not None:
                    yield rowid, self._decode(record)
            return
        # Oversize rows must interleave in rowid (== insertion) order.
        for rowid in sorted(
            list(self._locations.keys()) + list(self._oversize.keys())
        ):
            values = self._get_row(rowid)
            if values is not None:
                yield rowid, values

    def _clear_rows(self) -> None:
        self.buffers.clear()
        self.disk.reset()
        self._locations.clear()
        self._oversize.clear()
        self._fill_page = None

    def _row_count(self) -> int:
        return len(self._locations) + len(self._oversize)

    def has_row(self, rowid: int) -> bool:
        return rowid in self._locations or rowid in self._oversize

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Write dirty buffered pages to the heap file."""
        self.buffers.flush()

    def close(self) -> None:
        self.buffers.flush()
        self.disk.close()

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["disk"] = self.disk.stats()
        out["buffer_pool"] = self.buffers.stats()
        out["oversize_rows"] = len(self._oversize)
        return out
