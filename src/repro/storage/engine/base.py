"""Shared table logic: constraints, indexes, observers, null tallies.

:class:`BaseTableStorage` carries everything about a table that is
*independent* of how row bytes are physically kept: normalisation and
type checking, NOT NULL / unique enforcement, hash index maintenance,
per-column NULL tallies, mutation observers, and the monotonic version
counter the executor's caches key on.  Concrete engines supply only the
physical primitives (``_store_row`` / ``_get_row`` / ``_pop_row`` /
``_iter_items`` / ``_clear_rows`` / ``_row_count``), which is what makes
the three engines byte-identical under the differential suite: every
semantic decision lives here, exactly once.

Physical invariants every engine must honour:

* Rowids are assigned by this base class, monotonically, and never
  reused; iteration order of ``_iter_items`` is insertion order
  (updates keep a row's position).
* ``_get_row`` / ``_iter_items`` return mappings whose keys are the
  relation's attribute names *in declaration order* — the same order
  :meth:`_normalise` produces — so projected/prefixed rows serialise
  identically regardless of engine.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.catalog.relation import Relation
from repro.catalog.types import check_value, coerce_value
from repro.errors import (
    NotNullViolationError,
    PrimaryKeyViolationError,
    UnknownAttributeError,
)
from repro.storage.index import HashIndex
from repro.storage.row import Row


class BaseTableStorage:
    """A table conforming to a :class:`Relation`, minus the physical layer.

    Rows are stored in insertion order and identified by a monotonically
    increasing integer row id.  A unique hash index is maintained over the
    primary key (when the relation declares one); additional indexes can be
    created on demand and are kept up to date by inserts/deletes/updates.
    """

    #: Engine tag reported by :meth:`stats` and used by
    #: :class:`~repro.storage.config.StorageConfig` routing.
    engine_name = "base"

    def __init__(self, relation: Relation, auto_index: bool = True) -> None:
        self.relation = relation
        self._next_rowid = 1
        self._version = 0
        self._auto_index = auto_index
        self._indexes: Dict[str, HashIndex] = {}
        #: Per-column NULL tallies, maintained by every mutation.  The
        #: streaming narrator uses them to prove a heading-only fallback
        #: clause cannot occur (no row has all narrated attributes NULL).
        self._null_counts: Dict[str, int] = {a.name: 0 for a in relation.attributes}
        #: Mutation observers (maintained ranking structures, like the
        #: indexes but cross-table).  Notified after the row store and
        #: indexes reflect the change.
        self._observers: List[Any] = []
        if relation.primary_key_names:
            self.create_index("pk", relation.primary_key_names, unique=True)

    # ------------------------------------------------------------------
    # Physical primitives (engine-specific)
    # ------------------------------------------------------------------

    def _store_row(self, rowid: int, values: Dict[str, Any]) -> None:
        """Store ``values`` under ``rowid`` (insert or full replace)."""
        raise NotImplementedError

    def _get_row(self, rowid: int) -> Optional[Dict[str, Any]]:
        """The stored values for ``rowid``, or ``None`` if absent."""
        raise NotImplementedError

    def _pop_row(self, rowid: int) -> Optional[Dict[str, Any]]:
        """Remove and return the values for ``rowid`` (``None`` if absent)."""
        raise NotImplementedError

    def _iter_items(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Iterate ``(rowid, values)`` in insertion order."""
        raise NotImplementedError

    def _clear_rows(self) -> None:
        """Drop every stored row (the physical part of truncate)."""
        raise NotImplementedError

    def _row_count(self) -> int:
        raise NotImplementedError

    def has_row(self, rowid: int) -> bool:
        """Whether a row with ``rowid`` currently exists."""
        return self._get_row(rowid) is not None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def row_count(self) -> int:
        return self._row_count()

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutating call.

        Caches keyed on table contents (scan caches, subquery memos)
        compare versions instead of subscribing to change events.
        """
        return self._version

    @property
    def next_rowid(self) -> int:
        """The rowid the next insert will receive (snapshot state)."""
        return self._next_rowid

    def __len__(self) -> int:
        return self._row_count()

    def rows(self) -> Iterator[Row]:
        """Iterate over the table's rows in insertion order.

        Rowids are assigned monotonically and never reused, and engines
        preserve insertion order, so no sort is needed.
        """
        for _, values in self._iter_items():
            yield Row(values)

    def rows_with_ids(self) -> Iterator[Tuple[int, Row]]:
        for rowid, values in self._iter_items():
            yield rowid, Row(values)

    def row_by_id(self, rowid: int) -> Row:
        values = self._get_row(rowid)
        if values is None:
            raise KeyError(rowid)
        return Row(values)

    def export_rows(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Materialise ``(rowid, values)`` pairs for snapshots/conversion.

        The returned dicts are copies; mutating them does not touch the
        table.  Together with :attr:`next_rowid` this is the complete
        logical state — :meth:`restore` of an export is an identity, in
        *any* engine.
        """
        return [(rowid, dict(values)) for rowid, values in self._iter_items()]

    def column(self, name: str) -> List[Any]:
        """The values of one column for every row, in insertion order.

        A batch accessor: one call instead of ``row_count`` row probes.
        The returned list must be treated as read-only — the columnar
        engine returns its live array (zero-copy), other engines
        materialise a fresh list.
        """
        canonical = self.relation.attribute(name).name
        return [values.get(canonical) for _, values in self._iter_items()]

    def columnar_arrays(self) -> Optional[Dict[str, List[Any]]]:
        """Per-column arrays when this engine stores columns natively.

        Returns ``{attribute name: list of values}`` with every list in
        insertion order and of equal length, or ``None`` when the engine
        is row-oriented (the executor then stays row-at-a-time).  The
        arrays are live views: valid until the next mutation, never to
        be mutated by the caller.
        """
        return None

    def stats(self) -> Dict[str, Any]:
        """Engine-agnostic health counters (engines extend this dict)."""
        return {
            "engine": self.engine_name,
            "rows": self._row_count(),
            "next_rowid": self._next_rowid,
            "version": self._version,
            "null_counts": dict(self._null_counts),
            "indexes": {
                index.name: len(index) for index in self._indexes.values()
            },
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, values: Mapping[str, Any], coerce: bool = False) -> int:
        """Insert a row given a column/value mapping; returns the new row id.

        Unknown columns raise :class:`UnknownAttributeError`; missing
        columns default to ``None`` (subject to NOT NULL checks).  With
        ``coerce=True`` textual values are converted to the declared types,
        which is what the CSV/dict loaders use.
        """
        normalised = self._normalise(values, coerce=coerce)
        self._check_not_null(normalised)
        self._check_unique_indexes(normalised)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._store_row(rowid, normalised)
        self._version += 1
        for column, value in normalised.items():
            if value is None:
                self._null_counts[column] += 1
        for index in self._indexes.values():
            index.add(index.key_for(normalised), rowid)
        if self._observers:
            for observer in self._observers:
                observer.row_inserted(self, rowid, normalised)
        return rowid

    def insert_many(self, rows: Iterable[Mapping[str, Any]], coerce: bool = False) -> List[int]:
        return [self.insert(row, coerce=coerce) for row in rows]

    def delete_rows(self, rowids: Iterable[int]) -> int:
        """Delete the rows with the given ids; returns how many were removed."""
        removed = 0
        for rowid in list(rowids):
            values = self._pop_row(rowid)
            if values is None:
                continue
            for column, value in values.items():
                if value is None:
                    self._null_counts[column] -= 1
            for index in self._indexes.values():
                index.remove(index.key_for(values), rowid)
            if self._observers:
                for observer in self._observers:
                    observer.row_deleted(self, rowid, values)
            removed += 1
        if removed:
            self._version += 1
        return removed

    def update_rows(self, rowids: Iterable[int], changes: Mapping[str, Any]) -> int:
        """Apply ``changes`` to each of the given rows; returns how many changed."""
        updated = 0
        for rowid in list(rowids):
            current = self._get_row(rowid)
            if current is None:
                continue
            merged = dict(current)
            for column, value in changes.items():
                attribute = self.relation.attribute(column)
                merged[attribute.name] = check_value(
                    attribute.dtype, value, context=attribute.qualified_name
                )
            self._check_not_null(merged)
            self._check_unique_indexes(merged, ignore_rowid=rowid)
            for column in merged:
                was_null = current.get(column) is None
                is_null = merged[column] is None
                if was_null != is_null:
                    self._null_counts[column] += 1 if is_null else -1
            for index in self._indexes.values():
                index.remove(index.key_for(current), rowid)
                index.add(index.key_for(merged), rowid)
            self._store_row(rowid, merged)
            if self._observers:
                for observer in self._observers:
                    observer.row_updated(self, rowid, current, merged)
            updated += 1
        if updated:
            self._version += 1
        return updated

    def truncate(self) -> None:
        """Remove every row (indexes are cleared)."""
        self._clear_rows()
        self._version += 1
        self._null_counts = {a.name: 0 for a in self.relation.attributes}
        for index in self._indexes.values():
            index.clear()
        if self._observers:
            for observer in self._observers:
                observer.table_truncated(self)

    def restore(self, rows: Iterable[Tuple[int, Mapping[str, Any]]], next_rowid: int) -> None:
        """Replace the table's contents with snapshot state, rowids included.

        Values are taken as already validated (they passed constraint
        checks when originally inserted), so no re-checking happens —
        restoring must succeed even under constraints a partially-built
        state would violate mid-way.  The rowid counter is restored too,
        so rows inserted after recovery get the same ids they would have
        gotten had the process never died.  Indexes, NULL tallies, and
        observers (``row_inserted`` per restored row, after the
        ``table_truncated`` from the embedded truncate) are all rebuilt,
        identically in every engine.  Bumps the version so caches keyed
        on table contents are invalidated.
        """
        self.truncate()
        for rowid, values in rows:
            stored = dict(values)
            self._store_row(rowid, stored)
            for column, value in stored.items():
                if value is None:
                    self._null_counts[column] += 1
            for index in self._indexes.values():
                index.add(index.key_for(stored), rowid)
            if self._observers:
                for observer in self._observers:
                    observer.row_inserted(self, rowid, stored)
        self._next_rowid = next_rowid
        self._version += 1

    def null_count(self, column: str) -> int:
        """How many rows currently store NULL in ``column``."""
        return self._null_counts[self.relation.attribute(column).name]

    def add_observer(self, observer: Any) -> None:
        """Register a mutation observer (idempotent per object)."""
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def create_index(self, name: str, columns: Sequence[str], unique: bool = False) -> HashIndex:
        """Create (or return an existing) index over ``columns``."""
        canonical = tuple(self.relation.attribute(c).name for c in columns)
        key = name.lower()
        if key in self._indexes:
            return self._indexes[key]
        index = HashIndex(name, canonical, unique=unique)
        for rowid, values in self._iter_items():
            index.add(index.key_for(values), rowid)
        self._indexes[key] = index
        return index

    def index(self, name: str) -> Optional[HashIndex]:
        return self._indexes.get(name.lower())

    def indexes(self) -> Tuple[HashIndex, ...]:
        return tuple(self._indexes.values())

    def find_index(self, columns: Sequence[str]) -> Optional[HashIndex]:
        """An existing index exactly covering ``columns``, if any."""
        canonical = tuple(self.relation.attribute(c).name for c in columns)
        for index in self._indexes.values():
            if index.columns == canonical:
                return index
        return None

    def ensure_index(self, columns: Sequence[str]) -> HashIndex:
        """Find an index covering ``columns``, creating one on demand.

        The executor uses this to self-tune: the first index-backed scan
        over a column set pays the build cost, later scans get O(1) probes.
        """
        existing = self.find_index(columns)
        if existing is not None:
            return existing
        canonical = tuple(self.relation.attribute(c).name for c in columns)
        # "," cannot appear in identifiers, so differently-shaped column
        # sets never produce the same name (("a","b") vs ("a_b",)); the
        # loop guards against a user-created index squatting on the name.
        base = "auto_" + ",".join(canonical)
        name = base
        suffix = 0
        while True:
            index = self.create_index(name, canonical)
            if index.columns == canonical:
                return index
            suffix += 1
            name = f"{base}~{suffix}"

    def lookup(self, columns: Sequence[str], values: Sequence[Any]) -> List[Row]:
        """Fetch rows whose ``columns`` equal ``values`` through a hash index.

        Self-tuning like the executor's index scans: the first lookup on a
        column set builds the index (``ensure_index``), later lookups are
        O(1) probes.  Rowids are monotonic, so the sorted probe result
        preserves the insertion order the old linear scan returned.  With
        ``auto_index=False`` in the :class:`~repro.storage.config.StorageConfig`
        no index is built implicitly: an existing index is still probed,
        otherwise a linear scan answers the lookup.
        """
        if not self._auto_index:
            index = self.find_index(columns)
            if index is None:
                canonical = [self.relation.attribute(c).name for c in columns]
                probe = list(values)
                if any(v is None for v in probe):
                    # SQL equality: NULL matches nothing.
                    return []
                return [
                    Row(row_values)
                    for _, row_values in self._iter_items()
                    if all(
                        row_values.get(c) == v for c, v in zip(canonical, probe)
                    )
                ]
            return [self.row_by_id(rowid) for rowid in index.lookup(tuple(values))]
        index = self.ensure_index(columns)
        return [self.row_by_id(rowid) for rowid in index.lookup(tuple(values))]

    def has_key(self, columns: Sequence[str], values: Sequence[Any]) -> bool:
        return bool(self.lookup(columns, values))

    # ------------------------------------------------------------------
    # Constraint helpers
    # ------------------------------------------------------------------

    def _normalise(self, values: Mapping[str, Any], coerce: bool) -> Dict[str, Any]:
        known = {a.name.lower(): a for a in self.relation.attributes}
        normalised: Dict[str, Any] = {a.name: None for a in self.relation.attributes}
        for column, value in values.items():
            attribute = known.get(column.lower())
            if attribute is None:
                raise UnknownAttributeError(
                    f"table {self.name!r} has no column {column!r}"
                )
            if coerce:
                value = coerce_value(attribute.dtype, value)
            normalised[attribute.name] = check_value(
                attribute.dtype, value, context=attribute.qualified_name
            )
        return normalised

    def _check_not_null(self, values: Mapping[str, Any]) -> None:
        for attribute in self.relation.attributes:
            if not attribute.nullable and values.get(attribute.name) is None:
                raise NotNullViolationError(
                    f"column {attribute.qualified_name} is NOT NULL but received NULL"
                )

    def _check_unique_indexes(
        self, values: Mapping[str, Any], ignore_rowid: Optional[int] = None
    ) -> None:
        for index in self._indexes.values():
            key = index.key_for(dict(values))
            if index.would_violate_unique(key, ignore_rowid=ignore_rowid):
                raise PrimaryKeyViolationError(
                    f"duplicate key {key!r} for unique index {index.name!r}"
                    f" on table {self.name!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name}, {len(self)} rows)"
