"""The dict-row engine: the original in-memory table, now one of three.

This is the *oracle* engine — the reference implementation every other
engine is differentially tested against, and the default for every
relation unless a :class:`~repro.storage.config.StorageConfig` says
otherwise.  Rows live in one ``{rowid: values}`` dict; Python dicts
preserve insertion order, which is exactly the scan order the protocol
requires.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.catalog.relation import Relation
from repro.storage.engine.base import BaseTableStorage
from repro.storage.row import Row


class RowStorage(BaseTableStorage):
    """Dict-of-dicts row store; the reference engine."""

    engine_name = "rows"

    def __init__(self, relation: Relation, auto_index: bool = True) -> None:
        self._rows: Dict[int, Dict[str, Any]] = {}
        super().__init__(relation, auto_index=auto_index)

    # ------------------------------------------------------------------
    # Physical primitives
    # ------------------------------------------------------------------

    def _store_row(self, rowid: int, values: Dict[str, Any]) -> None:
        self._rows[rowid] = values

    def _get_row(self, rowid: int) -> Optional[Dict[str, Any]]:
        return self._rows.get(rowid)

    def _pop_row(self, rowid: int) -> Optional[Dict[str, Any]]:
        return self._rows.pop(rowid, None)

    def _iter_items(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        return iter(self._rows.items())

    def _clear_rows(self) -> None:
        self._rows.clear()

    def _row_count(self) -> int:
        return len(self._rows)

    def has_row(self, rowid: int) -> bool:
        return rowid in self._rows

    # ------------------------------------------------------------------
    # Hot-path overrides (avoid the primitive indirection on scans)
    # ------------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        for values in self._rows.values():
            yield Row(values)

    def rows_with_ids(self) -> Iterator[Tuple[int, Row]]:
        for rowid, values in self._rows.items():
            yield rowid, Row(values)

    def row_by_id(self, rowid: int) -> Row:
        return Row(self._rows[rowid])
