"""Columnar engine: per-column arrays with a validity bitmap.

Hot relations pay one list per attribute instead of one dict per row.
The win is not storage, it is *scan shape*: the executor asks for
:meth:`ColumnarStorage.columnar_arrays` and, when it gets them, runs
column-at-a-time comprehensions (``repro.engine.vector``) instead of
per-row closure calls — no dict probe, no ``Row`` allocation for rows a
filter rejects.

Layout
------
* ``_columns[name]`` — one dense Python list per attribute, position-
  indexed; every list always has identical length.
* ``_validity[name]`` — a parallel ``bytearray`` (1 = value present,
  0 = NULL), the classic validity bitmap kept byte-per-row because
  Python bit-twiddling costs more than it saves at these scales.
* ``_rowids`` — position → rowid; ``None`` marks a tombstone.
* ``_positions`` — rowid → position (the inverse, live rows only).

Deletes tombstone in place (O(1)) and compact lazily: whenever dead
slots exceed a quarter of the table, and always before handing arrays
to the vectorized scan path, which requires dense position order ==
insertion order.  Updates write in place, so positions — and therefore
scan order — are stable across updates, matching the dict engine's
insertion-order semantics exactly.

Maintenance is driven by the same mutation path as every engine (the
base class calls ``_store_row`` / ``_pop_row``), which is the
"rebuilt incrementally on DML" contract: the arrays are never stale,
and table observers see identical callbacks in identical order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.catalog.relation import Relation
from repro.storage.engine.base import BaseTableStorage

#: Compact when dead slots exceed this fraction of total slots.
_COMPACT_FRACTION = 4


class ColumnarStorage(BaseTableStorage):
    """Column-major store for hot relations; vectorized-scan capable."""

    engine_name = "columnar"

    def __init__(self, relation: Relation, auto_index: bool = True) -> None:
        self._names: Tuple[str, ...] = tuple(a.name for a in relation.attributes)
        self._columns: Dict[str, List[Any]] = {name: [] for name in self._names}
        self._validity: Dict[str, bytearray] = {name: bytearray() for name in self._names}
        self._rowids: List[Optional[int]] = []
        self._positions: Dict[int, int] = {}
        self._dead = 0
        self._compactions = 0
        super().__init__(relation, auto_index=auto_index)

    # ------------------------------------------------------------------
    # Physical primitives
    # ------------------------------------------------------------------

    def _store_row(self, rowid: int, values: Dict[str, Any]) -> None:
        position = self._positions.get(rowid)
        if position is None:
            position = len(self._rowids)
            self._rowids.append(rowid)
            self._positions[rowid] = position
            for name in self._names:
                value = values.get(name)
                self._columns[name].append(value)
                self._validity[name].append(0 if value is None else 1)
        else:
            for name in self._names:
                value = values.get(name)
                self._columns[name][position] = value
                self._validity[name][position] = 0 if value is None else 1

    def _get_row(self, rowid: int) -> Optional[Dict[str, Any]]:
        position = self._positions.get(rowid)
        if position is None:
            return None
        return self._load(position)

    def _pop_row(self, rowid: int) -> Optional[Dict[str, Any]]:
        position = self._positions.pop(rowid, None)
        if position is None:
            return None
        values = self._load(position)
        # Tombstone: the slot stays (positions of later rows are stable)
        # but holds no reachable data; compaction reclaims it lazily.
        self._rowids[position] = None
        for name in self._names:
            self._columns[name][position] = None
            self._validity[name][position] = 0
        self._dead += 1
        if self._dead * _COMPACT_FRACTION > len(self._rowids):
            self._compact()
        return values

    def _iter_items(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        columns = [self._columns[name] for name in self._names]
        names = self._names
        for position, rowid in enumerate(self._rowids):
            if rowid is None:
                continue
            yield rowid, {
                name: column[position] for name, column in zip(names, columns)
            }

    def _clear_rows(self) -> None:
        for name in self._names:
            self._columns[name] = []
            self._validity[name] = bytearray()
        self._rowids = []
        self._positions = {}
        self._dead = 0

    def _row_count(self) -> int:
        return len(self._positions)

    def has_row(self, rowid: int) -> bool:
        return rowid in self._positions

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------

    def column(self, name: str) -> List[Any]:
        canonical = self.relation.attribute(name).name
        if self._dead:
            self._compact()
        return self._columns[canonical]

    def columnar_arrays(self) -> Optional[Dict[str, List[Any]]]:
        if self._dead:
            self._compact()
        return self._columns

    def validity(self, name: str) -> bytearray:
        """The validity bitmap for one column (1 = present, 0 = NULL)."""
        canonical = self.relation.attribute(name).name
        if self._dead:
            self._compact()
        return self._validity[canonical]

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["dead_slots"] = self._dead
        out["slots"] = len(self._rowids)
        out["compactions"] = self._compactions
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _load(self, position: int) -> Dict[str, Any]:
        return {name: self._columns[name][position] for name in self._names}

    def _compact(self) -> None:
        """Rewrite arrays without tombstones; insertion order is preserved."""
        keep = [p for p, rowid in enumerate(self._rowids) if rowid is not None]
        for name in self._names:
            column = self._columns[name]
            valid = self._validity[name]
            self._columns[name] = [column[p] for p in keep]
            self._validity[name] = bytearray(valid[p] for p in keep)
        self._rowids = [self._rowids[p] for p in keep]
        self._positions = {rowid: p for p, rowid in enumerate(self._rowids)}
        self._dead = 0
        self._compactions += 1
