"""The public storage API: the :class:`TableStorage` protocol and friends.

This module is the contract between the storage layer and everything
above it (executor, ranking, summarisation, loaders, snapshots).  Code
that consumes tables should import from here and touch only protocol
members; code that *implements* a storage engine subclasses
:class:`~repro.storage.engine.base.BaseTableStorage`, which provides
the entire logical layer and leaves six physical primitives to fill in.

``__all__`` is the documented surface:

``TableStorage``
    A :class:`typing.Protocol` (``runtime_checkable``) describing every
    operation a table supports.  All three engines —
    :class:`~repro.storage.engine.rows.RowStorage` (and its historical
    alias :class:`~repro.storage.table.Table`),
    :class:`~repro.storage.engine.paged.PagedHeapStorage`,
    :class:`~repro.storage.engine.columnar.ColumnarStorage` — satisfy
    it, and the differential suite holds them byte-identical.
``StorageConfig``
    Engine routing + page/pool sizing; see
    :mod:`repro.storage.config`.
``create_storage``
    The factory :class:`~repro.storage.database.Database` uses to build
    one table per relation according to a config.

No public attribute was renamed by the protocol extraction — ``Table``
remains importable from its historical locations as a first-class
alias of the ``rows`` engine — so no deprecation shims are required;
the module-level ``__getattr__`` below exists to give a clear,
``DeprecationWarning``-carrying forward path should any legacy name be
retired later.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.catalog.relation import Relation
from repro.storage.config import STORAGE_ENGINES, StorageConfig
from repro.storage.engine import create_storage
from repro.storage.index import HashIndex
from repro.storage.row import Row

__all__ = [
    "TableStorage",
    "StorageConfig",
    "STORAGE_ENGINES",
    "create_storage",
]


@runtime_checkable
class TableStorage(Protocol):
    """Everything a table can do, independent of physical layout.

    Semantics every implementation guarantees:

    * Rowids are positive integers, assigned monotonically, never
      reused; scans (:meth:`rows`, :meth:`rows_with_ids`,
      :meth:`column`) run in insertion order, with updates keeping a
      row's position.
    * Row mappings expose the relation's attribute names in declaration
      order, so downstream serialisation is engine-independent.
    * :attr:`version` strictly increases on every successful mutation;
      equal versions imply identical contents.
    * :meth:`restore` of :meth:`export_rows` + :attr:`next_rowid` is an
      identity and rebuilds indexes, NULL tallies, and observer state.
    """

    relation: Relation

    # -- identity ------------------------------------------------------

    @property
    def name(self) -> str:
        """The relation's name."""
        ...

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        ...

    @property
    def version(self) -> int:
        """Monotonic mutation counter (cache invalidation key)."""
        ...

    @property
    def next_rowid(self) -> int:
        """The rowid the next insert will receive."""
        ...

    def __len__(self) -> int:
        ...

    # -- scans ---------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """All rows, insertion order."""
        ...

    def rows_with_ids(self) -> Iterator[Tuple[int, Row]]:
        """``(rowid, row)`` pairs, insertion order."""
        ...

    def row_by_id(self, rowid: int) -> Row:
        """The row stored under ``rowid`` (KeyError when absent)."""
        ...

    def has_row(self, rowid: int) -> bool:
        """Whether ``rowid`` currently exists."""
        ...

    def column(self, name: str) -> List[Any]:
        """One column's values for every row, insertion order (read-only)."""
        ...

    def columnar_arrays(self) -> Optional[Dict[str, List[Any]]]:
        """Live per-column arrays, or ``None`` for row-oriented engines."""
        ...

    def export_rows(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Copied ``(rowid, values)`` pairs — the full logical state."""
        ...

    # -- mutation ------------------------------------------------------

    def insert(self, values: Mapping[str, Any], coerce: bool = False) -> int:
        """Insert one row (constraint-checked); returns its rowid."""
        ...

    def insert_many(self, rows: Iterable[Mapping[str, Any]], coerce: bool = False) -> List[int]:
        ...

    def delete_rows(self, rowids: Iterable[int]) -> int:
        """Delete by rowid; returns how many existed and were removed."""
        ...

    def update_rows(self, rowids: Iterable[int], changes: Mapping[str, Any]) -> int:
        """Apply ``changes`` to each rowid; returns how many changed."""
        ...

    def truncate(self) -> None:
        """Drop every row; indexes cleared, observers notified."""
        ...

    def restore(self, rows: Iterable[Tuple[int, Mapping[str, Any]]], next_rowid: int) -> None:
        """Replace contents with snapshot state (no constraint re-checks)."""
        ...

    # -- statistics / observers ---------------------------------------

    def null_count(self, column: str) -> int:
        """How many rows store NULL in ``column`` right now."""
        ...

    def stats(self) -> Dict[str, Any]:
        """Engine tag plus health counters (rows, indexes, pool stats...)."""
        ...

    def add_observer(self, observer: Any) -> None:
        """Register a mutation observer (row_inserted/row_deleted/...)."""
        ...

    def remove_observer(self, observer: Any) -> None:
        ...

    # -- indexes -------------------------------------------------------

    def create_index(self, name: str, columns: Sequence[str], unique: bool = False) -> HashIndex:
        ...

    def index(self, name: str) -> Optional[HashIndex]:
        ...

    def indexes(self) -> Tuple[HashIndex, ...]:
        ...

    def find_index(self, columns: Sequence[str]) -> Optional[HashIndex]:
        ...

    def ensure_index(self, columns: Sequence[str]) -> HashIndex:
        ...

    def lookup(self, columns: Sequence[str], values: Sequence[Any]) -> List[Row]:
        """Equality fetch through a hash index (self-tuning)."""
        ...

    def has_key(self, columns: Sequence[str], values: Sequence[Any]) -> bool:
        ...


_DEPRECATED = {
    # old name -> (replacement name, replacement object factory)
    "InMemoryTable": "repro.storage.engine.rows.RowStorage",
}


def __getattr__(name: str):  # pragma: no cover - forward-compat shim
    if name in _DEPRECATED:
        import warnings

        warnings.warn(
            f"repro.storage.api.{name} is deprecated; use {_DEPRECATED[name]}",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.storage.engine.rows import RowStorage

        return RowStorage
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
