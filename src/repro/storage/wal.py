"""Append-only write-ahead log with checksummed, length-prefixed records.

The WAL is the durable half of the storage engine's log-before-apply
contract: every mutation is appended (and, per the fsync policy, forced
to stable storage) *before* it touches a table, so the state of any
crashed process can be rebuilt deterministically as ``snapshot +
replay`` (:mod:`repro.storage.snapshot`, :meth:`Database.recover
<repro.storage.database.Database.recover>`).

On-disk format
--------------

The file opens with an 8-byte magic (:data:`MAGIC`); each record is::

    [length:u32 BE][crc32:u32 BE][payload:length bytes]

``payload`` is ``pickle.dumps((seq, record))`` — ``seq`` the monotonic
record sequence number, ``record`` any picklable object — and ``crc32``
covers the payload.  Sequence numbers must increase by exactly one
record-to-record, which turns silent record loss into detectable
corruption.

Recovery classification
-----------------------

:func:`scan_wal` walks the file once and classifies damage by *where*
it sits:

* a record whose bytes run past end-of-file, or whose checksum fails
  while the record is the **last** one in the file, is a *torn tail* —
  the expected debris of a crash mid-append.  The scan reports it and
  :class:`WriteAheadLog` truncates it on open, losing only the
  unacknowledged write.
* a checksum/framing/sequence failure **followed by more data** is
  *mid-log corruption*: the file was damaged after it was written, and
  guessing past it could resurrect arbitrary state.  That fails typed
  with :class:`~repro.errors.WalCorruptionError` — recovery stops and
  the operator decides.

fsync policy
------------

===========  ==============================================================
``always``   fsync after every append: survives machine/power loss per
             record (slowest).
``batch``    group commit: appends are flushed to the OS immediately
             (surviving *process* death) and fsynced every
             ``batch_every`` records or on :meth:`~WriteAheadLog.commit`;
             a power cut can lose at most the last unsynced group.
``never``    flush to the OS only: survives any process crash (SIGKILL
             included, the data sits in the page cache) but not a
             machine crash.
===========  ==============================================================

The optional ``injector`` duck-types the deterministic disk faults of
:mod:`repro.service.faults` (``fsync_stall_for``/``wal_crash_due``) so
recovery drills replay identically from a seed.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import DurabilityError, WalCorruptionError

__all__ = [
    "FSYNC_POLICIES",
    "MAGIC",
    "WAL_NAME",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
]

#: File magic: identifies (and versions) the record format.
MAGIC = b"RPRWAL01"

#: Conventional log filename inside a durability directory.
WAL_NAME = "wal.log"

#: The per-record header: payload length, then crc32 of the payload.
_RECORD_HEADER = struct.Struct("!II")

FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_NEVER)


class WalRecord:
    """One decoded log record: sequence number, payload, file position."""

    __slots__ = ("seq", "payload", "offset", "length")

    def __init__(self, seq: int, payload: Any, offset: int, length: int) -> None:
        self.seq = seq
        self.payload = payload
        self.offset = offset
        self.length = length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalRecord(seq={self.seq}, offset={self.offset})"


class WalScan:
    """The result of one recovery scan over a WAL file."""

    __slots__ = ("path", "records", "valid_bytes", "torn_bytes", "error")

    def __init__(
        self,
        path: Path,
        records: List[WalRecord],
        valid_bytes: int,
        torn_bytes: int,
        error: Optional[WalCorruptionError] = None,
    ) -> None:
        self.path = path
        self.records = records
        #: Byte length of the valid prefix (magic + intact records); a
        #: recovery open truncates the file to exactly this length.
        self.valid_bytes = valid_bytes
        #: Bytes of torn tail after the valid prefix (0 = clean).
        self.torn_bytes = torn_bytes
        #: The mid-log corruption, when scanning non-strictly.
        self.error = error

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


def _encode_record(seq: int, payload: Any) -> bytes:
    body = pickle.dumps((seq, payload), protocol=pickle.HIGHEST_PROTOCOL)
    return _RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body


def scan_wal(path: Union[str, Path], strict: bool = True) -> WalScan:
    """Walk a WAL file, classifying torn tails vs mid-log corruption.

    Returns every intact record in order.  A torn tail (see the module
    docstring) is reported via ``torn_bytes``, never raised.  Mid-log
    corruption raises :class:`~repro.errors.WalCorruptionError` when
    ``strict`` (the recovery default); with ``strict=False`` the scan
    stops at the damage and returns it in ``error`` instead — that is
    what ``tools/wal_dump.py`` uses to *report* a damaged log.
    """
    path = Path(path)
    if not path.exists():
        return WalScan(path, [], 0, 0)
    data = path.read_bytes()
    if not data:
        return WalScan(path, [], 0, 0)
    if not data.startswith(MAGIC):
        error = WalCorruptionError(f"{path} does not start with the WAL magic")
        if strict or len(data) < len(MAGIC):
            # A short partial magic write is unrecoverable too: there is
            # no valid prefix to keep, so even recovery must not guess.
            raise error
        return WalScan(path, [], 0, 0, error=error)
    records: List[WalRecord] = []
    offset = len(MAGIC)
    size = len(data)
    expected_seq: Optional[int] = None

    def fail(message: str) -> WalScan:
        error = WalCorruptionError(f"{path}: {message}")
        if strict:
            raise error
        return WalScan(path, records, offset, 0, error=error)

    while offset < size:
        header_end = offset + _RECORD_HEADER.size
        if header_end > size:
            return WalScan(path, records, offset, size - offset)  # torn header
        length, crc = _RECORD_HEADER.unpack(data[offset:header_end])
        body_end = header_end + length
        if body_end > size:
            return WalScan(path, records, offset, size - offset)  # torn payload
        body = data[header_end:body_end]
        last = body_end == size
        if zlib.crc32(body) != crc:
            if last:
                # A torn in-place write garbles the final record without
                # shortening the file; only the unacked tail is lost.
                return WalScan(path, records, offset, size - offset)
            return fail(
                f"checksum mismatch at record {len(records)} (offset {offset})"
                " with valid data following it"
            )
        try:
            seq, payload = pickle.loads(body)
        except Exception:
            if last:
                return WalScan(path, records, offset, size - offset)
            return fail(f"undecodable record {len(records)} (offset {offset})")
        if expected_seq is not None and seq != expected_seq:
            if last:
                return WalScan(path, records, offset, size - offset)
            return fail(
                f"sequence discontinuity at record {len(records)}:"
                f" expected seq {expected_seq}, found {seq}"
            )
        records.append(WalRecord(seq, payload, offset, body_end - offset))
        expected_seq = seq + 1
        offset = body_end
    return WalScan(path, records, offset, 0)


class WriteAheadLog:
    """An append-only, recoverable log of ``(seq, payload)`` records.

    Opening an existing file *is* recovery: the constructor scans it,
    truncates a torn tail (keeping the count in ``stats()``), fails
    typed on mid-log corruption, and positions for append with the next
    sequence number following the last intact record.  The recovered
    records are kept on :attr:`recovered` for the caller to replay.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync: str = FSYNC_BATCH,
        batch_every: int = 64,
        injector: Optional[Any] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if batch_every <= 0:
            raise ValueError("batch_every must be positive")
        self.path = Path(path)
        self.fsync = fsync
        self.batch_every = batch_every
        self._injector = injector
        self._appends = 0
        self._syncs = 0
        self._commits = 0
        self._compactions = 0
        self._pending_sync = 0
        self._torn_bytes_truncated = 0
        scan = scan_wal(self.path)  # strict: mid-log corruption raises
        self.recovered: List[WalRecord] = scan.records
        self._last_seq = scan.last_seq
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists() or scan.valid_bytes == 0:
            self._file = open(self.path, "wb")
            self._file.write(MAGIC)
            self._file.flush()
            self._fsync()
        else:
            if scan.torn:
                # Drop the torn tail so appended records never interleave
                # with garbage; only the unacknowledged write is lost.
                with open(self.path, "r+b") as trimmer:
                    trimmer.truncate(scan.valid_bytes)
                self._torn_bytes_truncated = scan.torn_bytes
            self._file = open(self.path, "ab")

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The sequence number of the most recently appended record."""
        return self._last_seq

    def set_base(self, seq: int) -> None:
        """Continue a compacted log: the next append gets ``seq + 1``.

        Compaction can leave the file with *no* records (every one was
        covered by the snapshot), and a later reopen then has no way to
        know where the sequence left off.  The owner — who knows the
        snapshot's seq — calls this right after opening.  Only legal on
        a log that holds nothing; never rewinds.
        """
        if self.recovered or self._appends:
            raise DurabilityError(
                f"{self.path}: the sequence base can only be set on an empty log"
            )
        if seq > self._last_seq:
            self._last_seq = seq

    def append(self, payload: Any, seq: Optional[int] = None) -> int:
        """Append one record and make it durable per the fsync policy.

        ``seq`` defaults to ``last_seq + 1``; an explicit value (the
        shard router supplies its own mutation sequence) must continue
        the log's sequence exactly.  Returns the sequence written.
        """
        if self._file.closed:
            raise DurabilityError(f"{self.path} is closed")
        if seq is None:
            seq = self._last_seq + 1
        elif seq != self._last_seq + 1:
            raise DurabilityError(
                f"{self.path}: append seq {seq} does not continue {self._last_seq}"
            )
        self._file.write(_encode_record(seq, payload))
        # Flush to the OS unconditionally: page-cache data survives any
        # *process* death (the crash drills SIGKILL whole tiers); fsync
        # below is about machine/power loss.
        self._file.flush()
        self._last_seq = seq
        self._appends += 1
        if self.fsync == FSYNC_ALWAYS:
            self._fsync()
        elif self.fsync == FSYNC_BATCH:
            self._pending_sync += 1
            if self._pending_sync >= self.batch_every:
                self._fsync()
        injector = self._injector
        if injector is not None and injector.wal_crash_due(self._appends):
            injector.crash()  # crash-between-append-and-ack, deterministic
        return seq

    def commit(self) -> None:
        """Force any batched appends to stable storage (group commit)."""
        self._commits += 1
        if self._pending_sync and not self._file.closed:
            self._fsync()

    def _fsync(self) -> None:
        injector = self._injector
        if injector is not None:
            stall = injector.fsync_stall_for(self._syncs + 1)
            if stall:
                time.sleep(stall)
        os.fsync(self._file.fileno())
        self._syncs += 1
        self._pending_sync = 0

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, up_to_seq: int) -> int:
        """Drop every record with ``seq <= up_to_seq`` (post-checkpoint).

        The surviving tail is rewritten to a temp file and atomically
        renamed over the log, so a crash mid-compaction leaves either
        the old log or the new one — never a hybrid.  Returns how many
        records were dropped.
        """
        if self._file.closed:
            raise DurabilityError(f"{self.path} is closed")
        self._file.flush()
        scan = scan_wal(self.path)
        keep = [record for record in scan.records if record.seq > up_to_seq]
        dropped = len(scan.records) - len(keep)
        data = MAGIC + b"".join(
            _encode_record(record.seq, record.payload) for record in keep
        )
        tmp = self.path.with_name(self.path.name + ".compact")
        with open(tmp, "wb") as fresh:
            fresh.write(data)
            fresh.flush()
            os.fsync(fresh.fileno())
        self._file.close()
        os.replace(tmp, self.path)
        _fsync_directory(self.path.parent)
        self._file = open(self.path, "ab")
        self._pending_sync = 0
        self._compactions += 1
        return dropped

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------

    def close(self) -> None:
        if not self._file.closed:
            if self._pending_sync:
                self._fsync()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "fsync": self.fsync,
            "last_seq": self._last_seq,
            "appends": self._appends,
            "syncs": self._syncs,
            "commits": self._commits,
            "compactions": self._compactions,
            "pending_sync": self._pending_sync,
            "recovered_records": len(self.recovered),
            "torn_bytes_truncated": self._torn_bytes_truncated,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"WriteAheadLog({self.path}, last_seq={self._last_seq})"


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so a rename inside it is itself durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)
