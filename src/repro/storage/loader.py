"""Loaders for populating a :class:`Database` from CSV text or dictionaries."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

from repro.storage.database import Database


def load_csv_text(database: Database, table_name: str, text: str, delimiter: str = ",") -> int:
    """Load rows from CSV ``text`` (first line is the header) into ``table_name``.

    Values are coerced to the declared column types; empty strings become
    NULL.  Returns the number of rows inserted.
    """
    reader = csv.DictReader(io.StringIO(text), delimiter=delimiter)
    rows: List[Dict[str, Any]] = [dict(record) for record in reader]
    database.insert_many(table_name, rows, coerce=True)
    return len(rows)


def load_csv_file(
    database: Database, table_name: str, path: Union[str, Path], delimiter: str = ","
) -> int:
    """Load a CSV file from disk into ``table_name``."""
    text = Path(path).read_text(encoding="utf-8")
    return load_csv_text(database, table_name, text, delimiter=delimiter)


def load_records(
    database: Database, data: Mapping[str, Sequence[Mapping[str, Any]]], coerce: bool = True
) -> Dict[str, int]:
    """Load ``{table: [record, ...]}`` into the database, parents first.

    Returns a mapping of table name to the number of rows inserted.
    """
    database.load(data, coerce=coerce)
    return {name: len(rows) for name, rows in data.items()}


def dump_records(database: Database) -> Dict[str, List[Dict[str, Any]]]:
    """Export every table's rows as plain dictionaries (insertion order)."""
    # export_rows is the protocol-level batch export (rowid, values)
    # pairs; engines answer it from their own physical layout.
    return {
        table.name: [values for _rowid, values in table.export_rows()]
        for table in database.tables
    }
