"""Storage layer: engines, tables, indexes, databases, loaders.

Physical storage is pluggable: :mod:`repro.storage.engine` holds three
:class:`~repro.storage.api.TableStorage` implementations (dict rows /
paged heap / columnar) routed per relation by a
:class:`~repro.storage.config.StorageConfig`.  Durability (WAL +
snapshots) lives in :mod:`repro.storage.wal`,
:mod:`repro.storage.snapshot` and :mod:`repro.storage.durability`; the
headline entry points are re-exported here.
"""

from repro.storage.api import TableStorage, create_storage
from repro.storage.config import STORAGE_ENGINES, StorageConfig
from repro.storage.database import Database
from repro.storage.durability import DurabilityConfig, DurabilityManager
from repro.storage.engine import (
    BaseTableStorage,
    BufferManager,
    ColumnarStorage,
    DiskManager,
    PagedHeapStorage,
    RowStorage,
)
from repro.storage.index import HashIndex, build_index
from repro.storage.loader import dump_records, load_csv_file, load_csv_text, load_records
from repro.storage.row import Row
from repro.storage.snapshot import latest_snapshot, load_snapshot, write_snapshot
from repro.storage.table import Table
from repro.storage.wal import WriteAheadLog, scan_wal

__all__ = [
    "BaseTableStorage",
    "BufferManager",
    "ColumnarStorage",
    "Database",
    "DiskManager",
    "DurabilityConfig",
    "DurabilityManager",
    "HashIndex",
    "PagedHeapStorage",
    "Row",
    "RowStorage",
    "STORAGE_ENGINES",
    "StorageConfig",
    "Table",
    "TableStorage",
    "WriteAheadLog",
    "build_index",
    "create_storage",
    "dump_records",
    "latest_snapshot",
    "load_csv_file",
    "load_csv_text",
    "load_records",
    "load_snapshot",
    "scan_wal",
    "write_snapshot",
]
