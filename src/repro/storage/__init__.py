"""In-memory storage engine: rows, tables, indexes, databases, loaders.

Durability (WAL + snapshots) lives in :mod:`repro.storage.wal`,
:mod:`repro.storage.snapshot` and :mod:`repro.storage.durability`; the
headline entry points are re-exported here.
"""

from repro.storage.database import Database
from repro.storage.durability import DurabilityConfig, DurabilityManager
from repro.storage.index import HashIndex, build_index
from repro.storage.loader import dump_records, load_csv_file, load_csv_text, load_records
from repro.storage.row import Row
from repro.storage.snapshot import latest_snapshot, load_snapshot, write_snapshot
from repro.storage.table import Table
from repro.storage.wal import WriteAheadLog, scan_wal

__all__ = [
    "Database",
    "DurabilityConfig",
    "DurabilityManager",
    "HashIndex",
    "Row",
    "Table",
    "WriteAheadLog",
    "build_index",
    "dump_records",
    "latest_snapshot",
    "load_csv_file",
    "load_csv_text",
    "load_records",
    "load_snapshot",
    "scan_wal",
    "write_snapshot",
]
