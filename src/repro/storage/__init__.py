"""In-memory storage engine: rows, tables, indexes, databases, loaders."""

from repro.storage.database import Database
from repro.storage.index import HashIndex, build_index
from repro.storage.loader import dump_records, load_csv_file, load_csv_text, load_records
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = [
    "Database",
    "HashIndex",
    "Row",
    "Table",
    "build_index",
    "dump_records",
    "load_csv_file",
    "load_csv_text",
    "load_records",
]
