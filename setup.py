"""Setup shim for environments without wheel/PEP 517 build isolation."""

from setuptools import setup

setup()
